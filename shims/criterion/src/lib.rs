//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides `Criterion`, `bench_function`, `benchmark_group` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warmup-then-sample harness: each benchmark reports mean and median
//! ns/iter, and `BenchmarkGroup::finish` prints every entry's time relative
//! to the first entry in the group (used by the telemetry-overhead bench to
//! show the noop-vs-instrumented ratio).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct Sample {
    pub name: String,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub iters: u64,
}

pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(60),
            measure: Duration::from_millis(240),
            samples: 20,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample = run_bench(name, self, &mut f);
        print_sample(&sample);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), results: Vec::new() }
    }

    /// Upstream parses CLI args here; the shim benches everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    pub fn final_summary(&self) {}
}

fn run_bench<F>(name: &str, config: &Criterion, f: &mut F) -> Sample
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        warmup: config.warmup,
        measure: config.measure,
        samples: config.samples,
        result: None,
    };
    f(&mut bencher);
    let (mean_ns, median_ns, iters) =
        bencher.result.expect("benchmark closure never called Bencher::iter");
    Sample { name: name.to_string(), mean_ns, median_ns, iters }
}

fn print_sample(s: &Sample) {
    println!(
        "bench: {:<52} {:>12.1} ns/iter (median {:>12.1}, {} iters)",
        s.name, s.mean_ns, s.median_ns, s.iters
    );
}

pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: usize,
    result: Option<(f64, f64, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until the warmup budget elapses, estimating ns/iter.
        let wstart = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if wstart.elapsed() >= self.warmup {
                break;
            }
        }
        let est_ns = (wstart.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Measure: split the budget into `samples` batches and time each.
        let total_iters = ((self.measure.as_nanos() as f64 / est_ns).ceil() as u64)
            .clamp(self.samples as u64, 5_000_000);
        let batch = (total_iters / self.samples as u64).max(1);
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        let mut measured: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
            measured += batch;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((mean, median, measured));
    }
}

/// Identifier for parameterised benchmarks: `BenchmarkId::new("case", param)`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    results: Vec<Sample>,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample = run_bench(&full, self.criterion, &mut f);
        print_sample(&sample);
        self.results.push(sample);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample = run_bench(&full, self.criterion, &mut |b| f(b, input));
        print_sample(&sample);
        self.results.push(sample);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Prints every entry relative to the group's first entry — the
    /// comparison view (e.g. instrumented vs. baseline overhead).
    pub fn finish(self) {
        if self.results.len() < 2 {
            return;
        }
        let base = &self.results[0];
        println!("group `{}` relative to `{}`:", self.name, base.name);
        for s in &self.results {
            let ratio = s.mean_ns / base.mean_ns;
            println!("  {:<50} x{:.4} ({:+.2}%)", s.name, ratio, (ratio - 1.0) * 100.0);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion {
            warmup: Duration::from_millis(2),
            measure: Duration::from_millis(5),
            samples: 5,
        };
        let s = run_bench("smoke", &c, &mut |b: &mut Bencher| {
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
        assert!(s.mean_ns > 0.0);
        assert!(s.iters >= 5);
        c.bench_function("smoke2", |b| b.iter(|| black_box(1u32) + 1));
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            samples: 3,
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("a", |b| b.iter(|| black_box(2u64) * 2));
        g.bench_with_input(BenchmarkId::new("b", 10), &10u64, |b, &n| b.iter(|| black_box(n) + 1));
        g.finish();
    }
}
