//! Offline drop-in subset of the `rayon` API.
//!
//! Implements the slice-parallelism pipelines this workspace uses —
//! `par_iter().map(f).collect()`, `par_iter().enumerate().flat_map(f).collect()`,
//! `par_iter().for_each(f)` and `par_iter_mut().for_each(f)` — on top of
//! `std::thread::scope`. Work is split into contiguous chunks, one OS thread
//! per chunk, and results are stitched back in input order, so `collect` is
//! order-preserving exactly like real rayon's indexed parallel iterators.

use std::panic;

/// Number of worker threads for `len` items: use the machine's parallelism,
/// but always at least 2 when there are ≥2 items so concurrency is genuinely
/// exercised even on single-core CI boxes.
fn workers_for(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2).min(len)
}

fn join_all<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, R>>) -> Vec<R> {
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        })
        .collect()
}

/// Run `f` over each item of `items`, in parallel chunks, preserving order.
fn par_chunks_map<'a, T, U, F>(items: &'a [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        join_all(handles)
    });
    parts.into_iter().flatten().collect()
}

fn par_chunks_mut_for_each<'a, T, F>(items: &'a mut [T], f: &F)
where
    T: Send,
    F: Fn(&'a mut T) + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            items.chunks_mut(chunk).map(|c| s.spawn(move || c.iter_mut().for_each(f))).collect();
        join_all(handles);
    });
}

/// Collecting from an order-preserving parallel pipeline.
pub trait FromParallelIterator<T>: Sized {
    fn from_ordered_parts(parts: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_parts(parts: Vec<T>) -> Self {
        parts
    }
}

/// `slice.par_iter()` — borrowing parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_chunks_map(self.items, &|item| f(item));
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_parts(par_chunks_map(self.items, &self.f))
    }
}

pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn flat_map<U, I, F>(self, f: F) -> ParEnumFlatMap<'a, T, F>
    where
        I: IntoIterator<Item = U>,
        U: Send,
        F: Fn((usize, &'a T)) -> I + Sync,
    {
        ParEnumFlatMap { items: self.items, f }
    }

    pub fn map<U, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        ParEnumMap { items: self.items, f }
    }
}

pub struct ParEnumFlatMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, I, F> ParEnumFlatMap<'a, T, F>
where
    T: Sync,
    U: Send,
    I: IntoIterator<Item = U>,
    F: Fn((usize, &'a T)) -> I + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        // Enumerate with *global* indices: pair each item with its position
        // first, then chunk, so indices survive the split across threads.
        let indexed: Vec<(usize, &'a T)> = self.items.iter().enumerate().collect();
        let f = &self.f;
        let nested =
            par_chunks_map(&indexed, &|&(i, item)| f((i, item)).into_iter().collect::<Vec<U>>());
        C::from_ordered_parts(nested.into_iter().flatten().collect())
    }
}

pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParEnumMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a T)) -> U + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        let indexed: Vec<(usize, &'a T)> = self.items.iter().enumerate().collect();
        let f = &self.f;
        C::from_ordered_parts(par_chunks_map(&indexed, &|&(i, item)| f((i, item))))
    }
}

/// Run `f` once per element of `items`, consuming them, split across the
/// scoped worker pool. Order of execution is unspecified (like rayon's
/// `for_each`); every element is visited exactly once.
fn par_owned_for_each<E, F>(items: Vec<E>, f: &F)
where
    E: Send,
    F: Fn(E) + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let mut groups: Vec<Vec<E>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let g: Vec<E> = it.by_ref().take(chunk).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> =
            groups.into_iter().map(|g| s.spawn(move || g.into_iter().for_each(f))).collect();
        join_all(handles);
    });
}

/// `slice.par_iter_mut()` — parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        par_chunks_mut_for_each(self.items, &f);
    }

    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { items: self.items }
    }
}

pub struct ParIterMutEnumerate<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut T)) + Sync,
    {
        let indexed: Vec<(usize, &'a mut T)> = self.items.iter_mut().enumerate().collect();
        par_owned_for_each(indexed, &f);
    }
}

/// `slice.par_chunks_mut(n)` — parallel iterator over disjoint mutable
/// chunks, mirroring rayon's `ParallelSliceMut`.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        let chunks: Vec<&'a mut [T]> = self.items.chunks_mut(self.size).collect();
        par_owned_for_each(chunks, &f);
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { items: self.items, size: self.size }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    items: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &'a mut [T])> =
            self.items.chunks_mut(self.size).enumerate().collect();
        par_owned_for_each(chunks, &f);
    }
}

pub trait ParallelSliceMut<T: Send> {
    /// Parallel disjoint mutable chunks of `size` elements (last may be
    /// shorter). Panics if `size` is zero, like rayon.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size != 0, "chunk size must be non-zero");
        ParChunksMut { items: self, size }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_flat_map_preserves_order_and_indices() {
        let v = vec!["a", "b", "c", "d", "e"];
        let out: Vec<String> = v
            .par_iter()
            .enumerate()
            .flat_map(|(i, s)| vec![format!("{i}:{s}"), format!("{i}!")])
            .collect();
        assert_eq!(out, vec!["0:a", "0!", "1:b", "1!", "2:c", "2!", "3:d", "3!", "4:e", "4!"]);
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v: Vec<usize> = vec![0; 777];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_runs_once_per_item() {
        let counter = AtomicUsize::new(0);
        let v: Vec<u8> = vec![1; 123];
        v.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn par_iter_mut_enumerate_sees_global_indices() {
        let mut v: Vec<usize> = vec![0; 321];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        let mut v: Vec<usize> = vec![1; 103];
        v.par_chunks_mut(10).for_each(|chunk| chunk.iter_mut().for_each(|x| *x += 1));
        assert!(v.iter().all(|&x| x == 2));
        let mut w: Vec<usize> = vec![0; 95];
        w.par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i));
        for (j, &x) in w.iter().enumerate() {
            assert_eq!(x, j / 7);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let v: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> =
                v.par_iter().map(|&x| if x == 7 { panic!("boom") } else { x }).collect();
        });
        assert!(result.is_err());
    }
}
