//! Offline drop-in subset of the `rayon` API.
//!
//! Implements the slice-parallelism pipelines this workspace uses —
//! `par_iter().map(f).collect()`, `par_iter().enumerate().flat_map(f).collect()`,
//! `par_iter().for_each(f)` and `par_iter_mut().for_each(f)` — on top of
//! `std::thread::scope`. Work is split into contiguous chunks, one OS thread
//! per chunk, and results are stitched back in input order, so `collect` is
//! order-preserving exactly like real rayon's indexed parallel iterators.

use std::panic;

/// Number of worker threads for `len` items: use the machine's parallelism,
/// but always at least 2 when there are ≥2 items so concurrency is genuinely
/// exercised even on single-core CI boxes.
fn workers_for(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2).min(len)
}

fn join_all<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, R>>) -> Vec<R> {
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        })
        .collect()
}

/// Run `f` over each item of `items`, in parallel chunks, preserving order.
fn par_chunks_map<'a, T, U, F>(items: &'a [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        join_all(handles)
    });
    parts.into_iter().flatten().collect()
}

fn par_chunks_mut_for_each<'a, T, F>(items: &'a mut [T], f: &F)
where
    T: Send,
    F: Fn(&'a mut T) + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            items.chunks_mut(chunk).map(|c| s.spawn(move || c.iter_mut().for_each(f))).collect();
        join_all(handles);
    });
}

/// Collecting from an order-preserving parallel pipeline.
pub trait FromParallelIterator<T>: Sized {
    fn from_ordered_parts(parts: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_parts(parts: Vec<T>) -> Self {
        parts
    }
}

/// `slice.par_iter()` — borrowing parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_chunks_map(self.items, &|item| f(item));
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_parts(par_chunks_map(self.items, &self.f))
    }
}

pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn flat_map<U, I, F>(self, f: F) -> ParEnumFlatMap<'a, T, F>
    where
        I: IntoIterator<Item = U>,
        U: Send,
        F: Fn((usize, &'a T)) -> I + Sync,
    {
        ParEnumFlatMap { items: self.items, f }
    }

    pub fn map<U, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        ParEnumMap { items: self.items, f }
    }
}

pub struct ParEnumFlatMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, I, F> ParEnumFlatMap<'a, T, F>
where
    T: Sync,
    U: Send,
    I: IntoIterator<Item = U>,
    F: Fn((usize, &'a T)) -> I + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        // Enumerate with *global* indices: pair each item with its position
        // first, then chunk, so indices survive the split across threads.
        let indexed: Vec<(usize, &'a T)> = self.items.iter().enumerate().collect();
        let f = &self.f;
        let nested =
            par_chunks_map(&indexed, &|&(i, item)| f((i, item)).into_iter().collect::<Vec<U>>());
        C::from_ordered_parts(nested.into_iter().flatten().collect())
    }
}

pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParEnumMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a T)) -> U + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        let indexed: Vec<(usize, &'a T)> = self.items.iter().enumerate().collect();
        let f = &self.f;
        C::from_ordered_parts(par_chunks_map(&indexed, &|&(i, item)| f((i, item))))
    }
}

/// `slice.par_iter_mut()` — parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        par_chunks_mut_for_each(self.items, &f);
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_flat_map_preserves_order_and_indices() {
        let v = vec!["a", "b", "c", "d", "e"];
        let out: Vec<String> = v
            .par_iter()
            .enumerate()
            .flat_map(|(i, s)| vec![format!("{i}:{s}"), format!("{i}!")])
            .collect();
        assert_eq!(out, vec!["0:a", "0!", "1:b", "1!", "2:c", "2!", "3:d", "3!", "4:e", "4!"]);
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v: Vec<usize> = vec![0; 777];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_runs_once_per_item() {
        let counter = AtomicUsize::new(0);
        let v: Vec<u8> = vec![1; 123];
        v.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn worker_panic_propagates() {
        let v: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> =
                v.par_iter().map(|&x| if x == 7 { panic!("boom") } else { x }).collect();
        });
        assert!(result.is_err());
    }
}
