//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the forms used by this workspace's property tests: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `collection::vec`, `prop_map` / `prop_flat_map`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test RNG (seeded from the file path and test name); there is no
//! shrinking — failures report the case number and message instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
                for __case in 0..__cfg.cases {
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l
            ));
        }
    }};
}

/// Early-exit for cases that don't satisfy a precondition: the case counts
/// as passed (upstream proptest retries; skipping keeps case counts stable).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
