//! Test configuration and the deterministic RNG driving case generation.

/// Mirror of `proptest::test_runner::ProptestConfig` (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on small CI boxes
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// xoshiro256++ seeded from the test's file path and name, so every test gets
/// an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn for_test(file: &str, name: &str) -> Self {
        Self::from_seed(fnv1a(file.as_bytes()) ^ fnv1a(name.as_bytes()).rotate_left(32))
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)` for `span > 0` (u128 to avoid overflow).
    pub fn below(&mut self, span: u128) -> u64 {
        debug_assert!(span > 0);
        (self.next_u64() as u128 % span) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
