//! Value-generation strategies: ranges, tuples, `Just`, map/flat_map.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from the test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($( ($($s:ident . $idx:tt),+) ),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);
