//! `proptest::collection::vec` — vectors of a given element strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Size specification for collection strategies: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
