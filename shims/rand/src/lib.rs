//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This build environment has no registry access, so the workspace vendors the
//! small slice of `rand` it actually uses: `SmallRng` (xoshiro256++ seeded via
//! SplitMix64), `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle`, and `distributions::{Distribution, Uniform}`.
//! The numeric streams differ from upstream `rand`, but every consumer in this
//! repo only requires a deterministic, well-mixed, seedable stream — not the
//! upstream byte-for-byte sequence.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 32/64-bit uniform words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be uniformly sampled from a range via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0);
    // Modulo bias is < 2^-64 * span for the spans used in this repo (all far
    // below 2^64), which is negligible for simulation purposes.
    (rng.next_u64() as u128 % span) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random mantissa bits in [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + $unit(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + $unit(rng) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// generator family upstream `rand` uses for `SmallRng` on 64-bit.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing a stream mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`Self::state`],
        /// continuing the stream exactly where it left off.
        ///
        /// # Panics
        /// If the state is all zeros (the generator's one degenerate orbit).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "all-zero xoshiro state is degenerate");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), the only `seq` API this repo uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = i as u128 + 1;
                let j = (rng.next_u64() as u128 % span) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleRange};

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    macro_rules! impl_uniform {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    (self.low..self.high).sample_from(rng)
                }
            }
        )*};
    }

    impl_uniform!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_next: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_next: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_next, c_next);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dist = Uniform::new(-0.1f32, 0.1);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-0.1..0.1).contains(&x));
        }
    }
}
