//! The Fig. 20 scenario: a new cloud provider joins a running federation.
//!
//! A PFRL-DM federation of three clients trains for a few rounds; then a
//! fourth client (same environment class as client 1) joins. The joiner is
//! initialized from the server's global public critic (plus a one-time
//! actor bootstrap), while a control agent trains from scratch on the same
//! environment. The example prints both reward curves — the joiner should
//! start higher and converge faster.
//!
//! Run with:
//! ```text
//! cargo run --release --example new_tenant_onboarding
//! ```

use pfrl_dm::fed::{ClientSetup, FedConfig, PfrlDmRunner};
use pfrl_dm::presets::{table2_clients, TABLE2_DIMS};
use pfrl_dm::rl::{PpoAgent, PpoConfig};
use pfrl_dm::sim::{CloudEnv, EnvConfig};
use pfrl_dm::workloads::DatasetId;

fn main() {
    let mut setups = table2_clients(600, 9);
    setups.truncate(3);

    let fed_cfg = FedConfig {
        episodes: 120,
        comm_every: 15,
        participation_k: 2,
        tasks_per_episode: Some(60),
        seed: 13,
        parallel: true,
    };
    let ppo_cfg = PpoConfig::default();

    let mut runner = PfrlDmRunner::new(setups, TABLE2_DIMS, EnvConfig::default(), ppo_cfg, fed_cfg);

    // Warm up the federation: 4 rounds = 60 episodes.
    println!("warming up 3-client federation for 60 episodes…");
    runner.train_rounds(4);

    // A new tenant arrives, with client 1's environment class.
    let joiner = ClientSetup {
        name: "NewTenant-Google".into(),
        vms: table2_clients(1, 0)[0].vms.clone(),
        train_tasks: DatasetId::Google.model().sample(600, 555),
    };
    let joiner_idx = runner.add_client(joiner.clone(), true);
    println!("tenant joined as client index {joiner_idx}; training 4 more rounds…");
    runner.train_rounds(4);
    let joined_curve = runner.clients[joiner_idx].rewards.clone();

    // Control: a fresh PPO on the identical environment and episode count.
    let mut control =
        PpoAgent::new(TABLE2_DIMS.state_dim(), TABLE2_DIMS.action_dim(), ppo_cfg, 999);
    let mut env = CloudEnv::new(TABLE2_DIMS, joiner.vms.clone(), EnvConfig::default());
    let mut control_curve = Vec::new();
    for ep in 0..joined_curve.len() {
        let n = 60.min(joiner.train_tasks.len());
        let start = (ep * 13) % (joiner.train_tasks.len() - n + 1);
        let mut window = joiner.train_tasks[start..start + n].to_vec();
        let base = window[0].arrival;
        for (i, t) in window.iter_mut().enumerate() {
            t.id = i as u64;
            t.arrival -= base;
        }
        env.reset(window);
        control_curve.push(control.train_one_episode(&mut env) as f64);
    }

    println!("\n{:<8} {:>16} {:>16}", "episode", "PFRL-DM joiner", "fresh PPO");
    for e in (0..joined_curve.len()).step_by(5) {
        println!("{e:<8} {:>16.1} {:>16.1}", joined_curve[e], control_curve[e]);
    }
    let head = |v: &[f64]| v[..5.min(v.len())].iter().sum::<f64>() / 5.0;
    println!(
        "\nfirst-5-episode mean reward: joiner {:.1} vs fresh {:.1} (server init should win)",
        head(&joined_curve),
        head(&control_curve)
    );
}
