//! Quickstart: build one cloud scheduling environment, train a PPO
//! scheduler on a synthetic Google-like workload, and compare it against
//! the heuristic baselines.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use pfrl_dm::rl::{PpoAgent, PpoConfig};
use pfrl_dm::sim::{CloudEnv, EnvConfig, EnvDims, HeuristicPolicy, VmSpec};
use pfrl_dm::workloads::DatasetId;

fn main() {
    // A small private cloud: two big VMs, two small ones. Dims fix the
    // observation layout (max 4 VMs of up to 16 vCPUs / 128 GiB, 5 queue
    // slots visible).
    let dims = EnvDims::new(4, 16, 128.0, 5);
    let vms = vec![
        VmSpec::new(16, 128.0),
        VmSpec::new(16, 128.0),
        VmSpec::new(8, 64.0),
        VmSpec::new(4, 32.0),
    ];
    let mk_env = || CloudEnv::new(dims, vms.clone(), EnvConfig::default());

    // A Google-like task stream: many small, short, strongly diurnal tasks.
    let tasks = DatasetId::Google.model().sample(120, 42);
    println!(
        "workload: {} tasks, first arrival t={}, last t={}",
        tasks.len(),
        tasks.first().unwrap().arrival,
        tasks.last().unwrap().arrival
    );

    // Train a PPO scheduler (paper hyperparameters) for 150 episodes.
    let mut agent = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 7);
    let mut env = mk_env();
    let mut first10 = 0.0;
    let mut last10 = 0.0;
    for ep in 0..150 {
        env.reset(tasks.clone());
        let r = agent.train_one_episode(&mut env) as f64;
        if ep < 10 {
            first10 += r / 10.0;
        }
        if ep >= 140 {
            last10 += r / 10.0;
        }
    }
    println!("PPO training reward: first-10 avg {first10:.1} -> last-10 avg {last10:.1}");

    // Evaluate the trained policy greedily and compare with heuristics.
    println!(
        "\n{:<10} {:>10} {:>10} {:>8} {:>9}",
        "policy", "response", "makespan", "util", "loadbal"
    );
    let mut e = mk_env();
    e.reset(tasks.clone());
    let m = agent.evaluate(&mut e);
    println!(
        "{:<10} {:>10.2} {:>10.1} {:>8.3} {:>9.4}",
        "PPO", m.avg_response, m.makespan, m.avg_utilization, m.avg_load_balance
    );
    for policy in [HeuristicPolicy::Random, HeuristicPolicy::FirstFit, HeuristicPolicy::BestFit] {
        let mut e = mk_env();
        e.reset(tasks.clone());
        let m = pfrl_dm::sim::run_heuristic(&mut e, policy, 1);
        println!(
            "{:<10} {:>10.2} {:>10.1} {:>8.3} {:>9.4}",
            format!("{policy:?}"),
            m.avg_response,
            m.makespan,
            m.avg_utilization,
            m.avg_load_balance
        );
    }
}
