//! The Sec. 5.3 generalization scenario: after federated training, each
//! cloud's workload drifts — only 20% of the test traffic looks like its
//! own history, the other 80% arrives from the nine other clients'
//! distributions (new business lines, migrated tenants).
//!
//! This example trains a small PFRL-DM and an independent-PPO federation
//! on four of the Table 3 clients, then stress-tests both on hybrid
//! workloads and prints the four paper metrics per client.
//!
//! Run with:
//! ```text
//! cargo run --release --example hybrid_workload_stress
//! ```

use pfrl_dm::experiment::{evaluate_generalization, run_federation, Algorithm};
use pfrl_dm::fed::FedConfig;
use pfrl_dm::presets::{table3_clients, TABLE3_DIMS};
use pfrl_dm::rl::PpoConfig;
use pfrl_dm::sim::EnvConfig;
use pfrl_dm::workloads::train_test_split;

fn main() {
    // Four clients with maximally different workloads: Google (small/short),
    // HPC-KS (large/long), KVM-2019 (VM-shaped), K8S (tiny/bursty).
    let mut setups = table3_clients(800, 3);
    let setups = vec![
        setups.remove(0), // Google
        setups.remove(2), // HPC-KS (index shifts after remove)
        setups.remove(4), // KVM-2019
        setups.remove(6), // K8S
    ];
    println!("clients: {}", setups.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", "));

    // Hold out 40% of each pool as test data (the paper's 60/40 split).
    let mut train_setups = Vec::new();
    let mut test_sets = Vec::new();
    for (i, mut s) in setups.into_iter().enumerate() {
        let split = train_test_split(&s.train_tasks, 0.6, 100 + i as u64);
        s.train_tasks = split.train;
        test_sets.push(split.test);
        train_setups.push(s);
    }

    let fed_cfg = FedConfig {
        episodes: 80,
        comm_every: 20,
        participation_k: 2,
        tasks_per_episode: Some(60),
        seed: 5,
        parallel: true,
    };

    for alg in [Algorithm::PfrlDm, Algorithm::Ppo] {
        let (_, mut trained) = run_federation(
            alg,
            train_setups.clone(),
            TABLE3_DIMS,
            EnvConfig::default(),
            PpoConfig::default(),
            fed_cfg,
        );
        // 20% own + 80% foreign test traffic per client.
        let g = evaluate_generalization(&mut trained, &test_sets, 0.2, 77);
        println!("\n=== {alg} on hybrid (20% own / 80% foreign) workloads");
        println!(
            "{:<26} {:>10} {:>10} {:>8} {:>9}",
            "client", "response", "makespan", "util", "loadbal"
        );
        for (i, name) in trained.client_names().iter().enumerate() {
            println!(
                "{:<26} {:>10.2} {:>10.1} {:>8.3} {:>9.4}",
                name, g.response[i], g.makespan[i], g.utilization[i], g.load_balance[i]
            );
        }
    }
}
