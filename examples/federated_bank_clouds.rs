//! The paper's motivating scenario (Sec. 1): several private clouds —
//! think banks that cannot share workload logs — collaboratively train
//! schedulers without exposing their data.
//!
//! Four heterogeneous clients (the paper's Table 2 environments) train
//! under PFRL-DM and under plain FedAvg; the example prints the mean
//! reward curve of both federations plus the attention weights of the
//! final round, showing who the aggregator considers similar to whom.
//!
//! Run with:
//! ```text
//! cargo run --release --example federated_bank_clouds
//! ```

use pfrl_dm::experiment::{run_federation, Algorithm};
use pfrl_dm::fed::{FedConfig, PfrlDmRunner};
use pfrl_dm::presets::{table2_clients, TABLE2_DIMS};
use pfrl_dm::rl::PpoConfig;
use pfrl_dm::sim::EnvConfig;

fn main() {
    let fed_cfg = FedConfig {
        episodes: 90,
        comm_every: 15,
        participation_k: 2, // K = N/2
        tasks_per_episode: Some(60),
        seed: 1,
        parallel: true,
    };

    println!("training 4 bank clouds (Table 2 presets), 90 episodes, comm every 15…\n");
    let mut results = Vec::new();
    for alg in [Algorithm::PfrlDm, Algorithm::FedAvg] {
        let setups = table2_clients(600, 0);
        let (curves, trained) = run_federation(
            alg,
            setups,
            TABLE2_DIMS,
            EnvConfig::default(),
            PpoConfig::default(),
            fed_cfg,
        );
        results.push((alg, curves, trained));
    }

    println!("{:<10} mean training reward (smoothed, window 10)", "episode");
    let c0 = results[0].1.smoothed_mean_curve(10);
    let c1 = results[1].1.smoothed_mean_curve(10);
    for e in (0..c0.len()).step_by(10) {
        println!("{e:<10} PFRL-DM {:>8.1}   FedAvg {:>8.1}", c0[e], c1[e]);
    }
    println!(
        "\nfinal-15 mean reward: PFRL-DM {:.1} vs FedAvg {:.1}",
        results[0].1.final_mean(15),
        results[1].1.final_mean(15)
    );

    // Inspect the last round's attention weights: who listened to whom
    // (algorithm-specific state, so reach past the uniform trait).
    if let Some(runner) = results[0].2.downcast_ref::<PfrlDmRunner>() {
        if let Some(w) = runner.weight_history.last() {
            let round = runner.weight_history.len();
            let participants = &runner.participant_history[round - 1];
            println!("\nround {round} attention weights (participants {participants:?}):");
            for r in 0..w.rows() {
                let row: Vec<String> = (0..w.cols()).map(|c| format!("{:.3}", w[(r, c)])).collect();
                println!("  client {} -> [{}]", participants[r], row.join(", "));
            }
        }
    }
}
