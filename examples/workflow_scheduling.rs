//! Workflow (DAG) scheduling — the paper's future-work extension.
//!
//! Scientific workflows (layered fork–join DAGs built over the HPC-HF task
//! distribution) are scheduled by a PPO agent trained directly on the
//! dependency-aware environment, and compared with a first-fit driver.
//! The makespans are checked against each workflow's critical path (the
//! contention-free lower bound).
//!
//! Run with:
//! ```text
//! cargo run --release --example workflow_scheduling
//! ```

use pfrl_dm::rl::{PpoAgent, PpoConfig};
use pfrl_dm::sim::{Action, DagCloudEnv, EnvConfig, EnvDims, SchedulingEnv, VmSpec};
use pfrl_dm::workloads::{DatasetId, WorkflowModel};

fn run_first_fit(env: &mut DagCloudEnv) {
    while !env.is_done() {
        let a = env.first_fit_action().unwrap_or(Action::Wait);
        env.step(a);
    }
}

fn main() {
    let dims = EnvDims::new(4, 16, 128.0, 5);
    let vms = vec![
        VmSpec::new(16, 128.0),
        VmSpec::new(16, 128.0),
        VmSpec::new(8, 64.0),
        VmSpec::new(8, 64.0),
    ];
    // Fork-join DAGs over Google-sized tasks (small, parallelizable stages).
    let model = WorkflowModel::scientific(DatasetId::Google.model());
    let workflows = model.sample(8, 42);
    let total_tasks: usize = workflows.iter().map(|w| w.len()).sum();
    let cp_sum: u64 = workflows.iter().map(|w| w.critical_path()).sum();
    println!(
        "{} workflows, {} tasks total, mean critical path {:.1} min",
        workflows.len(),
        total_tasks,
        cp_sum as f64 / workflows.len() as f64
    );

    // Train PPO on the DAG environment.
    let mut env = DagCloudEnv::new(dims, vms.clone(), EnvConfig::default());
    let mut agent = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 3);
    let mut first10 = 0.0;
    let mut last10 = 0.0;
    let episodes = 120;
    for ep in 0..episodes {
        env.reset(workflows.clone());
        let r = agent.train_one_episode(&mut env) as f64;
        if ep < 10 {
            first10 += r / 10.0;
        }
        if ep >= episodes - 10 {
            last10 += r / 10.0;
        }
    }
    println!("PPO on DAGs: first-10 reward {first10:.1} -> last-10 {last10:.1}");

    // Compare makespans.
    let mut ppo_env = DagCloudEnv::new(dims, vms.clone(), EnvConfig::default());
    ppo_env.reset(workflows.clone());
    agent.evaluate(&mut ppo_env);
    let mut ff_env = DagCloudEnv::new(dims, vms, EnvConfig::default());
    ff_env.reset(workflows.clone());
    run_first_fit(&mut ff_env);

    println!(
        "\n{:<10} {:>14} {:>14} {:>16}",
        "workflow", "critical path", "PPO makespan", "firstfit makespan"
    );
    for (i, wf) in workflows.iter().enumerate() {
        let cp = wf.critical_path();
        let ppo = ppo_env.workflow_makespans()[i];
        let ff = ff_env.workflow_makespans()[i];
        println!(
            "{:<10} {:>14} {:>14} {:>16}",
            i,
            cp,
            ppo.map_or("—".into(), |v| v.to_string()),
            ff.map_or("—".into(), |v| v.to_string())
        );
        if let Some(v) = ff {
            assert!(v >= cp, "makespan below the critical-path lower bound?!");
        }
    }
    let mp = ppo_env.metrics();
    let mf = ff_env.metrics();
    println!(
        "\nepisode metrics     PPO: response {:.1}, util {:.3} | first-fit: response {:.1}, util {:.3}",
        mp.avg_response, mp.avg_utilization, mf.avg_response, mf.avg_utilization
    );
}
