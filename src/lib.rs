//! `pfrl-dm` — workspace-root crate of the PFRL-DM reproduction.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`; the library surface simply re-exports
//! [`pfrl_core`], so `use pfrl_dm::presets::…` works from the examples.
//!
//! See the README for the project overview and `DESIGN.md` for the
//! system inventory and experiment index.

pub use pfrl_core::*;
