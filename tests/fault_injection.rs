//! Chaos tests of the fault-tolerant federation runtime: deterministic
//! fault injection, partial-participation aggregation, update quarantine,
//! and checkpoint/kill/resume — across all four runners.

use pfrl_core::experiment::{run_federation_resumable, Algorithm, CheckpointConfig};
use pfrl_fed::{
    ClientSetup, FaultPlan, FedAvgRunner, FedConfig, IndependentRunner, MfpoRunner, PfrlDmRunner,
    QuarantinePolicy, TrainingCurves,
};
use pfrl_rl::PpoConfig;
use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_telemetry::{InMemoryRecorder, Telemetry};
use pfrl_workloads::DatasetId;
use std::sync::Arc;

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn setups(n: usize) -> Vec<ClientSetup> {
    let datasets = [DatasetId::K8s, DatasetId::Google, DatasetId::Alibaba2017, DatasetId::Kvm2019];
    (0..n)
        .map(|i| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: datasets[i % datasets.len()].model().sample(60, 300 + i as u64),
        })
        .collect()
}

fn fed(episodes: usize, parallel: bool) -> FedConfig {
    FedConfig {
        episodes,
        comm_every: 2,
        participation_k: 2,
        tasks_per_episode: Some(12),
        seed: 33,
        parallel,
    }
}

/// A plan exercising every fault type at once.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(17).with_dropout(0.2).with_straggle(0.1, 2).with_corrupt(0.1).with_stale(0.1, 2)
}

/// Trains one runner of each algorithm under `plan` and returns its curves.
fn run_with_plan(
    alg: Algorithm,
    plan: FaultPlan,
    episodes: usize,
    parallel: bool,
) -> TrainingCurves {
    let (s, d, e) = (setups(4), dims(), EnvConfig::default());
    let p = PpoConfig::default();
    let f = fed(episodes, parallel);
    match alg {
        Algorithm::PfrlDm => PfrlDmRunner::new(s, d, e, p, f).with_fault_plan(plan).train(),
        Algorithm::FedAvg => FedAvgRunner::new(s, d, e, p, f).with_fault_plan(plan).train(),
        Algorithm::Mfpo => MfpoRunner::new(s, d, e, p, f).with_fault_plan(plan).train(),
        Algorithm::Ppo => IndependentRunner::new(s, d, e, p, f).with_fault_plan(plan).train(),
    }
}

#[test]
#[ignore = "slow tier: 8 full trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn none_plan_matches_default_construction_for_all_runners() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(4, false);
    // Explicitly installing the empty plan must not perturb training.
    let base = PfrlDmRunner::new(setups(4), d, e, p, f).train();
    assert_eq!(run_with_plan(Algorithm::PfrlDm, FaultPlan::none(), 4, false), base);
    let base = FedAvgRunner::new(setups(4), d, e, p, f).train();
    assert_eq!(run_with_plan(Algorithm::FedAvg, FaultPlan::none(), 4, false), base);
    let base = MfpoRunner::new(setups(4), d, e, p, f).train();
    assert_eq!(run_with_plan(Algorithm::Mfpo, FaultPlan::none(), 4, false), base);
    let base = IndependentRunner::new(setups(4), d, e, p, f).train();
    assert_eq!(run_with_plan(Algorithm::Ppo, FaultPlan::none(), 4, false), base);
}

#[test]
#[ignore = "slow tier: 8 chaos trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn fault_plan_is_bit_identical_across_thread_counts() {
    // The same fault seed must replay the same schedule whether clients
    // train sequentially or on the rayon pool.
    for alg in Algorithm::ALL {
        let sequential = run_with_plan(alg, chaos_plan(), 6, false);
        let parallel = run_with_plan(alg, chaos_plan(), 6, true);
        assert_eq!(sequential, parallel, "{alg}: fault schedule depends on thread count");
    }
}

#[test]
fn dropout_heavy_runs_complete_with_finite_losses() {
    let plan = FaultPlan::new(9).with_dropout(0.2).with_corrupt(0.1);
    for alg in Algorithm::ALL {
        let curves = run_with_plan(alg, plan, 6, false);
        assert_eq!(curves.clients(), 4, "{alg}");
        for (i, c) in curves.per_client.iter().enumerate() {
            assert_eq!(c.len(), 6, "{alg}: client {i} missed local episodes");
            assert!(c.iter().all(|r| r.is_finite()), "{alg}: non-finite reward on client {i}");
        }
    }
}

#[test]
fn faults_surface_in_telemetry() {
    let rec = Arc::new(InMemoryRecorder::new());
    let plan = FaultPlan::new(3).with_dropout(0.25).with_corrupt(0.5);
    let mut r = PfrlDmRunner::new(
        setups(4),
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fed(16, false),
    )
    .with_telemetry(Telemetry::new(rec.clone()))
    .with_fault_plan(plan);
    let _ = r.train();
    let snap = rec.snapshot();
    assert!(snap.counter("fed/dropouts") > 0, "no dropouts recorded");
    assert!(snap.counter("fed/quarantined") > 0, "no quarantined uploads recorded");
    assert!(
        snap.histogram("fed/participation_fraction").is_some(),
        "participation fraction not observed"
    );
}

#[test]
fn aggressive_quarantine_evicts_repeat_offenders() {
    let rec = Arc::new(InMemoryRecorder::new());
    // Corrupt-every-round pressure plus a 1-strike policy forces evictions.
    let plan = FaultPlan::new(29).with_corrupt(0.9);
    let policy = QuarantinePolicy { evict_after: 1, ..QuarantinePolicy::default() };
    let cfg = FedConfig { participation_k: 1, ..fed(10, false) };
    let mut r =
        FedAvgRunner::new(setups(3), dims(), EnvConfig::default(), PpoConfig::default(), cfg)
            .with_telemetry(Telemetry::new(rec.clone()))
            .with_fault_plan(plan)
            .with_quarantine_policy(policy);
    let curves = r.train();
    assert!(curves.per_client.iter().all(|c| c.iter().all(|r| r.is_finite())));
    let snap = rec.snapshot();
    assert!(snap.counter("fed/evictions") > 0, "no evictions under 1-strike policy");
}

/// Kill-and-resume for every runner: train one round, checkpoint, rebuild
/// the runner from scratch (simulating a process kill), restore, and finish
/// — the curves must match an uninterrupted run bit-for-bit.
#[test]
#[ignore = "slow tier: 12 chaos trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn checkpoint_kill_resume_is_bit_identical() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(6, false);
    let plan = chaos_plan();

    let full = run_with_plan(Algorithm::PfrlDm, plan, 6, false);
    let mut half = PfrlDmRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    half.train_round();
    let bytes = half.checkpoint_bytes();
    drop(half);
    let mut resumed = PfrlDmRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.rounds_done(), 1);
    assert_eq!(resumed.train(), full, "PFRL-DM: resumed curves diverge");

    let full = run_with_plan(Algorithm::FedAvg, plan, 6, false);
    let mut half = FedAvgRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    half.train_round();
    let bytes = half.checkpoint_bytes();
    let mut resumed = FedAvgRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.train(), full, "FedAvg: resumed curves diverge");

    let full = run_with_plan(Algorithm::Mfpo, plan, 6, false);
    let mut half = MfpoRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    half.train_round();
    let bytes = half.checkpoint_bytes();
    let mut resumed = MfpoRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.train(), full, "MFPO: resumed curves diverge");

    let full = run_with_plan(Algorithm::Ppo, plan, 6, false);
    let mut half = IndependentRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    half.train_round();
    let bytes = half.checkpoint_bytes();
    let mut resumed = IndependentRunner::new(setups(4), d, e, p, f).with_fault_plan(plan);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.train(), full, "PPO: resumed curves diverge");
}

#[test]
fn checkpoint_refuses_mismatched_federation() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let mut a = FedAvgRunner::new(setups(3), d, e, p, fed(4, false));
    a.train_round();
    let bytes = a.checkpoint_bytes();
    // Different seed → different federation → must be rejected.
    let other = FedConfig { seed: 99, ..fed(4, false) };
    let mut b = FedAvgRunner::new(setups(3), d, e, p, other);
    let err = b.restore_checkpoint(&bytes).unwrap_err();
    assert!(matches!(err, pfrl_fed::FedError::Checkpoint(_)), "got {err:?}");
    // Garbage is rejected up front.
    assert!(b.restore_checkpoint(b"garbage").is_err());
}

#[test]
fn resumable_driver_checkpoints_and_restores_on_disk() {
    let dir = std::env::temp_dir().join(format!("pfrl-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fedavg.ckpt");
    let _ = std::fs::remove_file(&path);
    let ckpt = CheckpointConfig::every_round(&path);
    let run = || {
        run_federation_resumable(
            Algorithm::FedAvg,
            setups(3),
            dims(),
            EnvConfig::default(),
            PpoConfig::default(),
            fed(5, false),
            chaos_plan(),
            &ckpt,
            Telemetry::noop(),
        )
        .expect("resumable run")
    };
    // First invocation trains from scratch and leaves a checkpoint behind.
    let (curves_a, fed_a) = run();
    assert!(path.exists(), "checkpoint not persisted");
    assert_eq!(fed_a.algorithm(), Algorithm::FedAvg);
    let r = fed_a.downcast_ref::<FedAvgRunner>().expect("wrong federation kind");
    assert_eq!(r.rounds_done(), 2);
    // Second invocation restores the final checkpoint, skips all completed
    // rounds, and reproduces the identical curves (the post-round leftover
    // episodes replay deterministically from the restored cursors).
    let (curves_b, _) = run();
    assert_eq!(curves_a, curves_b, "restored run diverged from original");
    std::fs::remove_dir_all(&dir).ok();
}
