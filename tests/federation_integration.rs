//! Cross-crate integration tests of the federated runtime.

use pfrl_fed::{ClientSetup, FedAvgRunner, FedConfig, MfpoRunner, PfrlDmRunner};
use pfrl_nn::params::average_params;
use pfrl_rl::PpoConfig;
use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_workloads::DatasetId;

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn setups(n: usize) -> Vec<ClientSetup> {
    let datasets = [
        DatasetId::K8s,
        DatasetId::Google,
        DatasetId::Alibaba2017,
        DatasetId::Kvm2019,
        DatasetId::HpcHf,
    ];
    (0..n)
        .map(|i| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: datasets[i % datasets.len()].model().sample(80, 100 + i as u64),
        })
        .collect()
}

fn fed(episodes: usize, k: usize) -> FedConfig {
    FedConfig {
        episodes,
        comm_every: 2,
        participation_k: k,
        tasks_per_episode: Some(15),
        seed: 42,
        parallel: true,
    }
}

#[test]
fn fedavg_round_synchronizes_and_preserves_mean() {
    let mut r =
        FedAvgRunner::new(setups(3), dims(), EnvConfig::default(), PpoConfig::default(), fed(4, 1));
    r.train();
    // Episodes = 4, comm_every = 2: the run ends exactly on an aggregation.
    let actor0 = r.clients[0].agent.actor_params();
    for c in &r.clients {
        assert_eq!(c.agent.actor_params(), actor0);
        assert_eq!(c.agent.critic_params(), r.clients[0].agent.critic_params());
    }
}

#[test]
fn pfrl_dm_only_critics_travel_and_weights_are_stochastic() {
    let mut r =
        PfrlDmRunner::new(setups(4), dims(), EnvConfig::default(), PpoConfig::default(), fed(4, 2));
    r.train();
    // Actors stay private.
    let a0 = r.clients[0].agent.actor.flat_params();
    let a1 = r.clients[1].agent.actor.flat_params();
    assert_ne!(a0, a1);
    // Every recorded attention matrix is row-stochastic.
    assert!(!r.weight_history.is_empty());
    for w in &r.weight_history {
        for row in 0..w.rows() {
            let s: f32 = w.row(row).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
            assert!(w.row(row).iter().all(|&v| v >= 0.0));
        }
    }
    // Global model is the mean of the last round's personalized models.
    assert_eq!(r.server_global().len(), r.clients[0].agent.public_critic_params().len());
}

#[test]
fn mfpo_clients_synchronized_after_every_round() {
    let mut r =
        MfpoRunner::new(setups(3), dims(), EnvConfig::default(), PpoConfig::default(), fed(4, 1));
    r.train();
    let p0 = r.clients[0].agent.actor_params();
    for c in &r.clients {
        assert_eq!(c.agent.actor_params(), p0);
    }
}

#[test]
fn full_stack_determinism_parallel_vs_sequential() {
    let run = |parallel: bool| {
        let cfg = FedConfig { parallel, ..fed(4, 2) };
        let mut r =
            PfrlDmRunner::new(setups(4), dims(), EnvConfig::default(), PpoConfig::default(), cfg);
        let curves = r.train();
        (curves, r.server_global().to_vec())
    };
    let (c1, g1) = run(true);
    let (c2, g2) = run(false);
    assert_eq!(c1, c2, "reward curves must not depend on thread count");
    assert_eq!(g1, g2, "server model must not depend on thread count");
}

#[test]
fn average_params_matches_manual_mean_through_training() {
    let mut r =
        FedAvgRunner::new(setups(2), dims(), EnvConfig::default(), PpoConfig::default(), fed(2, 1));
    // One local phase without aggregation:
    r.clients.iter_mut().for_each(|c| c.run_episodes(1));
    let actors: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
    let mean = average_params(&actors);
    r.aggregate(0);
    let got = r.clients[1].agent.actor_params();
    for (g, m) in got.iter().zip(&mean) {
        assert!((g - m).abs() < 1e-6);
    }
}
