//! Golden-fixture tests for the two binary wire formats: the federation
//! checkpoint container (`PFRL-FEDCKPT\x01`) and the policy-snapshot
//! container (`PFRL-POLICY\x01`).
//!
//! The fixtures under `tests/fixtures/` are known-good bytes committed to
//! the repository. Round-trip unit tests only prove the *current* encoder
//! and decoder agree with each other; these tests prove today's decoder
//! still accepts bytes written by a past encoder, so a codec edit cannot
//! silently orphan checkpoints and exported policies already on disk.
//! Any intentional format change must bump the version byte in the magic
//! and regenerate the fixtures (see `regenerate_golden_fixtures` below),
//! which makes the compatibility break explicit in the diff.

use pfrl_core::experiment::{run_federation, Algorithm};
use pfrl_core::fed::{
    ClientSetup, FaultPlan, FedAvgRunner, FedConfig, PfrlDmRunner, PolicySnapshot,
};
use pfrl_core::rl::PpoConfig;
use pfrl_core::serve::Session;
use pfrl_core::sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_core::workloads::DatasetId;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name}: {e}. Run \
             `cargo test --test codec_fixtures -- --ignored regenerate` to create it."
        )
    })
}

/// The frozen federation the checkpoint fixtures belong to. Everything
/// here is part of the fixture contract: the checkpoint fingerprint pins
/// seed/schedule/client count, so the decode tests must rebuild runners
/// with these exact values.
fn fixture_dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn fixture_setups() -> Vec<ClientSetup> {
    let datasets = [DatasetId::K8s, DatasetId::Google, DatasetId::Alibaba2017];
    datasets
        .iter()
        .enumerate()
        .map(|(i, d)| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: d.model().sample(40, 1000 + i as u64),
        })
        .collect()
}

fn fixture_fed() -> FedConfig {
    FedConfig {
        episodes: 4,
        comm_every: 2,
        participation_k: 2,
        tasks_per_episode: Some(10),
        seed: 4242,
        parallel: false,
    }
}

/// A plan touching every fault type, so the checkpoint fixtures carry
/// non-trivial `ClientFault` state (quarantine history, straggler cursors).
fn fixture_plan() -> FaultPlan {
    FaultPlan::new(17).with_dropout(0.2).with_straggle(0.1, 2).with_corrupt(0.1).with_stale(0.1, 2)
}

fn pfrl_dm_runner() -> PfrlDmRunner {
    PfrlDmRunner::new(
        fixture_setups(),
        fixture_dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fixture_fed(),
    )
    .with_fault_plan(fixture_plan())
}

fn fedavg_runner() -> FedAvgRunner {
    FedAvgRunner::new(
        fixture_setups(),
        fixture_dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fixture_fed(),
    )
    .with_fault_plan(fixture_plan())
}

/// Policy fixtures come from a tiny full federation (both agent bodies:
/// PFRL-DM exercises the dual-critic snapshot, PPO the single-critic one).
fn policy_fixture_bytes(alg: Algorithm) -> Vec<u8> {
    let (_, trained) = run_federation(
        alg,
        fixture_setups(),
        fixture_dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fixture_fed(),
    );
    trained.policy_snapshots()[0].to_bytes()
}

#[test]
fn golden_fedckpt_pfrl_dm_still_restores() {
    let bytes = read_fixture("pfrl_dm_round1.fedckpt");
    let mut runner = pfrl_dm_runner();
    runner.restore_checkpoint(&bytes).expect("committed PFRL-DM checkpoint must restore");
    assert_eq!(runner.rounds_done(), 1, "fixture was written after exactly one round");
    // The restored state must be trainable, not just parseable.
    let curves = runner.train();
    assert_eq!(curves.clients(), 3);
    assert!(curves.per_client.iter().all(|c| c.iter().all(|r| r.is_finite())));
}

#[test]
fn golden_fedckpt_fedavg_still_restores() {
    let bytes = read_fixture("fedavg_round1.fedckpt");
    let mut runner = fedavg_runner();
    runner.restore_checkpoint(&bytes).expect("committed FedAvg checkpoint must restore");
    assert_eq!(runner.rounds_done(), 1);
    let curves = runner.train();
    assert_eq!(curves.clients(), 3);
    assert!(curves.per_client.iter().all(|c| c.iter().all(|r| r.is_finite())));
}

#[test]
fn golden_policy_snapshots_still_decode_and_serve() {
    for (name, algorithm) in [("pfrl_dm_client0.policy", "PFRL-DM"), ("ppo_client0.policy", "PPO")]
    {
        let bytes = read_fixture(name);
        let snap = PolicySnapshot::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("committed snapshot {name} must decode: {e}"));
        assert_eq!(snap.algorithm, algorithm, "{name}");
        assert_eq!(snap.client, "client0", "{name}");
        // Decoding is not enough: the snapshot must instantiate a serving
        // session and drive a full episode.
        let tasks = DatasetId::Google.model().sample(15, 7);
        let mut session =
            Session::new(&snap).unwrap_or_else(|e| panic!("snapshot {name} must instantiate: {e}"));
        let m = session.run_episode(&tasks);
        assert_eq!(m.tasks_placed + m.tasks_unplaced, 15, "{name}");
    }
}

/// Corrupting the magic or truncating the payload must be an error, never
/// a garbage decode — for both containers.
#[test]
fn corrupted_fixtures_are_rejected() {
    let mut ckpt = read_fixture("fedavg_round1.fedckpt");
    ckpt[0] ^= 0xFF;
    assert!(fedavg_runner().restore_checkpoint(&ckpt).is_err(), "bad magic accepted");
    ckpt[0] ^= 0xFF;
    let truncated = &ckpt[..ckpt.len() / 2];
    assert!(fedavg_runner().restore_checkpoint(truncated).is_err(), "truncation accepted");

    let mut policy = read_fixture("pfrl_dm_client0.policy");
    policy[0] ^= 0xFF;
    assert!(PolicySnapshot::from_bytes(&policy).is_err(), "bad magic accepted");
    policy[0] ^= 0xFF;
    assert!(
        PolicySnapshot::from_bytes(&policy[..policy.len() - 3]).is_err(),
        "truncation accepted"
    );
}

/// Regenerates every fixture. Ignored: run it only when the wire format
/// changes *intentionally* (after bumping the magic's version byte), and
/// commit the new bytes together with the format change.
#[test]
#[ignore = "writes tests/fixtures/; run manually on intentional format changes"]
fn regenerate_golden_fixtures() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();

    let mut dm = pfrl_dm_runner();
    dm.train_round();
    std::fs::write(fixture_path("pfrl_dm_round1.fedckpt"), dm.checkpoint_bytes()).unwrap();

    let mut fa = fedavg_runner();
    fa.train_round();
    std::fs::write(fixture_path("fedavg_round1.fedckpt"), fa.checkpoint_bytes()).unwrap();

    std::fs::write(fixture_path("pfrl_dm_client0.policy"), policy_fixture_bytes(Algorithm::PfrlDm))
        .unwrap();
    std::fs::write(fixture_path("ppo_client0.policy"), policy_fixture_bytes(Algorithm::Ppo))
        .unwrap();
}
