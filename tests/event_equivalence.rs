//! Golden-trace equivalence suite: the event-calendar time engine must be
//! **bit-identical** to the stepped reference engine — per-step rewards,
//! simulation clocks, `EpisodeMetrics`, and deterministic telemetry
//! fingerprints — on every paper dataset, for both the flat and the DAG
//! environments, with fast-forward on and off.
//!
//! The driving policy deliberately exercises every reward branch:
//! successful placements, infeasible denials, void VM slots, lazy waits,
//! and neutral (fast-forwarding) waits.

use std::collections::BTreeMap;
use std::sync::Arc;

use pfrl_core::sim::{
    run_blind_random, run_heuristic, Action, CloudEnv, DagCloudEnv, EnvConfig, EnvDims,
    EpisodeMetrics, HeuristicPolicy, SchedulingEnv, TimeEngine, VmSpec,
};
use pfrl_core::telemetry::{InMemoryRecorder, Telemetry};
use pfrl_core::workloads::{DatasetId, TaskSpec, Workflow, WorkflowModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn dims() -> EnvDims {
    EnvDims::new(4, 8, 64.0, 5)
}

fn vms() -> Vec<VmSpec> {
    vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0), VmSpec::new(2, 16.0)]
}

/// A seeded policy hitting all reward branches: mostly first-fit, with a
/// mix of waits and raw (possibly denied / void-slot) VM picks.
fn mixed_action(first_fit: Option<Action>, max_vms: usize, rng: &mut SmallRng) -> Action {
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.15 {
        Action::Wait
    } else if roll < 0.30 {
        Action::Vm(rng.gen_range(0..max_vms))
    } else {
        first_fit.unwrap_or(Action::Wait)
    }
}

fn assert_metrics_bit_identical(label: &str, a: &EpisodeMetrics, b: &EpisodeMetrics) {
    assert_eq!(a.avg_response.to_bits(), b.avg_response.to_bits(), "{label}: avg_response");
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{label}: makespan");
    assert_eq!(
        a.avg_utilization.to_bits(),
        b.avg_utilization.to_bits(),
        "{label}: avg_utilization"
    );
    assert_eq!(
        a.avg_load_balance.to_bits(),
        b.avg_load_balance.to_bits(),
        "{label}: avg_load_balance"
    );
    assert_eq!(a.tasks_placed, b.tasks_placed, "{label}: tasks_placed");
    assert_eq!(a.tasks_unplaced, b.tasks_unplaced, "{label}: tasks_unplaced");
    assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits(), "{label}: total_reward");
}

/// Lockstep-drives a stepped and an event flat env over the same trace and
/// asserts bitwise-equal rewards, clocks, events, and metrics.
fn assert_flat_equivalent(label: &str, cfg: EnvConfig, tasks: Vec<TaskSpec>) {
    let mut stepped = CloudEnv::new(dims(), vms(), cfg);
    stepped.set_time_engine(TimeEngine::Stepped);
    let mut event = CloudEnv::new(dims(), vms(), cfg);
    assert_eq!(event.time_engine(), TimeEngine::Event, "event engine is the default");

    stepped.reset(tasks.clone());
    event.reset(tasks);
    assert_eq!(stepped.now(), event.now(), "{label}: clock after reset");
    assert_eq!(stepped.events(), event.events(), "{label}: events after reset");

    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut steps = 0u64;
    while !stepped.is_done() {
        let a = mixed_action(stepped.first_fit_action(), stepped.dims().max_vms, &mut rng);
        let rs = stepped.step(a);
        let re = event.step(a);
        assert_eq!(
            rs.reward.to_bits(),
            re.reward.to_bits(),
            "{label}: reward diverged at step {steps} ({} vs {})",
            rs.reward,
            re.reward
        );
        assert_eq!((rs.done, rs.placed), (re.done, re.placed), "{label}: outcome at {steps}");
        assert_eq!(stepped.now(), event.now(), "{label}: clock at {steps}");
        assert_eq!(stepped.queue_len(), event.queue_len(), "{label}: queue at {steps}");
        steps += 1;
    }
    assert!(event.is_done(), "{label}: engines disagree on episode end");
    assert_eq!(stepped.events(), event.events(), "{label}: event counts");
    assert!(event.events() > 0, "{label}: no events applied");
    assert_eq!(stepped.rejected(), event.rejected(), "{label}: rejected");
    assert_metrics_bit_identical(label, &stepped.metrics(), &event.metrics());
}

#[test]
fn flat_env_bit_identical_across_all_datasets() {
    for ds in DatasetId::ALL {
        let mut tasks = ds.model().sample(120, 7);
        // Densify arrivals so the cluster actually saturates (denials and
        // forced waits occur), as the eval matrix does.
        for t in &mut tasks {
            t.arrival /= 4;
        }
        assert_flat_equivalent(&format!("{ds:?}"), EnvConfig::default(), tasks);
    }
}

#[test]
fn flat_env_bit_identical_without_fast_forward() {
    for ds in [DatasetId::K8s, DatasetId::Kvm2019] {
        let tasks = ds.model().sample(60, 3);
        let cfg = EnvConfig { fast_forward: false, ..Default::default() };
        assert_flat_equivalent(&format!("{ds:?} (dense stepping)"), cfg, tasks);
    }
}

#[test]
fn flat_env_bit_identical_on_sparse_traces() {
    // Sparse arrivals are where the event engine actually jumps far; the
    // contract must hold there too.
    for ds in [DatasetId::HpcKs, DatasetId::Google] {
        let mut tasks = ds.model().sample(80, 13);
        for t in &mut tasks {
            t.arrival *= 8;
        }
        assert_flat_equivalent(&format!("{ds:?} (sparse)"), EnvConfig::default(), tasks);
    }
}

/// Lockstep-drives the DAG environment on both engines.
fn assert_dag_equivalent(label: &str, cfg: EnvConfig, workflows: Vec<Workflow>) {
    let mut stepped = DagCloudEnv::new(dims(), vms(), cfg);
    stepped.set_time_engine(TimeEngine::Stepped);
    let mut event = DagCloudEnv::new(dims(), vms(), cfg);

    stepped.reset(workflows.clone());
    event.reset(workflows);
    assert_eq!(stepped.now(), event.now(), "{label}: clock after reset");

    let mut rng = SmallRng::seed_from_u64(0xdead);
    let mut steps = 0u64;
    while !stepped.is_done() {
        let max_vms = SchedulingEnv::dims(&stepped).max_vms;
        let a = mixed_action(stepped.first_fit_action(), max_vms, &mut rng);
        let rs = stepped.step(a);
        let re = event.step(a);
        assert_eq!(
            rs.reward.to_bits(),
            re.reward.to_bits(),
            "{label}: reward diverged at step {steps}"
        );
        assert_eq!((rs.done, rs.placed), (re.done, re.placed), "{label}: outcome at {steps}");
        assert_eq!(stepped.now(), event.now(), "{label}: clock at {steps}");
        assert_eq!(stepped.queue_len(), event.queue_len(), "{label}: queue at {steps}");
        steps += 1;
    }
    assert!(event.is_done(), "{label}: engines disagree on episode end");
    assert_eq!(stepped.events(), event.events(), "{label}: event counts");
    assert_eq!(stepped.workflow_makespans(), event.workflow_makespans(), "{label}: makespans");
    assert_metrics_bit_identical(label, &stepped.metrics(), &event.metrics());
}

#[test]
fn dag_env_bit_identical_across_datasets() {
    for (i, ds) in DatasetId::ALL.iter().enumerate() {
        let mut model = WorkflowModel::scientific(ds.model());
        // Densify submissions so workflows overlap and contend.
        model.mean_interarrival /= 4.0;
        let workflows = model.sample(8, 100 + i as u64);
        assert_dag_equivalent(&format!("{ds:?} workflows"), EnvConfig::default(), workflows);
    }
}

#[test]
fn dag_env_bit_identical_without_fast_forward() {
    let model = WorkflowModel::scientific(DatasetId::Alibaba2018.model());
    let workflows = model.sample(4, 42);
    let cfg = EnvConfig { fast_forward: false, ..Default::default() };
    assert_dag_equivalent("Alibaba2018 workflows (dense stepping)", cfg, workflows);
}

type Fingerprint = (BTreeMap<String, u64>, BTreeMap<String, (Vec<(usize, u64)>, u64, u64, u64)>);

/// Runs `episodes` mixed-policy episodes against a telemetry recorder and
/// returns its deterministic fingerprint.
fn flat_fingerprint(engine: TimeEngine, episodes: usize) -> Fingerprint {
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut env = CloudEnv::new(dims(), vms(), EnvConfig::default());
    env.set_time_engine(engine);
    env.set_telemetry(Telemetry::new(recorder.clone()));
    let mut rng = SmallRng::seed_from_u64(99);
    for ep in 0..episodes {
        let mut tasks = DatasetId::Kvm2020.model().sample(60, ep as u64);
        for t in &mut tasks {
            t.arrival /= 4;
        }
        env.reset(tasks);
        while !env.is_done() {
            let a = mixed_action(env.first_fit_action(), env.dims().max_vms, &mut rng);
            env.step(a);
        }
    }
    recorder.snapshot().deterministic_fingerprint()
}

#[test]
fn flat_env_telemetry_fingerprints_match_across_engines() {
    let stepped = flat_fingerprint(TimeEngine::Stepped, 3);
    let event = flat_fingerprint(TimeEngine::Event, 3);
    assert_eq!(stepped, event);
    // The fingerprint actually covers the new event-core signals.
    assert!(event.0.contains_key("sim/events"), "sim/events counter missing");
    assert!(
        event.1.contains_key("sim/event_horizon_jump"),
        "sim/event_horizon_jump histogram missing"
    );
    assert!(event.0["sim/events"] > 0);
}

/// Same fingerprint check for the DAG env (which gained telemetry in this
/// redesign).
fn dag_fingerprint(engine: TimeEngine, episodes: usize) -> Fingerprint {
    let recorder = Arc::new(InMemoryRecorder::new());
    let mut env = DagCloudEnv::new(dims(), vms(), EnvConfig::default());
    env.set_time_engine(engine);
    env.set_telemetry(Telemetry::new(recorder.clone()));
    let mut rng = SmallRng::seed_from_u64(7);
    let model = WorkflowModel::scientific(DatasetId::K8s.model());
    for ep in 0..episodes {
        env.reset(model.sample(5, ep as u64));
        while !env.is_done() {
            let max_vms = SchedulingEnv::dims(&env).max_vms;
            let a = mixed_action(env.first_fit_action(), max_vms, &mut rng);
            env.step(a);
        }
    }
    recorder.snapshot().deterministic_fingerprint()
}

#[test]
fn dag_env_telemetry_fingerprints_match_across_engines() {
    let stepped = dag_fingerprint(TimeEngine::Stepped, 2);
    let event = dag_fingerprint(TimeEngine::Event, 2);
    assert_eq!(stepped, event);
    assert!(event.0.contains_key("sim/events"));
    assert!(event.0.contains_key("sim/decisions"));
}

#[test]
fn heuristic_baselines_bit_identical_across_engines() {
    for policy in [
        HeuristicPolicy::Random,
        HeuristicPolicy::FirstFit,
        HeuristicPolicy::BestFit,
        HeuristicPolicy::WorstFit,
    ] {
        let tasks = DatasetId::Google.model().sample(80, 21);
        let mut stepped = CloudEnv::new(dims(), vms(), EnvConfig::default());
        stepped.set_time_engine(TimeEngine::Stepped);
        let mut event = CloudEnv::new(dims(), vms(), EnvConfig::default());
        stepped.reset(tasks.clone());
        event.reset(tasks);
        let ms = run_heuristic(&mut stepped, policy, 5);
        let me = run_heuristic(&mut event, policy, 5);
        assert_metrics_bit_identical(&format!("{policy:?}"), &ms, &me);
    }
    // Blind-random exercises denials and void slots heavily.
    let tasks = DatasetId::CeritSc.model().sample(60, 33);
    let mut stepped = CloudEnv::new(dims(), vms(), EnvConfig::default());
    stepped.set_time_engine(TimeEngine::Stepped);
    let mut event = CloudEnv::new(dims(), vms(), EnvConfig::default());
    stepped.reset(tasks.clone());
    event.reset(tasks);
    let ms = run_blind_random(&mut stepped, 5);
    let me = run_blind_random(&mut event, 5);
    assert_metrics_bit_identical("BlindRandom", &ms, &me);
}
