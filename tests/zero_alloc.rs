//! Steady-state allocation audit of the training and inference hot paths.
//!
//! A counting `#[global_allocator]` wrapper tallies every allocation in the
//! process. After a warmup pass has sized all workspaces, a full PPO
//! train-episode + update, a dual-critic update, and per-decision greedy
//! inference must allocate **zero** bytes.
//!
//! Both measurements live in one `#[test]` because the counters are
//! process-global and libtest runs sibling tests on parallel threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pfrl_core::fed::PolicySnapshot;
use pfrl_core::nn::{Activation, Mlp};
use pfrl_core::rl::{policy, DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_core::serve::Session;
use pfrl_core::sim::{Action, CloudEnv, EnvConfig, EnvDims, VmSpec};
use pfrl_core::workloads::DatasetId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns `(alloc_calls, alloc_bytes, result)` for it alone.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let out = f();
    let calls = ALLOC_CALLS.load(Ordering::SeqCst) - calls0;
    let bytes = ALLOC_BYTES.load(Ordering::SeqCst) - bytes0;
    (calls, bytes, out)
}

#[test]
fn hot_paths_are_allocation_free_after_warmup() {
    let dims = EnvDims::new(2, 8, 64.0, 3);
    let mut env =
        CloudEnv::new(dims, vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)], EnvConfig::default());
    let tasks = DatasetId::K8s.model().sample(25, 5);

    let mut ppo = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 1);
    let mut dual =
        DualCriticAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 9);

    // Warmup: size every workspace (scratch matrices, rollout buffer, env
    // queues) to its steady-state capacity. Episode length shifts while the
    // policy is still moving, so run enough episodes for the longest
    // trajectory (and thus every batch-sized workspace) to have been seen.
    // The run is fully deterministic (seeded agents, fixed task set).
    for _ in 0..12 {
        env.reset(tasks.clone());
        ppo.train_one_episode(&mut env);
        env.reset(tasks.clone());
        dual.train_one_episode(&mut env);
        env.reset(tasks.clone());
        ppo.evaluate(&mut env);
    }

    // Steady-state PPO train episode + update. The task clone happens before
    // measurement; `reset` itself only moves the vec into the queue.
    let warm_tasks = tasks.clone();
    let (calls, bytes, _) = count_allocs(|| {
        env.reset(warm_tasks);
        ppo.train_one_episode(&mut env)
    });
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "PPO train episode + update allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state dual-critic (PFRL-DM) episode + update, including the
    // inlined alpha refresh.
    let warm_tasks = tasks.clone();
    let (calls, bytes, _) = count_allocs(|| {
        env.reset(warm_tasks);
        dual.train_one_episode(&mut env)
    });
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "dual-critic train episode + update allocated {calls} times / {bytes} bytes after warmup"
    );

    // Per-decision greedy inference: the exact observe → forward → mask →
    // argmax → step loop the agents run, measured over a full episode.
    // (End-of-episode `metrics()` summarization is diagnostics, not the
    // per-decision path, and is computed outside the measured region.)
    let mut rng = SmallRng::seed_from_u64(3);
    let mut actor =
        Mlp::new(&[dims.state_dim(), 64, 64, dims.action_dim()], Activation::Tanh, &mut rng);
    let mut state = Vec::new();
    let mut logits = Vec::new();
    let mut mask = Vec::new();
    let run_episode = |env: &mut CloudEnv,
                       actor: &mut Mlp,
                       state: &mut Vec<f32>,
                       logits: &mut Vec<f32>,
                       mask: &mut Vec<bool>| {
        let mut decisions = 0usize;
        loop {
            env.observe_into(state);
            actor.forward_one_into(state, logits);
            env.action_mask_into(mask);
            policy::apply_mask(logits, mask);
            let a = policy::greedy_action(logits);
            decisions += 1;
            if env.step(Action::from_index(a, dims.max_vms)).done {
                return decisions;
            }
        }
    };

    env.reset(tasks.clone());
    run_episode(&mut env, &mut actor, &mut state, &mut logits, &mut mask);

    let warm_tasks = tasks.clone();
    let (calls, bytes, decisions) = count_allocs(|| {
        env.reset(warm_tasks);
        run_episode(&mut env, &mut actor, &mut state, &mut logits, &mut mask)
    });
    assert!(decisions > 0, "inference episode made no decisions");
    assert!(env.metrics().tasks_placed > 0, "inference episode placed no tasks");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "greedy inference allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state serving: a `pfrl-serve` Session's decide loop over a
    // full episode. Scratch lives in the crate's thread-local pool, so
    // after one warmup episode (and the `begin_episode` task copy, which
    // stays outside the measured region) each decision allocates nothing.
    let mut rng = SmallRng::seed_from_u64(8);
    let hidden = PpoConfig::default().hidden;
    let serve_actor =
        Mlp::new(&[dims.state_dim(), hidden, dims.action_dim()], Activation::Tanh, &mut rng);
    let snapshot = PolicySnapshot {
        algorithm: "PFRL-DM".into(),
        client: "steady".into(),
        version: 1,
        dims,
        env_cfg: EnvConfig::default(),
        vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        hidden,
        mask_actions: true,
        actor_params: serve_actor.flat_params(),
    };
    let mut session = Session::new(&snapshot).expect("snapshot instantiates");
    session.begin_episode(&tasks);
    while !session.decide().done {}

    session.begin_episode(&tasks);
    let (calls, bytes, decisions) = count_allocs(|| {
        let mut n = 1usize;
        while !session.decide().done {
            n += 1;
        }
        n
    });
    assert!(decisions > 0, "serving episode made no decisions");
    assert!(session.metrics().tasks_placed > 0, "serving episode placed no tasks");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "serve Session::decide allocated {calls} times / {bytes} bytes after warmup"
    );
}
