//! Steady-state allocation audit of the training and inference hot paths.
//!
//! A counting `#[global_allocator]` wrapper tallies every allocation in the
//! process. After a warmup pass has sized all workspaces, a full PPO
//! train-episode + update, a dual-critic update, and per-decision greedy
//! inference must allocate **zero** bytes.
//!
//! Both measurements live in one `#[test]` because the counters are
//! process-global and libtest runs sibling tests on parallel threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pfrl_core::fed::{
    ClientSetup, FedAvgRunner, FedConfig, MfpoRunner, PfrlDmRunner, PolicySnapshot,
};
use pfrl_core::nn::{Activation, Mlp, MultiHeadConfig};
use pfrl_core::rl::{policy, DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_core::serve::Session;
use pfrl_core::sim::{Action, CloudEnv, EnvConfig, EnvDims, VmSpec};
use pfrl_core::workloads::DatasetId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns `(alloc_calls, alloc_bytes, result)` for it alone.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let out = f();
    let calls = ALLOC_CALLS.load(Ordering::SeqCst) - calls0;
    let bytes = ALLOC_BYTES.load(Ordering::SeqCst) - bytes0;
    (calls, bytes, out)
}

#[test]
fn hot_paths_are_allocation_free_after_warmup() {
    let dims = EnvDims::new(2, 8, 64.0, 3);
    let mut env =
        CloudEnv::new(dims, vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)], EnvConfig::default());
    let tasks = DatasetId::K8s.model().sample(25, 5);

    let mut ppo = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 1);
    let mut dual =
        DualCriticAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 9);

    // Warmup: size every workspace (scratch matrices, rollout buffer, env
    // queues) to its steady-state capacity. Episode length shifts while the
    // policy is still moving, so run enough episodes for the longest
    // trajectory (and thus every batch-sized workspace) to have been seen.
    // The run is fully deterministic (seeded agents, fixed task set).
    for _ in 0..12 {
        env.reset(tasks.clone());
        ppo.train_one_episode(&mut env);
        env.reset(tasks.clone());
        dual.train_one_episode(&mut env);
        env.reset(tasks.clone());
        ppo.evaluate(&mut env);
    }

    // Steady-state PPO train episode + update. The task clone happens before
    // measurement; `reset` itself only moves the vec into the queue.
    let warm_tasks = tasks.clone();
    let (calls, bytes, _) = count_allocs(|| {
        env.reset(warm_tasks);
        ppo.train_one_episode(&mut env)
    });
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "PPO train episode + update allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state dual-critic (PFRL-DM) episode + update, including the
    // inlined alpha refresh.
    let warm_tasks = tasks.clone();
    let (calls, bytes, _) = count_allocs(|| {
        env.reset(warm_tasks);
        dual.train_one_episode(&mut env)
    });
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "dual-critic train episode + update allocated {calls} times / {bytes} bytes after warmup"
    );

    // Per-decision greedy inference: the exact observe → forward → mask →
    // argmax → step loop the agents run, measured over a full episode.
    // (End-of-episode `metrics()` summarization is diagnostics, not the
    // per-decision path, and is computed outside the measured region.)
    let mut rng = SmallRng::seed_from_u64(3);
    let mut actor =
        Mlp::new(&[dims.state_dim(), 64, 64, dims.action_dim()], Activation::Tanh, &mut rng);
    let mut state = Vec::new();
    let mut logits = Vec::new();
    let mut mask = Vec::new();
    let run_episode = |env: &mut CloudEnv,
                       actor: &mut Mlp,
                       state: &mut Vec<f32>,
                       logits: &mut Vec<f32>,
                       mask: &mut Vec<bool>| {
        let mut decisions = 0usize;
        loop {
            env.observe_into(state);
            actor.forward_one_into(state, logits);
            env.action_mask_into(mask);
            policy::apply_mask(logits, mask);
            let a = policy::greedy_action(logits);
            decisions += 1;
            if env.step(Action::from_index(a, dims.max_vms)).done {
                return decisions;
            }
        }
    };

    env.reset(tasks.clone());
    run_episode(&mut env, &mut actor, &mut state, &mut logits, &mut mask);

    let warm_tasks = tasks.clone();
    let (calls, bytes, decisions) = count_allocs(|| {
        env.reset(warm_tasks);
        run_episode(&mut env, &mut actor, &mut state, &mut logits, &mut mask)
    });
    assert!(decisions > 0, "inference episode made no decisions");
    assert!(env.metrics().tasks_placed > 0, "inference episode placed no tasks");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "greedy inference allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state event core: the discrete-event calendar itself — event
    // pops, lazy arrival rescheduling, completion handling via `Vm::finish`,
    // and horizon jumps — must stay off the heap once the binary heap has
    // its capacity. A sparse trace maximizes calendar traffic per decision
    // (every wait is a far jump). `reset` is inside the measured region:
    // clearing the calendar retains its buffer.
    let mut sparse_tasks = DatasetId::HpcKs.model().sample(30, 11);
    for t in &mut sparse_tasks {
        t.arrival *= 8;
    }
    let mut ev_env =
        CloudEnv::new(dims, vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)], EnvConfig::default());
    assert_eq!(ev_env.time_engine(), pfrl_core::sim::TimeEngine::Event);
    let first_fit_episode = |env: &mut CloudEnv| {
        let mut decisions = 0usize;
        loop {
            let a = env.first_fit_action().unwrap_or(Action::Wait);
            decisions += 1;
            if env.step(a).done {
                return decisions;
            }
        }
    };
    for _ in 0..3 {
        ev_env.reset(sparse_tasks.clone());
        first_fit_episode(&mut ev_env);
    }
    let warm_tasks = sparse_tasks.clone();
    let (calls, bytes, decisions) = count_allocs(|| {
        ev_env.reset(warm_tasks);
        first_fit_episode(&mut ev_env)
    });
    assert!(decisions > 0, "event-core episode made no decisions");
    assert!(ev_env.events() > 0, "event-core episode applied no events");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "event-core episode (reset + calendar-driven first-fit) allocated {calls} times / {bytes} bytes after warmup"
    );

    // The DAG env's event loop (release chains + completion-driven ready
    // propagation). Its `reset` rebuilds dependency tables and is allowed
    // to allocate, so only the decision loop is measured.
    use pfrl_core::sim::{DagCloudEnv, SchedulingEnv};
    use pfrl_core::workloads::WorkflowModel;
    let wf_model = WorkflowModel::scientific(DatasetId::K8s.model());
    let workflows = wf_model.sample(4, 17);
    let mut dag_env = DagCloudEnv::new(
        dims,
        vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        EnvConfig::default(),
    );
    let dag_episode = |env: &mut DagCloudEnv| {
        let mut decisions = 0usize;
        while !env.is_done() {
            let a = env.first_fit_action().unwrap_or(Action::Wait);
            env.step(a);
            decisions += 1;
        }
        decisions
    };
    for _ in 0..3 {
        dag_env.reset(workflows.clone());
        dag_episode(&mut dag_env);
    }
    dag_env.reset(workflows.clone());
    let (calls, bytes, decisions) = count_allocs(|| dag_episode(&mut dag_env));
    assert!(decisions > 0, "DAG event-core episode made no decisions");
    assert!(dag_env.events() > 0, "DAG event-core episode applied no events");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "DAG event-core episode allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state serving: a `pfrl-serve` Session's decide loop over a
    // full episode. Scratch lives in the crate's thread-local pool, so
    // after one warmup episode (and the `begin_episode` task copy, which
    // stays outside the measured region) each decision allocates nothing.
    let mut rng = SmallRng::seed_from_u64(8);
    let hidden = PpoConfig::default().hidden;
    let serve_actor =
        Mlp::new(&[dims.state_dim(), hidden, dims.action_dim()], Activation::Tanh, &mut rng);
    let snapshot = PolicySnapshot {
        algorithm: "PFRL-DM".into(),
        client: "steady".into(),
        version: 1,
        dims,
        env_cfg: EnvConfig::default(),
        vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        hidden,
        mask_actions: true,
        actor_params: serve_actor.flat_params(),
    };
    let mut session = Session::new(&snapshot).expect("snapshot instantiates");
    session.begin_episode(&tasks);
    while !session.decide().done {}

    session.begin_episode(&tasks);
    let (calls, bytes, decisions) = count_allocs(|| {
        let mut n = 1usize;
        while !session.decide().done {
            n += 1;
        }
        n
    });
    assert!(decisions > 0, "serving episode made no decisions");
    assert!(session.metrics().tasks_placed > 0, "serving episode placed no tasks");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "serve Session::decide allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state sharded serving: submit_many → per-shard wave drains
    // (batched-GEMM decisions). After a warmup pass has sized the per-shard
    // plans, wave buffers, queues, and the caller's output vector, the
    // whole admission → wave → decision cycle must stay off the heap.
    // Telemetry is noop, as in any latency-critical deployment of the
    // sharded front end.
    use pfrl_core::serve::{PolicyStore, ShardedDecisionService, ShardedServeConfig};
    let sharded_store =
        PolicyStore::from_snapshots(vec![snapshot.clone()]).expect("snapshot loads");
    let sharded = ShardedDecisionService::new(
        sharded_store,
        ShardedServeConfig { shards: 4, queue_capacity: 64, max_batch: 16 },
    );
    let mut wave_ids: Vec<_> =
        (0..12).map(|_| sharded.open_session("steady").expect("open session")).collect();
    // Shard-grouped ids let submit_many take one lock per shard per round.
    wave_ids.sort_by_key(|&id| id & 0xff);
    let long_tasks = DatasetId::K8s.model().sample(60, 13);
    for &id in &wave_ids {
        sharded.begin_episode(id, &long_tasks).expect("begin episode");
    }
    // Warmup must cover a *complete* episode per session: the environment's
    // internal queues grow with episode progress, so measuring beyond the
    // warmup's episode position would observe their reallocation, not the
    // serving path's. Requests for already-finished episodes drop as stale,
    // which is itself part of the warmed path.
    let mut wave_out = Vec::new();
    for _ in 0..250 {
        sharded.submit_many(&wave_ids);
        for s in 0..4 {
            sharded.decide_wave_into(s, &mut wave_out);
        }
        wave_out.clear();
    }
    for &id in &wave_ids {
        assert!(
            sharded.with_session(id, |s| s.is_done()).unwrap(),
            "warmup must run every episode to completion"
        );
        sharded.begin_episode(id, &long_tasks).expect("restart episode");
    }
    for _ in 0..3 {
        sharded.submit_many(&wave_ids);
        for s in 0..4 {
            sharded.decide_wave_into(s, &mut wave_out);
        }
        wave_out.clear();
    }
    let (calls, bytes, served) = count_allocs(|| {
        let mut served = 0usize;
        for _ in 0..5 {
            sharded.submit_many(&wave_ids);
            for s in 0..4 {
                sharded.decide_wave_into(s, &mut wave_out);
            }
            served += wave_out.len();
            wave_out.clear();
        }
        served
    });
    assert_eq!(served, 5 * wave_ids.len(), "every submitted request must decide");
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "sharded wave serving allocated {calls} times / {bytes} bytes after warmup"
    );

    // Steady-state federated aggregation at K=64 — the federation-scale hot
    // path: top-k sparse attention, the pooled upload arena, and every
    // per-round workspace. After two warm-up rounds (first sizes the arena
    // and scratch, second exercises the warmed `last_good` fallback copies),
    // a full PFRL-DM aggregate() must not touch the heap. History recording
    // is switched off — `weight_history` would otherwise retain a K×K matrix
    // per round by design.
    let fed_setups = |n: usize, seed: u64| -> Vec<ClientSetup> {
        (0..n)
            .map(|i| ClientSetup {
                name: format!("agg{i}"),
                vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
                train_tasks: DatasetId::K8s.model().sample(8, seed + i as u64),
            })
            .collect()
    };
    let fed_cfg = |n: usize| FedConfig {
        episodes: 2,
        comm_every: 1,
        participation_k: n,
        tasks_per_episode: Some(8),
        seed: 77,
        parallel: false,
    };
    let att = MultiHeadConfig { top_k: Some(MultiHeadConfig::PAPER_TOP_K), ..Default::default() };
    let mut dm = PfrlDmRunner::with_attention(
        fed_setups(64, 900),
        dims,
        EnvConfig::default(),
        PpoConfig::default(),
        fed_cfg(64),
        att,
    );
    dm.set_record_history(false);
    dm.aggregate();
    dm.aggregate();
    let (calls, bytes, _) = count_allocs(|| dm.aggregate());
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "PFRL-DM K=64 top-k aggregation allocated {calls} times / {bytes} bytes after warmup"
    );

    // The same audit for the FedAvg and MFPO aggregate paths at K=256: the
    // arena and the reusable workspaces must leave nothing per-round.
    let mut fa = FedAvgRunner::new(
        fed_setups(256, 2000),
        dims,
        EnvConfig::default(),
        PpoConfig::default(),
        fed_cfg(256),
    );
    fa.aggregate(0);
    fa.aggregate(1);
    let (calls, bytes, _) = count_allocs(|| fa.aggregate(2));
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "FedAvg K=256 aggregation allocated {calls} times / {bytes} bytes after warmup"
    );

    let mut mf = MfpoRunner::new(
        fed_setups(256, 3000),
        dims,
        EnvConfig::default(),
        PpoConfig::default(),
        fed_cfg(256),
    );
    mf.aggregate();
    mf.aggregate();
    let (calls, bytes, _) = count_allocs(|| mf.aggregate());
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "MFPO K=256 aggregation allocated {calls} times / {bytes} bytes after warmup"
    );

    // The fully defended robust path at K=64: a sign-flip coalition poisons
    // its uploads in place, the norm-band + cosine screens reject them
    // (their buffers return to the arena), and the trimmed-mean reduction
    // replaces the mean. Eviction is pushed out of reach so the screened
    // cohort shape is stable round over round; after two warm-up rounds the
    // whole attack → screen → reduce pipeline must not touch the heap.
    use pfrl_core::fed::{AttackPlan, QuarantinePolicy, RobustConfig};
    let mut df = FedAvgRunner::new(
        fed_setups(64, 4000),
        dims,
        EnvConfig::default(),
        PpoConfig::default(),
        fed_cfg(64),
    )
    .with_attack_plan(AttackPlan::new(11).with_sign_flip(0.25, 1.0))
    .with_robust_aggregator(RobustConfig::defended())
    .with_quarantine_policy(QuarantinePolicy { evict_after: 1_000_000, ..Default::default() });
    df.aggregate(0);
    df.aggregate(1);
    let (calls, bytes, _) = count_allocs(|| df.aggregate(2));
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "defended FedAvg K=64 screen+trim aggregation allocated {calls} times / {bytes} bytes after warmup"
    );
}
