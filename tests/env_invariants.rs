//! Cross-crate property tests: the simulator must uphold its physical
//! invariants under arbitrary (including adversarial) action sequences.

use pfrl_sim::{Action, CloudEnv, EnvConfig, EnvDims, VmSpec};
use pfrl_workloads::TaskSpec;
use proptest::prelude::*;

fn dims() -> EnvDims {
    EnvDims::new(3, 8, 64.0, 4)
}

fn mk_env() -> CloudEnv {
    CloudEnv::new(
        dims(),
        vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0), VmSpec::new(2, 16.0)],
        EnvConfig { max_decisions: 5_000, ..Default::default() },
    )
}

fn arb_tasks(max: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (0u64..200, 1u32..10, 1u32..70, 1u64..50).prop_map(|(arrival, vcpus, mem, dur)| TaskSpec {
            id: 0,
            arrival,
            vcpus,
            mem_gb: mem as f32,
            duration: dur,
        }),
        1..max,
    )
    .prop_map(|mut ts| {
        for (i, t) in ts.iter_mut().enumerate() {
            t.id = i as u64;
        }
        ts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No VM is ever over capacity, no matter what the agent does.
    #[test]
    fn capacity_never_exceeded(tasks in arb_tasks(30), actions in proptest::collection::vec(0usize..4, 1..400)) {
        let mut env = mk_env();
        env.reset(tasks);
        for &a in &actions {
            if env.is_done() {
                break;
            }
            env.step(Action::from_index(a, 3));
            for vm in env.cluster().vms() {
                prop_assert!(vm.used_vcpus() <= vm.spec.vcpus);
                prop_assert!(vm.used_mem() <= vm.spec.mem_gb + 1e-3);
            }
        }
    }

    /// Task conservation: placed + queued + pending + rejected = total.
    #[test]
    fn tasks_conserved(tasks in arb_tasks(25), actions in proptest::collection::vec(0usize..4, 1..300)) {
        let total = tasks.len();
        let mut env = mk_env();
        env.reset(tasks);
        for &a in &actions {
            if env.is_done() {
                break;
            }
            env.step(Action::from_index(a, 3));
        }
        let m = env.metrics();
        prop_assert_eq!(m.tasks_placed + m.tasks_unplaced, total);
    }

    /// Placement records are physically consistent: start ≥ arrival, and
    /// simulation time never decreases.
    #[test]
    fn records_consistent(tasks in arb_tasks(25), actions in proptest::collection::vec(0usize..4, 1..300)) {
        let mut env = mk_env();
        env.reset(tasks.clone());
        let mut last_now = env.now();
        for &a in &actions {
            if env.is_done() {
                break;
            }
            env.step(Action::from_index(a, 3));
            prop_assert!(env.now() >= last_now, "time went backwards");
            last_now = env.now();
        }
        for r in env.records() {
            prop_assert!(r.start >= r.arrival, "task started before it arrived");
            let original = &tasks[r.task_id as usize];
            prop_assert_eq!(r.vcpus, original.vcpus);
            prop_assert_eq!(r.duration, original.duration);
        }
    }

    /// Observations always have the declared shape and bounded values.
    #[test]
    fn observations_well_formed(tasks in arb_tasks(20), actions in proptest::collection::vec(0usize..4, 1..150)) {
        let mut env = mk_env();
        env.reset(tasks);
        for &a in &actions {
            if env.is_done() {
                break;
            }
            let s = env.observe();
            prop_assert_eq!(s.len(), dims().state_dim());
            for &v in &s {
                prop_assert!(v == -1.0 || (0.0..=1.0).contains(&v), "state value {} out of range", v);
            }
            env.step(Action::from_index(a, 3));
        }
    }

    /// A first-fit driver always finishes (no truncation) on admissible
    /// workloads, and every placed task's response ≥ its duration.
    #[test]
    fn first_fit_always_completes(tasks in arb_tasks(30)) {
        let mut env = mk_env();
        env.reset(tasks);
        while !env.is_done() {
            let a = env.first_fit_action().unwrap_or(Action::Wait);
            env.step(a);
        }
        prop_assert!(!env.is_truncated());
        for r in env.records() {
            prop_assert!(r.response() >= r.duration);
        }
    }
}
