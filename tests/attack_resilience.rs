//! Determinism and resilience contract of the Byzantine attack layer:
//! a seeded [`AttackPlan`] composes with fault injection, client churn,
//! and workload drift; replays bit-identically at any thread count;
//! survives kill-resume from a checkpoint taken mid-campaign (the plan is
//! construction-time config, never checkpointed); and the defended
//! aggregation path keeps training finite while the attack surfaces in
//! telemetry — the same invariance contract `tests/fault_injection.rs`
//! and `tests/scenario_determinism.rs` prove for their layers.

use pfrl_core::experiment::{run_federation_with_options, Algorithm, RunOptions};
use pfrl_fed::scenario::{ScenarioBinding, ScenarioPlan};
use pfrl_fed::{
    AttackPlan, ClientSetup, FaultPlan, FedAvgRunner, FedConfig, IndependentRunner, MfpoRunner,
    PfrlDmRunner, RobustConfig, TrainingCurves,
};
use pfrl_rl::PpoConfig;
use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_telemetry::{InMemoryRecorder, Telemetry};
use pfrl_workloads::DatasetId;
use std::sync::Arc;

const DATASETS: [DatasetId; 4] =
    [DatasetId::K8s, DatasetId::Google, DatasetId::Alibaba2017, DatasetId::Kvm2019];

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn setups(n: usize) -> Vec<ClientSetup> {
    (0..n)
        .map(|i| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DATASETS[i % DATASETS.len()].model().sample(60, 300 + i as u64),
        })
        .collect()
}

fn fed(episodes: usize, parallel: bool) -> FedConfig {
    FedConfig {
        episodes,
        comm_every: 2,
        participation_k: 4,
        tasks_per_episode: Some(12),
        seed: 33,
        parallel,
    }
}

/// A sign-flip coalition large enough to hit a 5-client cohort every round.
fn chaos_attack() -> AttackPlan {
    AttackPlan::new(41).with_sign_flip(0.4, 1.0)
}

/// Everything at once: dropouts, stragglers, corruption, staleness — on
/// top of the adversarial coalition.
fn chaos_faults() -> FaultPlan {
    FaultPlan::new(17).with_dropout(0.2).with_straggle(0.1, 2).with_corrupt(0.1).with_stale(0.1, 2)
}

/// The composite drift + churn scenario from the scenario-engine tests,
/// with one dataset assignment per client in the 5-client chaos cohort.
fn drift_binding() -> ScenarioBinding {
    let datasets = (0..5).map(|i| DATASETS[i % DATASETS.len()]).collect();
    ScenarioBinding::new(ScenarioPlan::standard_drift(7, 3, 2, 4), datasets)
}

/// The full chaos composition every determinism test below replays.
fn chaos_options() -> RunOptions {
    RunOptions {
        fault_plan: chaos_faults(),
        scenario: Some(drift_binding()),
        attack_plan: chaos_attack(),
        robust: RobustConfig::defended(),
        ..RunOptions::default()
    }
}

/// Trains one runner of each algorithm under the full composition.
fn run_chaos(alg: Algorithm, episodes: usize, parallel: bool) -> TrainingCurves {
    let (curves, _) = run_federation_with_options(
        alg,
        setups(5),
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fed(episodes, parallel),
        &chaos_options(),
        Telemetry::noop(),
    );
    curves
}

#[test]
fn default_options_match_plain_construction() {
    // `RunOptions::default()` carries `AttackPlan::none()` and the inert
    // `RobustConfig::default()` — threading them through every builder
    // must not perturb a single bit of training.
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(4, false);
    for alg in [Algorithm::PfrlDm, Algorithm::FedAvg] {
        let (with, _) = run_federation_with_options(
            alg,
            setups(4),
            d,
            e,
            p,
            f,
            &RunOptions::default(),
            Telemetry::noop(),
        );
        let base = match alg {
            Algorithm::PfrlDm => PfrlDmRunner::new(setups(4), d, e, p, f).train(),
            _ => FedAvgRunner::new(setups(4), d, e, p, f).train(),
        };
        assert_eq!(with, base, "{alg}: default options perturbed training");
    }
}

#[test]
#[ignore = "slow tier: 8 chaos trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn attack_composition_is_bit_identical_across_thread_counts() {
    // Coalition membership and every crafted vector are pure functions of
    // (seed, round, client): the same campaign must replay identically
    // whether clients train sequentially or on the rayon pool, even
    // stacked on faults, churn, and drift.
    for alg in Algorithm::ALL {
        let sequential = run_chaos(alg, 6, false);
        let parallel = run_chaos(alg, 6, true);
        assert_eq!(sequential, parallel, "{alg}: attack schedule depends on thread count");
    }
}

/// Kill-and-resume mid-campaign for every runner: the attack plan is
/// construction-time config (never serialized), so a rebuilt runner must
/// re-derive the identical remaining schedule — including the screens'
/// consecutive-rejection continuity restored through the checkpointed
/// quarantine state.
#[test]
#[ignore = "slow tier: 12 chaos trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn mid_attack_kill_resume_is_bit_identical() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(6, false);
    let o = chaos_options();
    macro_rules! check {
        ($runner:ident, $alg:expr, $label:literal) => {{
            let full = run_chaos($alg, 6, false);
            let build = || {
                let mut r = $runner::new(setups(5), d, e, p, f)
                    .with_fault_plan(o.fault_plan)
                    .with_attack_plan(o.attack_plan)
                    .with_robust_aggregator(o.robust);
                if let Some(b) = &o.scenario {
                    r = r.with_scenario(b);
                }
                r
            };
            let mut half = build();
            half.train_round();
            let bytes = half.checkpoint_bytes();
            drop(half);
            let mut resumed = build();
            resumed.restore_checkpoint(&bytes).expect("restore");
            assert_eq!(resumed.rounds_done(), 1);
            assert_eq!(resumed.train(), full, concat!($label, ": resumed curves diverge"));
        }};
    }
    check!(PfrlDmRunner, Algorithm::PfrlDm, "PFRL-DM");
    check!(FedAvgRunner, Algorithm::FedAvg, "FedAvg");
    check!(MfpoRunner, Algorithm::Mfpo, "MFPO");
    check!(IndependentRunner, Algorithm::Ppo, "PPO");
}

#[test]
fn undefended_attack_perturbs_every_federated_algorithm() {
    // A full-coalition sign-flip against the plain mean must actually reach
    // every algorithm that shares parameters — if the trained policies come
    // back bit-identical to the clean run, the poison is not reaching the
    // aggregate (a silent no-op attack layer).
    //
    // What must move differs by architecture. FedAvg and MFPO share actor
    // parameters, so the poisoned aggregate rewrites the policy directly
    // and the reward curves diverge within a round. PFRL-DM shares only the
    // public *critic*: poison reaches the actor through the (1 - alpha)
    // side of the dual-critic value blend, attenuated by advantage
    // normalization and by the adaptive alpha shifting weight off the
    // suddenly high-loss public critic — at this scale the actor weights
    // drift without flipping a single sampled action. So the contract is:
    // actor parameters must diverge for all three, curves only for the
    // actor-sharing pair.
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(6, false);
    for alg in [Algorithm::PfrlDm, Algorithm::FedAvg, Algorithm::Mfpo] {
        let run = |attack: AttackPlan| {
            run_federation_with_options(
                alg,
                setups(4),
                d,
                e,
                p,
                f,
                &RunOptions::with_attack(attack, RobustConfig::default()),
                Telemetry::noop(),
            )
        };
        let (clean_curves, clean_fed) = run(AttackPlan::none());
        let (attacked_curves, attacked_fed) = run(AttackPlan::new(3).with_sign_flip(1.0, 2.0));
        let clean_actors: Vec<Vec<f32>> =
            clean_fed.policy_snapshots().into_iter().map(|s| s.actor_params).collect();
        let attacked_actors: Vec<Vec<f32>> =
            attacked_fed.policy_snapshots().into_iter().map(|s| s.actor_params).collect();
        assert_ne!(
            clean_actors, attacked_actors,
            "{alg}: sign-flip attack did not reach the trained policies"
        );
        if alg != Algorithm::PfrlDm {
            assert_ne!(
                clean_curves, attacked_curves,
                "{alg}: sign-flip attack did not perturb training curves"
            );
        }
    }
}

#[test]
fn defended_chaos_run_stays_finite_and_surfaces_in_telemetry() {
    let rec = Arc::new(InMemoryRecorder::new());
    let (curves, _) = run_federation_with_options(
        Algorithm::PfrlDm,
        setups(5),
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fed(8, false),
        &chaos_options(),
        Telemetry::new(rec.clone()),
    );
    for (i, c) in curves.per_client.iter().enumerate() {
        assert!(c.iter().all(|r| r.is_finite()), "non-finite reward on client {i}");
    }
    let snap = rec.snapshot();
    assert!(snap.counter("fed/attacked_uploads") > 0, "no poisoned uploads recorded");
    assert!(
        snap.gauge("fed/attack_coalition_size").is_some(),
        "coalition size gauge never published"
    );
    assert!(snap.histogram("fed/agg_wall_us").is_some(), "aggregation wall time not observed");
}

#[test]
fn sign_flip_coalition_is_screened_by_the_defense() {
    // Undiluted sign-flip uploads point opposite the honest cohort: the
    // cosine screen must reject them (surfacing as fed/screened) rather
    // than letting them into the aggregate.
    let rec = Arc::new(InMemoryRecorder::new());
    let options = RunOptions::with_attack(
        AttackPlan::new(5).with_sign_flip(0.3, 1.0),
        RobustConfig::defended(),
    );
    let (_, _) = run_federation_with_options(
        Algorithm::FedAvg,
        setups(6),
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        FedConfig { participation_k: 6, ..fed(8, false) },
        &options,
        Telemetry::new(rec.clone()),
    );
    let snap = rec.snapshot();
    assert!(snap.counter("fed/attacked_uploads") > 0, "the coalition never fired");
    assert!(snap.counter("fed/screened") > 0, "no sign-flipped upload was screened");
}
