//! Admission-control stress test for the serving front end.
//!
//! `DecisionService` is single-owner by design (callers serialize access),
//! so the realistic deployment shape is a shared handle behind a lock with
//! many request threads and a drain loop. This test drives that shape with
//! deliberately bursty producers against a small bounded queue and checks
//! the admission-control contract end to end:
//!
//! - overload is an explicit, immediate [`ServeError::Overloaded`], never
//!   unbounded buffering or a block;
//! - the system never deadlocks (the test itself completes);
//! - the books balance exactly: every submitted request is either admitted
//!   or rejected, and every admitted request is either decided, dropped as
//!   stale, or still queued at shutdown — as seen both by the callers and
//!   by the service's own telemetry counters.

use pfrl_core::experiment::{run_federation, Algorithm};
use pfrl_core::fed::FedConfig;
use pfrl_core::presets::{table2_clients, TABLE2_DIMS};
use pfrl_core::rl::PpoConfig;
use pfrl_core::serve::{DecisionService, PolicyStore, ServeConfig, ServeError};
use pfrl_core::sim::EnvConfig;
use pfrl_core::telemetry::{InMemoryRecorder, Telemetry};
use pfrl_core::workloads::DatasetId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const PRODUCERS: usize = 8;
const BURSTS_PER_PRODUCER: usize = 60;
const BURST_SIZE: usize = 10;
const QUEUE_CAPACITY: usize = 16;

fn stress_service(recorder: Arc<InMemoryRecorder>) -> DecisionService {
    let (_, trained) = run_federation(
        Algorithm::PfrlDm,
        table2_clients(40, 5),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        FedConfig {
            episodes: 2,
            comm_every: 1,
            participation_k: 2,
            tasks_per_episode: Some(10),
            seed: 5,
            parallel: false,
        },
    );
    let store = PolicyStore::from_snapshots(trained.policy_snapshots()).expect("snapshots load");
    DecisionService::new(store, ServeConfig { queue_capacity: QUEUE_CAPACITY, max_batch: 4 })
        .with_telemetry(Telemetry::new(recorder))
}

#[test]
fn bursty_overload_rejects_explicitly_and_counters_balance() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let svc = Arc::new(Mutex::new(stress_service(recorder.clone())));

    // One session per producer, each with a long episode so sessions stay
    // decidable for most of the run (completed episodes exercise the stale
    // path instead — both are legitimate fates for an admitted request).
    let client = {
        let svc = svc.lock().unwrap();
        svc.store().clients()[0].to_string()
    };
    let tasks = DatasetId::Google.model().sample(200, 11);
    let mut session_ids = Vec::with_capacity(PRODUCERS);
    for _ in 0..PRODUCERS {
        let mut svc = svc.lock().unwrap();
        let id = svc.open_session(&client).expect("open session");
        svc.begin_episode(id, &tasks).expect("begin episode");
        session_ids.push(id);
    }

    let admitted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let decided = Arc::new(AtomicU64::new(0));
    let producers_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut producers = Vec::with_capacity(PRODUCERS);
        for &id in &session_ids {
            let svc = Arc::clone(&svc);
            let admitted = Arc::clone(&admitted);
            let rejected = Arc::clone(&rejected);
            producers.push(scope.spawn(move || {
                for burst in 0..BURSTS_PER_PRODUCER {
                    // A whole burst is fired under one lock hold — the
                    // worst case for the queue, the point of the test.
                    let mut svc = svc.lock().unwrap();
                    for _ in 0..BURST_SIZE {
                        match svc.submit(id) {
                            Ok(()) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded { capacity }) => {
                                assert_eq!(capacity, QUEUE_CAPACITY);
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    drop(svc);
                    if burst % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }

        // Drain loop: keeps consuming while producers run, then empties
        // what is left so nothing is unaccounted for.
        let drain_svc = Arc::clone(&svc);
        let drain_decided = Arc::clone(&decided);
        let drain_done = Arc::clone(&producers_done);
        let drainer = scope.spawn(move || loop {
            let outstanding = {
                let mut svc = drain_svc.lock().unwrap();
                let n = svc.decide_batch().len();
                drain_decided.fetch_add(n as u64, Ordering::Relaxed);
                n.max(svc.queue_depth())
            };
            if outstanding == 0 {
                if drain_done.load(Ordering::Acquire) {
                    break;
                }
                std::thread::yield_now();
            }
        });

        for p in producers {
            p.join().expect("producer panicked");
        }
        producers_done.store(true, Ordering::Release);
        drainer.join().expect("drainer panicked");
    });

    let submitted = (PRODUCERS * BURSTS_PER_PRODUCER * BURST_SIZE) as u64;
    let admitted = admitted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let decided = decided.load(Ordering::Relaxed);

    // Caller-side ledger: every request has exactly one fate at the door.
    assert_eq!(admitted + rejected, submitted, "admission ledger out of balance");
    assert!(rejected > 0, "bursts never overflowed a {QUEUE_CAPACITY}-slot queue");
    assert!(admitted > 0, "nothing was ever admitted");

    // Service-side ledger must agree with the callers exactly.
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("serve/admitted"), admitted, "service admitted count diverges");
    assert_eq!(snap.counter("serve/rejected"), rejected, "service rejected count diverges");

    // Every admitted request was decided, dropped as stale (its episode
    // finished first), or is still queued — no request vanishes.
    let stale = snap.counter("serve/stale");
    let queued = svc.lock().unwrap().queue_depth() as u64;
    assert_eq!(
        decided + stale + queued,
        admitted,
        "admitted requests unaccounted for: {decided} decided + {stale} stale + {queued} queued"
    );
    assert_eq!(snap.counter("serve/decisions"), decided, "decision counter diverges");
}
