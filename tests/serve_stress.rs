//! Admission-control stress test for the serving front end.
//!
//! `DecisionService` is single-owner by design (callers serialize access),
//! so the realistic deployment shape is a shared handle behind a lock with
//! many request threads and a drain loop. This test drives that shape with
//! deliberately bursty producers against a small bounded queue and checks
//! the admission-control contract end to end:
//!
//! - overload is an explicit, immediate [`ServeError::Overloaded`], never
//!   unbounded buffering or a block;
//! - the system never deadlocks (the test itself completes);
//! - the books balance exactly: every submitted request is either admitted
//!   or rejected, and every admitted request is either decided, dropped as
//!   stale, or still queued at shutdown — as seen both by the callers and
//!   by the service's own telemetry counters.

use pfrl_core::experiment::{run_federation, Algorithm};
use pfrl_core::fed::{FedConfig, PolicySnapshot};
use pfrl_core::nn::{Activation, Mlp};
use pfrl_core::presets::{table2_clients, TABLE2_DIMS};
use pfrl_core::rl::PpoConfig;
use pfrl_core::serve::{
    DecisionService, PolicyStore, RampStatus, ServeConfig, ServeError, ShardedDecisionService,
    ShardedServeConfig,
};
use pfrl_core::sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_core::telemetry::{InMemoryRecorder, Telemetry};
use pfrl_core::workloads::DatasetId;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const PRODUCERS: usize = 8;
const BURSTS_PER_PRODUCER: usize = 60;
const BURST_SIZE: usize = 10;
const QUEUE_CAPACITY: usize = 16;

fn stress_service(recorder: Arc<InMemoryRecorder>) -> DecisionService {
    let (_, trained) = run_federation(
        Algorithm::PfrlDm,
        table2_clients(40, 5),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        FedConfig {
            episodes: 2,
            comm_every: 1,
            participation_k: 2,
            tasks_per_episode: Some(10),
            seed: 5,
            parallel: false,
        },
    );
    let store = PolicyStore::from_snapshots(trained.policy_snapshots()).expect("snapshots load");
    DecisionService::new(store, ServeConfig { queue_capacity: QUEUE_CAPACITY, max_batch: 4 })
        .with_telemetry(Telemetry::new(recorder))
}

#[test]
fn bursty_overload_rejects_explicitly_and_counters_balance() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let svc = Arc::new(Mutex::new(stress_service(recorder.clone())));

    // One session per producer, each with a long episode so sessions stay
    // decidable for most of the run (completed episodes exercise the stale
    // path instead — both are legitimate fates for an admitted request).
    let client = {
        let svc = svc.lock().unwrap();
        svc.store().clients()[0].to_string()
    };
    let tasks = DatasetId::Google.model().sample(200, 11);
    let mut session_ids = Vec::with_capacity(PRODUCERS);
    for _ in 0..PRODUCERS {
        let mut svc = svc.lock().unwrap();
        let id = svc.open_session(&client).expect("open session");
        svc.begin_episode(id, &tasks).expect("begin episode");
        session_ids.push(id);
    }

    let admitted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let decided = Arc::new(AtomicU64::new(0));
    let producers_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut producers = Vec::with_capacity(PRODUCERS);
        for &id in &session_ids {
            let svc = Arc::clone(&svc);
            let admitted = Arc::clone(&admitted);
            let rejected = Arc::clone(&rejected);
            producers.push(scope.spawn(move || {
                for burst in 0..BURSTS_PER_PRODUCER {
                    // A whole burst is fired under one lock hold — the
                    // worst case for the queue, the point of the test.
                    let mut svc = svc.lock().unwrap();
                    for _ in 0..BURST_SIZE {
                        match svc.submit(id) {
                            Ok(()) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded { capacity }) => {
                                assert_eq!(capacity, QUEUE_CAPACITY);
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    drop(svc);
                    if burst % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }

        // Drain loop: keeps consuming while producers run, then empties
        // what is left so nothing is unaccounted for.
        let drain_svc = Arc::clone(&svc);
        let drain_decided = Arc::clone(&decided);
        let drain_done = Arc::clone(&producers_done);
        let drainer = scope.spawn(move || loop {
            let outstanding = {
                let mut svc = drain_svc.lock().unwrap();
                let n = svc.decide_batch().len();
                drain_decided.fetch_add(n as u64, Ordering::Relaxed);
                n.max(svc.queue_depth())
            };
            if outstanding == 0 {
                if drain_done.load(Ordering::Acquire) {
                    break;
                }
                std::thread::yield_now();
            }
        });

        for p in producers {
            p.join().expect("producer panicked");
        }
        producers_done.store(true, Ordering::Release);
        drainer.join().expect("drainer panicked");
    });

    let submitted = (PRODUCERS * BURSTS_PER_PRODUCER * BURST_SIZE) as u64;
    let admitted = admitted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let decided = decided.load(Ordering::Relaxed);

    // Caller-side ledger: every request has exactly one fate at the door.
    assert_eq!(admitted + rejected, submitted, "admission ledger out of balance");
    assert!(rejected > 0, "bursts never overflowed a {QUEUE_CAPACITY}-slot queue");
    assert!(admitted > 0, "nothing was ever admitted");

    // Service-side ledger must agree with the callers exactly.
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("serve/admitted"), admitted, "service admitted count diverges");
    assert_eq!(snap.counter("serve/rejected"), rejected, "service rejected count diverges");

    // Every admitted request was decided, dropped as stale (its episode
    // finished first), or is still queued — no request vanishes.
    let stale = snap.counter("serve/stale");
    let queued = svc.lock().unwrap().queue_depth() as u64;
    assert_eq!(
        decided + stale + queued,
        admitted,
        "admitted requests unaccounted for: {decided} decided + {stale} stale + {queued} queued"
    );
    assert_eq!(snap.counter("serve/decisions"), decided, "decision counter diverges");
}

// --- sharded hot-swap ramp under load -------------------------------------

const RAMP_SHARDS: usize = 4;
const RAMP_PRODUCERS: usize = 8;
const RAMP_BURSTS: usize = 50;
const RAMP_BURST_SIZE: usize = 6;
const SHADOW_TARGET: u64 = 32;

/// A forged but fully valid snapshot (same recipe as the serve crate's own
/// test fixture) — training is irrelevant to ramp mechanics.
fn forged_snapshot(client: &str, version: u64, weight_seed: u64) -> PolicySnapshot {
    let dims = EnvDims::new(2, 8, 64.0, 3);
    let hidden = PpoConfig::default().hidden;
    let actor = Mlp::new(
        &[dims.state_dim(), hidden, dims.action_dim()],
        Activation::Tanh,
        &mut SmallRng::seed_from_u64(weight_seed),
    );
    PolicySnapshot {
        algorithm: "PFRL-DM".into(),
        client: client.into(),
        version,
        dims,
        env_cfg: EnvConfig::default(),
        vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        hidden,
        mask_actions: true,
        actor_params: actor.flat_params(),
    }
}

/// The hot-swap ramp contract under bursty multi-threaded load:
///
/// - a second publish while a ramp is shadowing is refused;
/// - the shadow-evaluated candidate commits during the load, and from each
///   session's point of view the served version is monotone — once a
///   session decides on the new version, the retired snapshot never serves
///   it again;
/// - after the fleet quiesces, one more wave per session decides
///   exclusively on the committed version;
/// - the merged shard ledger balances exactly against both the callers'
///   counts and the telemetry counters;
/// - a poisoned candidate (NaN parameters) rolls back automatically
///   without ever serving or shadowing a decision.
#[test]
fn version_ramp_under_bursty_load_commits_monotonically_and_rolls_back_poison() {
    let v1 = forged_snapshot("prod", 1, 42);
    let mut v2 = v1.clone();
    v2.version = 2;
    // A genuinely different but finite candidate.
    for p in &mut v2.actor_params {
        *p = *p * 0.875 + 0.001;
    }
    let mut poisoned = v1.clone();
    poisoned.version = 3;
    poisoned.actor_params[0] = f32::NAN;

    let recorder = Arc::new(InMemoryRecorder::new());
    let store = PolicyStore::from_snapshots(vec![v1]).expect("valid snapshot");
    let svc = Arc::new(
        ShardedDecisionService::new(
            store,
            ShardedServeConfig { shards: RAMP_SHARDS, queue_capacity: 32, max_batch: 8 },
        )
        .with_telemetry(Telemetry::new(recorder.clone())),
    );

    let tasks = DatasetId::Google.model().sample(300, 19);
    let mut session_ids = Vec::with_capacity(RAMP_PRODUCERS);
    for _ in 0..RAMP_PRODUCERS {
        let id = svc.open_session("prod").expect("open session");
        svc.begin_episode(id, &tasks).expect("begin episode");
        session_ids.push(id);
    }

    // Start the ramp before any wave runs: deterministically still in
    // shadow, so a competing publish must be refused.
    let handle = svc.publish(&v2, SHADOW_TARGET).expect("ramp starts");
    assert_eq!(handle.status(), RampStatus::Shadow);
    assert!(
        matches!(svc.publish(&v2, 1), Err(ServeError::RampRejected(_))),
        "publish while shadowing must be refused"
    );

    let admitted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let producers_done = Arc::new(AtomicBool::new(false));

    // (session, version) in served order, one stream per shard drainer.
    // A session is owned by exactly one shard, so per-session order is
    // preserved within its drainer's stream.
    let mut version_streams: Vec<Vec<(u64, u64)>> = Vec::new();

    std::thread::scope(|scope| {
        let mut producers = Vec::with_capacity(RAMP_PRODUCERS);
        for &id in &session_ids {
            let svc = Arc::clone(&svc);
            let admitted = Arc::clone(&admitted);
            let rejected = Arc::clone(&rejected);
            producers.push(scope.spawn(move || {
                for burst in 0..RAMP_BURSTS {
                    for _ in 0..RAMP_BURST_SIZE {
                        match svc.submit(id) {
                            Ok(()) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    if burst % 5 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }

        let mut drainers = Vec::with_capacity(RAMP_SHARDS);
        for shard in 0..RAMP_SHARDS {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&producers_done);
            drainers.push(scope.spawn(move || {
                let mut stream: Vec<(u64, u64)> = Vec::new();
                loop {
                    let batch = svc.decide_wave(shard);
                    let drained = batch.len();
                    for (id, d) in batch {
                        stream.push((id, d.version));
                    }
                    if drained == 0 {
                        // Producers stopped and this shard's queue is dry.
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                stream
            }));
        }

        for p in producers {
            p.join().expect("producer panicked");
        }
        producers_done.store(true, Ordering::Release);
        for d in drainers {
            version_streams.push(d.join().expect("drainer panicked"));
        }
    });

    // The candidate shadowed enough healthy decisions to commit.
    assert_eq!(handle.status(), RampStatus::Committed, "finite candidate must commit");
    assert!(handle.shadowed() >= SHADOW_TARGET, "shadowed {} < target", handle.shadowed());

    // Per-session version monotonicity: once v2 serves a session, v1 is
    // retired for it — no decision ever goes back.
    let mut last_version = std::collections::BTreeMap::new();
    let mut v2_seen = 0u64;
    for (id, version) in version_streams.iter().flatten() {
        let prev = last_version.insert(*id, *version).unwrap_or(1);
        assert!(
            *version >= prev,
            "session {id}: version regressed {prev} -> {version} after cutover"
        );
        if *version == 2 {
            v2_seen += 1;
        }
    }
    assert!(v2_seen > 0, "load ended before any post-commit decision; raise RAMP_BURSTS");

    // Caller-side and service-side ledgers agree exactly.
    let decided: u64 = version_streams.iter().map(|s| s.len() as u64).sum();
    let admitted = admitted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(
        admitted + rejected,
        (RAMP_PRODUCERS * RAMP_BURSTS * RAMP_BURST_SIZE) as u64,
        "admission ledger out of balance"
    );
    let ledger = svc.ledger();
    assert_eq!(ledger.admitted, admitted, "service admitted count diverges");
    assert_eq!(ledger.rejected, rejected, "service rejected count diverges");
    assert_eq!(ledger.queued, 0, "drainers left requests queued");
    assert_eq!(
        ledger.decisions + ledger.stale,
        ledger.admitted,
        "admitted requests unaccounted for"
    );
    assert_eq!(ledger.decisions, decided, "decision counter diverges");
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("serve/admitted"), admitted);
    assert_eq!(snap.counter("serve/rejected"), rejected);
    assert_eq!(snap.counter("serve/decisions"), decided);
    assert_eq!(snap.counter("serve/ramp_committed"), 1);
    assert_eq!(snap.counter("serve/ramp_rollbacks"), 0);

    // Quiesced fleet: every session now serves the committed version and
    // nothing else.
    for &id in &session_ids {
        svc.begin_episode(id, &tasks).expect("session still open");
        svc.submit(id).expect("queue drained");
    }
    let mut final_decisions = 0usize;
    for shard in 0..RAMP_SHARDS {
        for (_, d) in svc.decide_wave(shard) {
            assert_eq!(d.version, 2, "retired snapshot served after cutover");
            final_decisions += 1;
        }
    }
    assert_eq!(final_decisions, RAMP_PRODUCERS, "every session must decide post-cutover");

    // A poisoned candidate never shadows, never serves: automatic rollback.
    let handle = svc.publish(&poisoned, 1).expect("publish returns an observable handle");
    assert_eq!(handle.status(), RampStatus::RolledBack, "NaN candidate must roll back");
    assert_eq!(handle.shadowed(), 0, "poisoned candidate must never shadow-decide");
    for &id in &session_ids {
        svc.submit(id).expect("queue drained");
    }
    for shard in 0..RAMP_SHARDS {
        for (_, d) in svc.decide_wave(shard) {
            assert_eq!(d.version, 2, "rolled-back candidate leaked into serving");
        }
    }
    assert_eq!(recorder.snapshot().counter("serve/ramp_rollbacks"), 1);
}
