//! End-to-end learning tests (release-friendly sizes): the agents must
//! demonstrably learn, and the trained-policy machinery must hold together
//! through the full public API.

use pfrl_core::experiment::{run_federation, Algorithm};
use pfrl_core::fed::FedConfig;
use pfrl_core::rl::{DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_core::sim::{CloudEnv, EnvConfig, EnvDims, VmSpec};
use pfrl_core::workloads::DatasetId;

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn mk_env() -> CloudEnv {
    CloudEnv::new(dims(), vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)], EnvConfig::default())
}

#[test]
#[ignore = "slow tier: 160 training episodes; run via `--include-ignored` (CI scheduled job)"]
fn ppo_and_dual_critic_both_improve() {
    let tasks = DatasetId::K8s.model().sample(25, 5);
    let d = dims();

    let improvement = |rewards: &[f64]| {
        let k = 10.min(rewards.len() / 2);
        let early: f64 = rewards[..k].iter().sum::<f64>() / k as f64;
        let late: f64 = rewards[rewards.len() - k..].iter().sum::<f64>() / k as f64;
        late - early
    };

    let mut env = mk_env();
    let mut ppo = PpoAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 1);
    let mut r1 = Vec::new();
    for _ in 0..80 {
        env.reset(tasks.clone());
        r1.push(ppo.train_one_episode(&mut env) as f64);
    }
    assert!(improvement(&r1) > 5.0, "PPO improvement {:.1}", improvement(&r1));

    let mut dual = DualCriticAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 1);
    let mut r2 = Vec::new();
    for _ in 0..80 {
        env.reset(tasks.clone());
        r2.push(dual.train_one_episode(&mut env) as f64);
    }
    assert!(improvement(&r2) > 5.0, "dual-critic improvement {:.1}", improvement(&r2));
    assert!((0.0..=1.0).contains(&dual.alpha()));
}

#[test]
fn all_four_algorithms_complete_a_federation_and_evaluate() {
    use pfrl_core::presets::{table2_clients, TABLE2_DIMS};
    let fed = FedConfig {
        episodes: 4,
        comm_every: 2,
        participation_k: 2,
        tasks_per_episode: Some(15),
        seed: 7,
        parallel: true,
    };
    for alg in Algorithm::ALL {
        let (curves, mut trained) = run_federation(
            alg,
            table2_clients(60, 4),
            TABLE2_DIMS,
            EnvConfig::default(),
            PpoConfig::default(),
            fed,
        );
        assert_eq!(curves.clients(), 4, "{alg}");
        // Evaluate every client on a foreign workload through the API.
        let foreign = DatasetId::K8s.model().sample(25, 99);
        for i in 0..trained.n_clients() {
            let m = trained.evaluate_client(i, &foreign);
            assert_eq!(m.tasks_placed + m.tasks_unplaced, 25, "{alg} client {i}");
        }
    }
}

/// The Fig. 9 mechanism at integration scope: after heterogeneous clients
/// diverge, loading the FedAvg-averaged critic must not *improve* the mean
/// local critic loss (it typically worsens it).
#[test]
#[ignore = "slow tier: 4-client divergence run; run via `--include-ignored` (CI scheduled job)"]
fn fedavg_aggregation_hurts_local_critic_fit() {
    use pfrl_core::fed::{ClientSetup, FedAvgRunner};
    let datasets = [DatasetId::K8s, DatasetId::HpcWz, DatasetId::Kvm2019, DatasetId::Google];
    let setups: Vec<ClientSetup> = datasets
        .iter()
        .enumerate()
        .map(|(i, d)| ClientSetup {
            name: format!("c{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: d.model().sample(100, 50 + i as u64),
        })
        .collect();
    let fed = FedConfig {
        episodes: 20,
        comm_every: 10,
        participation_k: 2,
        tasks_per_episode: Some(20),
        seed: 8,
        parallel: true,
    };
    let mut runner =
        FedAvgRunner::new(setups, dims(), EnvConfig::default(), PpoConfig::default(), fed);
    runner.train();
    assert!(!runner.loss_probes.is_empty());
    let worsened = runner.loss_probes.iter().filter(|p| p.loss_after >= p.loss_before).count();
    // At least half the rounds show the degradation the paper reports.
    assert!(
        worsened * 2 >= runner.loss_probes.len(),
        "aggregation worsened only {worsened}/{} rounds",
        runner.loss_probes.len()
    );
}
