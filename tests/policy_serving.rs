//! End-to-end fidelity of the serving plane: for every federation
//! algorithm, a policy exported through the snapshot wire format and
//! served by `pfrl-serve` must reproduce the trainer's greedy decisions
//! bit for bit — equal episode metrics on the same task set imply the
//! identical decision sequence, since the environment is deterministic.

use pfrl_core::experiment::{run_federation, Algorithm};
use pfrl_core::fed::FedConfig;
use pfrl_core::presets::{table2_clients, TABLE2_DIMS};
use pfrl_core::rl::PpoConfig;
use pfrl_core::serve::{
    Decision, DecisionService, PolicyStore, ServeConfig, ServeError, Session,
    ShardedDecisionService, ShardedServeConfig,
};
use pfrl_core::sim::EnvConfig;
use pfrl_core::workloads::{DatasetId, TaskSpec};

fn tiny_fed(seed: u64) -> FedConfig {
    FedConfig {
        episodes: 2,
        comm_every: 1,
        participation_k: 2,
        tasks_per_episode: Some(12),
        seed,
        parallel: false,
    }
}

/// The tentpole guarantee: train → export → serialize → load → serve
/// reproduces the in-memory agent's greedy evaluation exactly, for all
/// four algorithms and every client.
#[test]
fn served_decisions_match_trained_agents_bit_for_bit() {
    let eval_tasks = DatasetId::Google.model().sample(30, 77);
    for alg in Algorithm::ALL {
        let (_, mut trained) = run_federation(
            alg,
            table2_clients(40, 6),
            TABLE2_DIMS,
            EnvConfig::default(),
            PpoConfig::default(),
            tiny_fed(6),
        );
        let blobs: Vec<Vec<u8>> = trained.policy_snapshots().iter().map(|s| s.to_bytes()).collect();
        let store = PolicyStore::from_blobs(blobs.iter().map(Vec::as_slice))
            .unwrap_or_else(|e| panic!("{alg}: snapshots must load: {e}"));
        assert_eq!(store.len(), trained.n_clients(), "{alg}");

        for (i, name) in trained.client_names().iter().enumerate() {
            let expected = trained.evaluate_client(i, &eval_tasks);
            let snap = store.latest(name).unwrap_or_else(|| panic!("{alg}: no snapshot {name}"));
            assert_eq!(snap.algorithm, alg.name(), "{alg}/{name}");
            let mut session = Session::new(snap).expect("validated snapshot");
            let served = session.run_episode(&eval_tasks);
            assert_eq!(served, expected, "{alg}/{name}: served decisions diverge from trainer");
        }
    }
}

/// The same fidelity holds through the batched front end: submitting and
/// draining via `DecisionService` is just a scheduled way of calling the
/// same session decide path.
#[test]
fn batched_service_preserves_decision_fidelity() {
    let eval_tasks = DatasetId::K8s.model().sample(25, 41);
    let (_, mut trained) = run_federation(
        Algorithm::PfrlDm,
        table2_clients(40, 8),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        tiny_fed(8),
    );
    let expected = trained.evaluate_client(0, &eval_tasks);
    let name = trained.client_names()[0].clone();

    let store = PolicyStore::from_snapshots(trained.policy_snapshots()).unwrap();
    let mut svc = DecisionService::new(store, ServeConfig { queue_capacity: 8, max_batch: 4 });
    let id = svc.open_session(&name).unwrap();
    svc.begin_episode(id, &eval_tasks).unwrap();
    'serve: loop {
        for _ in 0..4 {
            match svc.submit(id) {
                Ok(()) => {}
                Err(ServeError::Overloaded { .. }) => break,
                Err(e) => panic!("unexpected serve error: {e}"),
            }
        }
        for (_, d) in svc.decide_batch() {
            if d.done {
                break 'serve;
            }
        }
    }
    let served = svc.session(id).unwrap().metrics();
    assert_eq!(served, expected, "batched serving diverged from trainer");
}

/// Opens one session per task set on a fresh sharded service and drives
/// every session to episode completion through submit → wave drains,
/// returning each session's full decision sequence in decision order.
fn drive_sharded(
    store: PolicyStore,
    shards: usize,
    client: &str,
    task_sets: &[Vec<TaskSpec>],
) -> Vec<Vec<Decision>> {
    let svc = ShardedDecisionService::new(
        store,
        ShardedServeConfig { shards, queue_capacity: 64, max_batch: 8 },
    );
    let ids: Vec<_> = task_sets
        .iter()
        .map(|tasks| {
            let id = svc.open_session(client).expect("known client");
            svc.begin_episode(id, tasks).expect("fresh session");
            id
        })
        .collect();
    let mut seqs = vec![Vec::new(); ids.len()];
    let mut done = vec![false; ids.len()];
    while done.iter().any(|d| !d) {
        for (k, &id) in ids.iter().enumerate() {
            if !done[k] {
                svc.submit(id).expect("queue has headroom");
            }
        }
        for shard in 0..svc.shards() {
            for (id, d) in svc.decide_wave(shard) {
                let k = ids.iter().position(|&x| x == id).expect("served id is known");
                seqs[k].push(d);
                if d.done {
                    done[k] = true;
                }
            }
        }
    }
    let ledger = svc.ledger();
    assert_eq!(
        ledger.admitted,
        ledger.decisions + ledger.stale + ledger.queued,
        "sharded ledger out of balance"
    );
    seqs
}

/// The sharded wave path — sessions hashed across shards, concurrent
/// same-snapshot decisions collapsed into one batched GEMM — reproduces
/// the sequential `Session::decide` sequence bit for bit, for all four
/// algorithms. Each session runs a *different* task set so the wave's
/// state matrix has distinct rows; `Decision` equality covers action,
/// reward bits, placement, and version.
#[test]
fn sharded_waves_reproduce_sequential_decisions_for_all_algorithms() {
    let task_sets: Vec<Vec<TaskSpec>> =
        (0..5).map(|i| DatasetId::K8s.model().sample(15, 100 + i)).collect();
    for alg in Algorithm::ALL {
        let (_, trained) = run_federation(
            alg,
            table2_clients(40, 11),
            TABLE2_DIMS,
            EnvConfig::default(),
            PpoConfig::default(),
            tiny_fed(11),
        );
        let snapshots = trained.policy_snapshots();
        let client = trained.client_names()[0].clone();

        // Sequential reference: one decision at a time, per-session matvec.
        let reference_store = PolicyStore::from_snapshots(snapshots.clone()).unwrap();
        let snap = reference_store.latest(&client).unwrap();
        let expected: Vec<Vec<Decision>> = task_sets
            .iter()
            .map(|tasks| {
                let mut s = Session::new(snap).expect("validated snapshot");
                s.begin_episode(tasks);
                let mut seq = Vec::new();
                loop {
                    let d = s.decide();
                    seq.push(d);
                    if d.done {
                        break;
                    }
                }
                seq
            })
            .collect();

        let store = PolicyStore::from_snapshots(snapshots).unwrap();
        let served = drive_sharded(store, 4, &client, &task_sets);
        assert_eq!(served, expected, "{alg}: wave decisions diverge from sequential");
    }
}

/// Decisions are invariant to the shard count: the same sessions over the
/// same tasks produce identical per-session decision sequences whether the
/// fleet runs 1 shard or many — sharding is pure scale-out, never a
/// numerics or ordering change.
#[test]
fn shard_count_is_decision_invariant() {
    let (_, trained) = run_federation(
        Algorithm::PfrlDm,
        table2_clients(40, 13),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        tiny_fed(13),
    );
    let snapshots = trained.policy_snapshots();
    let client = trained.client_names()[0].clone();
    let task_sets: Vec<Vec<TaskSpec>> =
        (0..6).map(|i| DatasetId::Google.model().sample(12, 300 + i)).collect();

    let single = drive_sharded(
        PolicyStore::from_snapshots(snapshots.clone()).unwrap(),
        1,
        &client,
        &task_sets,
    );
    for shards in [4usize, 7] {
        let multi = drive_sharded(
            PolicyStore::from_snapshots(snapshots.clone()).unwrap(),
            shards,
            &client,
            &task_sets,
        );
        assert_eq!(multi, single, "{shards}-shard decisions diverge from 1-shard");
    }
}

/// Version bookkeeping survives the wire: a later export of the same
/// client coexists with the earlier one and `latest` resolves it.
#[test]
fn reexported_policies_version_monotonically() {
    let (_, trained) = run_federation(
        Algorithm::FedAvg,
        table2_clients(40, 9),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        tiny_fed(9),
    );
    let early = trained.policy_snapshots();
    // A "later" export: same clients, higher training cursor.
    let mut late = trained.policy_snapshots();
    for s in &mut late {
        s.version += 100;
    }
    let all: Vec<_> = early.iter().chain(late.iter()).cloned().collect();
    let store = PolicyStore::from_snapshots(all).unwrap();
    assert_eq!(store.len(), 2 * trained.n_clients());
    for name in trained.client_names() {
        let latest = store.latest(&name).unwrap();
        assert_eq!(latest.version, early.iter().find(|s| s.client == name).unwrap().version + 100);
    }
}
