//! Determinism contract of the scenario engine: a seeded scenario plan
//! (workload drift + flash crowd + dataset swap + client churn) replays
//! bit-identically whatever the thread count, survives kill-resume from a
//! `FEDCKPT` checkpoint taken mid-drift, and surfaces churn honestly in
//! telemetry — the same invariance contract `tests/fault_injection.rs`
//! proves for fault plans.

use pfrl_core::experiment::{
    run_federation_resumable_with_options, Algorithm, CheckpointConfig, RunOptions,
};
use pfrl_fed::scenario::{
    adaptation_metrics, mean_curve, AdaptationMetrics, ChurnEvent, ChurnKind, ChurnPlan,
    ScenarioBinding, ScenarioPlan,
};
use pfrl_fed::{
    ClientSetup, FaultPlan, FedAvgRunner, FedConfig, IndependentRunner, MfpoRunner, PfrlDmRunner,
    TrainingCurves,
};
use pfrl_rl::PpoConfig;
use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_telemetry::{InMemoryRecorder, Telemetry};
use pfrl_workloads::DatasetId;
use std::sync::Arc;

const DATASETS: [DatasetId; 4] =
    [DatasetId::K8s, DatasetId::Google, DatasetId::Alibaba2017, DatasetId::Kvm2019];

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn setups(n: usize) -> Vec<ClientSetup> {
    (0..n)
        .map(|i| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DATASETS[i % DATASETS.len()].model().sample(60, 300 + i as u64),
        })
        .collect()
}

fn fed(episodes: usize, parallel: bool) -> FedConfig {
    FedConfig {
        episodes,
        comm_every: 2,
        participation_k: 2,
        tasks_per_episode: Some(12),
        seed: 33,
        parallel,
    }
}

/// The canonical composite scenario: permanent rate shift + flash crowd +
/// dataset swap at episode 3, one client leaving and re-joining around the
/// corresponding round.
fn drift_binding() -> ScenarioBinding {
    let plan = ScenarioPlan::standard_drift(7, 3, 2, 4);
    ScenarioBinding::new(plan, DATASETS.to_vec())
}

/// Trains one runner of each algorithm under the composite scenario.
fn run_with_scenario(alg: Algorithm, episodes: usize, parallel: bool) -> TrainingCurves {
    let (s, d, e) = (setups(4), dims(), EnvConfig::default());
    let p = PpoConfig::default();
    let f = fed(episodes, parallel);
    let b = drift_binding();
    match alg {
        Algorithm::PfrlDm => PfrlDmRunner::new(s, d, e, p, f).with_scenario(&b).train(),
        Algorithm::FedAvg => FedAvgRunner::new(s, d, e, p, f).with_scenario(&b).train(),
        Algorithm::Mfpo => MfpoRunner::new(s, d, e, p, f).with_scenario(&b).train(),
        Algorithm::Ppo => IndependentRunner::new(s, d, e, p, f).with_scenario(&b).train(),
    }
}

/// The adaptation reduction the drift sweep applies to a training run.
fn adapt_of(curves: &TrainingCurves) -> AdaptationMetrics {
    adaptation_metrics(&mean_curve(&curves.per_client), 3, 2)
}

#[test]
fn inert_scenario_matches_default_construction() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(4, false);
    // A plan with no drift phases and no churn must not perturb training —
    // clients keep their frozen pools and the cohort never changes.
    let inert = ScenarioBinding::new(ScenarioPlan::none(), DATASETS.to_vec());
    let base = FedAvgRunner::new(setups(4), d, e, p, f).train();
    let with = FedAvgRunner::new(setups(4), d, e, p, f).with_scenario(&inert).train();
    assert_eq!(with, base, "inert scenario perturbed FedAvg training");
    let base = PfrlDmRunner::new(setups(4), d, e, p, f).train();
    let with = PfrlDmRunner::new(setups(4), d, e, p, f).with_scenario(&inert).train();
    assert_eq!(with, base, "inert scenario perturbed PFRL-DM training");
}

#[test]
#[ignore = "slow tier: 8 drift trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn drift_scenario_is_bit_identical_across_thread_counts() {
    // The scenario is a pure function of (episode, client, seed): the same
    // plan must replay identically whether clients train sequentially or
    // on the rayon pool — curves and the adaptation reduction both.
    for alg in Algorithm::ALL {
        let sequential = run_with_scenario(alg, 6, false);
        let parallel = run_with_scenario(alg, 6, true);
        assert_eq!(sequential, parallel, "{alg}: drift schedule depends on thread count");
        assert_eq!(
            adapt_of(&sequential),
            adapt_of(&parallel),
            "{alg}: adaptation metrics depend on thread count"
        );
    }
}

#[test]
#[ignore = "slow tier: 4 drift trainings; the release-mode CI chaos step runs `--include-ignored`"]
fn checkpoint_kill_resume_mid_drift_is_bit_identical() {
    let (d, e, p) = (dims(), EnvConfig::default(), PpoConfig::default());
    let f = fed(8, false);
    let b = drift_binding();

    // Checkpoint after round 2 = 4 episodes: past the episode-3 shift and
    // inside the flash crowd, with the churned client still absent. The
    // binding is construction-time config (like the fault plan), so the
    // rebuilt runner re-derives the identical drift traces and churn
    // schedule and the restored run must not diverge.
    let full = {
        let mut r = PfrlDmRunner::new(setups(4), d, e, p, f).with_scenario(&b);
        r.train()
    };
    let mut half = PfrlDmRunner::new(setups(4), d, e, p, f).with_scenario(&b);
    half.train_round();
    half.train_round();
    let bytes = half.checkpoint_bytes();
    drop(half);
    let mut resumed = PfrlDmRunner::new(setups(4), d, e, p, f).with_scenario(&b);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.rounds_done(), 2);
    let resumed_curves = resumed.train();
    assert_eq!(resumed_curves, full, "PFRL-DM: mid-drift resume diverged");
    assert_eq!(adapt_of(&resumed_curves), adapt_of(&full));

    let full = {
        let mut r = FedAvgRunner::new(setups(4), d, e, p, f).with_scenario(&b);
        r.train()
    };
    let mut half = FedAvgRunner::new(setups(4), d, e, p, f).with_scenario(&b);
    half.train_round();
    half.train_round();
    let bytes = half.checkpoint_bytes();
    let mut resumed = FedAvgRunner::new(setups(4), d, e, p, f).with_scenario(&b);
    resumed.restore_checkpoint(&bytes).expect("restore");
    assert_eq!(resumed.train(), full, "FedAvg: mid-drift resume diverged");
}

#[test]
fn resumable_driver_restores_scenario_runs_on_disk() {
    let dir = std::env::temp_dir().join(format!("pfrl-scenario-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drift.ckpt");
    let _ = std::fs::remove_file(&path);
    let ckpt = CheckpointConfig::every_round(&path);
    // Scenario *and* fault plan together: the drift traces, churn schedule,
    // and fault schedule must all re-derive identically on restore.
    let options = RunOptions {
        fault_plan: FaultPlan::new(17).with_dropout(0.2),
        ..RunOptions::with_scenario(drift_binding())
    };
    let run = || {
        run_federation_resumable_with_options(
            Algorithm::FedAvg,
            setups(4),
            dims(),
            EnvConfig::default(),
            PpoConfig::default(),
            fed(5, false),
            &options,
            &ckpt,
            Telemetry::noop(),
        )
        .expect("resumable run")
    };
    let (curves_a, _) = run();
    assert!(path.exists(), "checkpoint not persisted");
    let (curves_b, _) = run();
    assert_eq!(curves_a, curves_b, "restored drift run diverged from original");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn churn_surfaces_in_telemetry_counters() {
    let rec = Arc::new(InMemoryRecorder::new());
    // Client 3 leaves at round 1 and re-joins at round 3.
    let churn = ChurnPlan::new(vec![
        ChurnEvent { round: 1, client: 3, kind: ChurnKind::Leave },
        ChurnEvent { round: 3, client: 3, kind: ChurnKind::Join },
    ]);
    let binding = ScenarioBinding::new(ScenarioPlan::new(5).with_churn(churn), DATASETS.to_vec());
    let mut r = PfrlDmRunner::new(
        setups(4),
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fed(10, false),
    )
    .with_telemetry(Telemetry::new(rec.clone()))
    .with_scenario(&binding);
    let curves = r.train();
    assert!(curves.per_client.iter().all(|c| c.iter().all(|v| v.is_finite())));
    let snap = rec.snapshot();
    assert_eq!(snap.counter("fed/leaves"), 1, "leave transition not counted");
    assert_eq!(snap.counter("fed/joins"), 1, "join transition not counted");
}

/// Regression test for the participation-fraction denominator: a round's
/// fraction is accepted / *currently enrolled*, not accepted / all-time N —
/// scheduled churn must not masquerade as dropout.
#[test]
fn participation_fraction_denominates_over_enrolled_cohort() {
    let rec = Arc::new(InMemoryRecorder::new());
    // Client 3's earliest event is a Join far past the horizon, so it
    // starts outside the federation and never enters: 3 enrolled clients
    // throughout. With K >= 4 and no faults every enrolled client is
    // accepted every round, so the fraction must be exactly 3/3 = 1.0 in
    // every round; the old fixed-N denominator would report 3/4.
    let churn = ChurnPlan::new(vec![ChurnEvent { round: 1000, client: 3, kind: ChurnKind::Join }]);
    let binding = ScenarioBinding::new(ScenarioPlan::new(5).with_churn(churn), DATASETS.to_vec());
    let cfg = FedConfig { participation_k: 4, ..fed(6, false) };
    let mut r =
        FedAvgRunner::new(setups(4), dims(), EnvConfig::default(), PpoConfig::default(), cfg)
            .with_telemetry(Telemetry::new(rec.clone()))
            .with_scenario(&binding);
    let _ = r.train();
    let snap = rec.snapshot();
    let h = snap.histogram("fed/participation_fraction").expect("fraction observed");
    assert!(h.count() >= 3, "expected one observation per round");
    assert_eq!(h.min(), 1.0, "fraction under-reported: denominator is not the enrolled cohort");
    assert_eq!(h.max(), 1.0);
}
