//! Bit-identity of the *parallel* aggregation path at federation scale:
//! with `FedConfig::parallel` on, the PFRL-DM aggregator standardizes
//! tokens, runs the per-head attention, and applies the mixing matrix on
//! the rayon pool — and must produce exactly the float stream of the
//! sequential path at K=128, dense and top-k alike. This is the
//! aggregation-side counterpart of the training-side invariance proved by
//! `tests/scenario_determinism.rs`.

use pfrl_core::fed::{ClientSetup, FedConfig, PfrlDmRunner};
use pfrl_core::nn::params::apply_mixing_matrix_into;
use pfrl_core::nn::{multi_head_attention_weights_into, AttentionScratch, MultiHeadConfig};
use pfrl_core::rl::PpoConfig;
use pfrl_core::sim::{EnvConfig, EnvDims, VmSpec};
use pfrl_core::tensor::Matrix;
use pfrl_core::workloads::DatasetId;

fn dims() -> EnvDims {
    EnvDims::new(2, 8, 64.0, 3)
}

fn runner(n: usize, parallel: bool, top_k: Option<usize>) -> PfrlDmRunner {
    let setups: Vec<ClientSetup> = (0..n)
        .map(|i| ClientSetup {
            name: format!("client{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DatasetId::K8s.model().sample(8, 7000 + i as u64),
        })
        .collect();
    let fed = FedConfig {
        episodes: 2,
        comm_every: 1,
        participation_k: n,
        tasks_per_episode: Some(8),
        seed: 1234,
        parallel,
    };
    let att = MultiHeadConfig { top_k, ..Default::default() };
    PfrlDmRunner::with_attention(
        setups,
        dims(),
        EnvConfig::default(),
        PpoConfig::default(),
        fed,
        att,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn k128_parallel_aggregation_is_bit_identical_to_sequential() {
    for top_k in [None, Some(MultiHeadConfig::PAPER_TOP_K)] {
        let mut seq = runner(128, false, top_k);
        let mut par = runner(128, true, top_k);
        for _ in 0..2 {
            seq.aggregate();
            par.aggregate();
        }
        assert_eq!(seq.weight_history.len(), par.weight_history.len());
        for (ws, wp) in seq.weight_history.iter().zip(&par.weight_history) {
            assert_eq!(ws.shape(), (128, 128));
            for r in 0..ws.rows() {
                assert_eq!(
                    bits(ws.row(r)),
                    bits(wp.row(r)),
                    "top_k={top_k:?}: mixing weights diverge at row {r}"
                );
            }
        }
        for (a, b) in seq.clients.iter().zip(&par.clients) {
            assert_eq!(
                bits(&a.agent.public_critic_params()),
                bits(&b.agent.public_critic_params()),
                "top_k={top_k:?}: personalized critics diverge for {}",
                a.name
            );
        }
    }
}

/// The kernels alone, at K=256 with an awkward (non-multiple-of-threads)
/// parameter length: parallel standardization, per-head scoring, and
/// parallel mixing all reproduce the sequential float stream bit for bit.
#[test]
fn kernel_level_parallel_paths_match_sequential_bitwise() {
    let k = 256;
    let p = 131;
    let params: Vec<Vec<f32>> =
        (0..k).map(|i| (0..p).map(|j| ((i * p + j) as f32 * 0.37).sin()).collect()).collect();
    let cfg = MultiHeadConfig { top_k: Some(9), ..Default::default() };

    let (mut ws_s, mut ws_p) = (AttentionScratch::new(), AttentionScratch::new());
    let (mut w_s, mut w_p) = (Matrix::default(), Matrix::default());
    multi_head_attention_weights_into(&params, &cfg, false, &mut ws_s, &mut w_s);
    multi_head_attention_weights_into(&params, &cfg, true, &mut ws_p, &mut w_p);
    for r in 0..k {
        assert_eq!(bits(w_s.row(r)), bits(w_p.row(r)), "attention scores diverge at row {r}");
    }

    let (mut out_s, mut out_p) = (Vec::new(), Vec::new());
    apply_mixing_matrix_into(&w_s, &params, false, &mut out_s);
    apply_mixing_matrix_into(&w_s, &params, true, &mut out_p);
    for (r, (a, b)) in out_s.iter().zip(&out_p).enumerate() {
        assert_eq!(bits(a), bits(b), "mixed parameters diverge at row {r}");
    }
}
