//! Integration tests of the beyond-the-paper extensions: DAG scheduling,
//! secure aggregation, energy/cost objectives, checkpointing, and action
//! masking — exercised through the public API across crates.

use pfrl_rl::{DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_sim::objectives::{total_cost_dollars, total_energy_wh, CostModel, EnergyModel};
use pfrl_sim::{Action, DagCloudEnv, EnvConfig, EnvDims, SchedulingEnv, VmSpec};
use pfrl_workloads::{DatasetId, WorkflowModel};

fn dag_env() -> (EnvDims, DagCloudEnv) {
    let dims = EnvDims::new(3, 8, 64.0, 4);
    let env = DagCloudEnv::new(
        dims,
        vec![VmSpec::new(8, 64.0), VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        EnvConfig::default(),
    );
    (dims, env)
}

fn small_workflows(n: usize, seed: u64) -> Vec<pfrl_workloads::Workflow> {
    let model = WorkflowModel {
        layers: (2, 4),
        width: (1, 3),
        max_fan_in: 2,
        mean_interarrival: 20.0,
        ..WorkflowModel::scientific(DatasetId::K8s.model())
    };
    model.sample(n, seed)
}

#[test]
fn ppo_trains_on_dag_environment_and_improves() {
    let (dims, mut env) = dag_env();
    let mut agent = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 1);
    let wfs = small_workflows(4, 3);
    let mut rewards = Vec::new();
    for _ in 0..60 {
        env.reset(wfs.clone());
        rewards.push(agent.train_one_episode(&mut env) as f64);
    }
    let early: f64 = rewards[..10].iter().sum::<f64>() / 10.0;
    let late: f64 = rewards[50..].iter().sum::<f64>() / 10.0;
    assert!(late > early, "DAG training: early {early:.1} late {late:.1}");
}

#[test]
fn dual_critic_agent_works_on_dags_too() {
    let (dims, mut env) = dag_env();
    let mut agent =
        DualCriticAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 2);
    let wfs = small_workflows(3, 5);
    for _ in 0..3 {
        env.reset(wfs.clone());
        let r = agent.train_one_episode(&mut env);
        assert!(r.is_finite());
    }
    assert!((0.0..=1.0).contains(&agent.alpha()));
}

#[test]
fn dag_makespans_respect_critical_path() {
    let (_, mut env) = dag_env();
    let wfs = small_workflows(5, 7);
    env.reset(wfs.clone());
    let mut guard = 0;
    while !env.is_done() && guard < 50_000 {
        let a = env.first_fit_action().unwrap_or(Action::Wait);
        env.step(a);
        guard += 1;
    }
    assert!(env.is_done() && !env.is_truncated());
    for (wf, span) in wfs.iter().zip(env.workflow_makespans()) {
        let span = span.expect("workflow completed");
        assert!(
            span >= wf.critical_path(),
            "span {span} below critical path {}",
            wf.critical_path()
        );
    }
}

#[test]
fn energy_and_cost_computable_from_any_episode() {
    let (_, mut env) = dag_env();
    env.reset(small_workflows(3, 9));
    let mut guard = 0;
    while !env.is_done() && guard < 50_000 {
        let a = env.first_fit_action().unwrap_or(Action::Wait);
        env.step(a);
        guard += 1;
    }
    let m = env.metrics();
    let vms = [VmSpec::new(8, 64.0), VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)];
    let energy = total_energy_wh(env.records(), &vms, &EnergyModel::commodity(), m.makespan);
    let cost = total_cost_dollars(env.records(), &CostModel::on_demand());
    assert!(energy > 0.0, "energy {energy}");
    assert!(cost > 0.0, "cost {cost}");
    // Energy at least covers idle power over the makespan.
    let idle_floor = 150.0 * 3.0 * (m.makespan / 60.0);
    assert!(energy >= idle_floor - 1e-6);
}

#[test]
fn secure_aggregation_is_transparent_to_training() {
    use pfrl_fed::{ClientSetup, FedAvgRunner, FedConfig};
    let dims = EnvDims::new(2, 8, 64.0, 3);
    let setups: Vec<ClientSetup> = (0..3)
        .map(|i| ClientSetup {
            name: format!("c{i}"),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DatasetId::ALL[i].model().sample(60, i as u64),
        })
        .collect();
    let fed = FedConfig {
        episodes: 4,
        comm_every: 2,
        participation_k: 1,
        tasks_per_episode: Some(12),
        seed: 3,
        parallel: false,
    };
    let mut plain =
        FedAvgRunner::new(setups.clone(), dims, EnvConfig::default(), PpoConfig::default(), fed);
    let mut secure =
        FedAvgRunner::new(setups, dims, EnvConfig::default(), PpoConfig::default(), fed)
            .with_secure_aggregation(true);
    let c1 = plain.train();
    let c2 = secure.train();
    // Same training rewards episode by episode up to the (tiny) float
    // round-off the masking introduces at aggregation boundaries.
    for (a, b) in c1.per_client.iter().flatten().zip(c2.per_client.iter().flatten()) {
        assert!((a - b).abs() < 25.0, "diverged: {a} vs {b}");
    }
    let pa = plain.clients[0].agent.actor_params();
    let pb = secure.clients[0].agent.actor_params();
    let drift: f32 = pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f32>() / pa.len() as f32;
    assert!(drift < 1e-2, "mean param drift {drift}");
}

#[test]
fn masked_and_unmasked_agents_share_checkpoint_format() {
    let dims = EnvDims::new(2, 8, 64.0, 3);
    let dir = std::env::temp_dir().join("pfrl_ext_ckpt");
    let path = dir.join("agent.ckpt");
    let cfg = PpoConfig { mask_invalid_actions: true, ..Default::default() };
    let mut masked = PpoAgent::new(dims.state_dim(), dims.action_dim(), cfg, 4);
    let mut env = pfrl_sim::CloudEnv::new(
        dims,
        vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
        EnvConfig::default(),
    );
    env.reset(DatasetId::K8s.model().sample(15, 1));
    masked.train_one_episode(&mut env);
    masked.save_checkpoint(&path).unwrap();

    let mut plain = PpoAgent::new(dims.state_dim(), dims.action_dim(), PpoConfig::default(), 9);
    plain.load_checkpoint(&path).unwrap();
    assert_eq!(plain.actor_params(), masked.actor_params());
    let _ = std::fs::remove_dir_all(dir);
}
