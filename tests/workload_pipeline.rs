//! Integration tests of the workload pipeline: dataset models → splits →
//! hybrid mixes → simulator episodes → metrics, across crate boundaries.

use pfrl_core::presets::{table2_clients, table3_clients, TABLE2_DIMS, TABLE3_DIMS};
use pfrl_sim::{CloudEnv, EnvConfig, HeuristicPolicy, VmSpec};
use pfrl_workloads::{combined_heterogeneous, hybrid_test_set, train_test_split, DatasetId};

#[test]
fn every_table3_client_completes_heuristic_episodes() {
    for c in table3_clients(150, 0) {
        let mut env = CloudEnv::new(TABLE3_DIMS, c.vms.clone(), EnvConfig::default());
        env.reset(c.train_tasks.clone());
        let m = pfrl_sim::run_heuristic(&mut env, HeuristicPolicy::FirstFit, 1);
        assert!(!env.is_truncated(), "{} truncated", c.name);
        assert!(m.tasks_placed > 0, "{} placed nothing", c.name);
        assert!(m.avg_utilization > 0.0 && m.avg_utilization <= 1.0, "{}", c.name);
        assert!(m.makespan >= m.avg_response, "{}: makespan < avg response", c.name);
    }
}

#[test]
fn split_then_hybrid_composes() {
    let clients = table2_clients(200, 1);
    let splits: Vec<_> = clients.iter().map(|c| train_test_split(&c.train_tasks, 0.6, 7)).collect();
    let test_sets: Vec<_> = splits.iter().map(|s| s.test.clone()).collect();
    for i in 0..test_sets.len() {
        let hybrid = hybrid_test_set(&test_sets, i, 0.2, 9);
        assert_eq!(hybrid.len(), test_sets[i].len());
        // Hybrid traces must replay cleanly on the owning client's cluster.
        let mut env = CloudEnv::new(TABLE2_DIMS, clients[i].vms.clone(), EnvConfig::default());
        env.reset(hybrid);
        let m = pfrl_sim::run_heuristic(&mut env, HeuristicPolicy::BestFit, 3);
        assert_eq!(m.tasks_placed + m.tasks_unplaced, test_sets[i].len());
    }
}

#[test]
fn combined_pool_runs_on_every_client() {
    let clients = table2_clients(120, 2);
    let pools: Vec<_> = clients.iter().map(|c| c.train_tasks.clone()).collect();
    let combined = combined_heterogeneous(&pools, 30, 5);
    assert_eq!(combined.len(), 120);
    for c in &clients {
        let mut env = CloudEnv::new(TABLE2_DIMS, c.vms.clone(), EnvConfig::default());
        env.reset(combined.clone());
        let m = pfrl_sim::run_heuristic(&mut env, HeuristicPolicy::FirstFit, 1);
        // Foreign tasks may be inadmissible, but the episode must finish.
        assert!(!env.is_truncated(), "{}", c.name);
        assert_eq!(m.tasks_placed + m.tasks_unplaced, 120);
    }
}

#[test]
fn dataset_heterogeneity_visible_in_episode_metrics() {
    // Running the same cluster over K8S vs HPC-WZ workloads must produce
    // very different response times (short containers vs long HPC jobs).
    let vms = vec![VmSpec::new(64, 512.0), VmSpec::new(64, 512.0)];
    let run = |d: DatasetId| {
        let mut env = CloudEnv::new(TABLE3_DIMS, vms.clone(), EnvConfig::default());
        env.reset(d.model().sample(100, 3));
        pfrl_sim::run_heuristic(&mut env, HeuristicPolicy::BestFit, 1).avg_response
    };
    let k8s = run(DatasetId::K8s);
    let hpc = run(DatasetId::HpcWz);
    assert!(hpc > 5.0 * k8s, "HPC-WZ response {hpc} vs K8S {k8s}");
}

#[test]
fn sampling_is_reproducible_across_the_stack() {
    let a = table3_clients(50, 9);
    let b = table3_clients(50, 9);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.train_tasks, y.train_tasks);
        assert_eq!(x.vms.len(), y.vms.len());
    }
}
