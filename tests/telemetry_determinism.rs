//! The telemetry determinism contract, end to end: recorded counters and
//! observe-histograms carry only values derived from the (deterministic)
//! computation, never from the clock, so a federation run records the same
//! deterministic fingerprint whether clients train sequentially or on the
//! rayon pool. Wall-clock only ever flows through gauges, spans, and
//! `*wall*`-named histograms (`fed/agg_wall_us`), all of which the
//! fingerprint excludes.

use pfrl_core::experiment::{run_federation_with_telemetry, Algorithm};
use pfrl_core::fed::FedConfig;
use pfrl_core::presets::{table2_clients, TABLE2_DIMS};
use pfrl_core::rl::PpoConfig;
use pfrl_core::sim::EnvConfig;
use pfrl_telemetry::{InMemoryRecorder, MetricsSnapshot, Telemetry};
use std::sync::Arc;

fn recorded_run(algorithm: Algorithm, parallel: bool) -> MetricsSnapshot {
    let fed_cfg = FedConfig {
        episodes: 4,
        comm_every: 2,
        participation_k: 2,
        tasks_per_episode: Some(12),
        seed: 23,
        parallel,
    };
    let recorder = Arc::new(InMemoryRecorder::new());
    let (curves, _) = run_federation_with_telemetry(
        algorithm,
        table2_clients(40, 6),
        TABLE2_DIMS,
        EnvConfig::default(),
        PpoConfig::default(),
        fed_cfg,
        Telemetry::new(recorder.clone()),
    );
    assert_eq!(curves.clients(), 4);
    recorder.snapshot()
}

fn assert_parallelism_invariant(algorithm: Algorithm) {
    let seq = recorded_run(algorithm, false);
    let par = recorded_run(algorithm, true);
    assert_eq!(
        seq.deterministic_fingerprint(),
        par.deterministic_fingerprint(),
        "{algorithm}: parallel and sequential runs must record identical \
         counters and histogram shapes"
    );
    // Sanity: the runs actually recorded the training signal.
    assert!(seq.counter("sim/decisions") > 0, "{algorithm}: no decisions recorded");
    assert!(
        seq.histogram("rl/episode_reward").is_some(),
        "{algorithm}: no episode rewards recorded"
    );
}

#[test]
fn fedavg_fingerprint_is_thread_count_invariant() {
    assert_parallelism_invariant(Algorithm::FedAvg);
}

#[test]
fn pfrl_dm_fingerprint_is_thread_count_invariant() {
    assert_parallelism_invariant(Algorithm::PfrlDm);
}

#[test]
fn mfpo_and_ppo_fingerprints_are_thread_count_invariant() {
    assert_parallelism_invariant(Algorithm::Mfpo);
    assert_parallelism_invariant(Algorithm::Ppo);
}

#[test]
fn repeated_sequential_runs_record_identical_fingerprints() {
    let a = recorded_run(Algorithm::PfrlDm, false);
    let b = recorded_run(Algorithm::PfrlDm, false);
    assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
}
