//! Descriptive statistics over `f64` samples.

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    /// If the sample is empty or contains non-finite values.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "Summary::of: empty sample");
        assert!(data.iter().all(|v| v.is_finite()), "Summary::of: non-finite value");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self {
            n: data.len(),
            mean: mean(data),
            std: sample_std(data),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Arithmetic mean (0.0 for empty input).
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Sample variance with `n-1` denominator (0.0 for n < 2).
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation.
pub fn sample_std(data: &[f64]) -> f64 {
    sample_variance(data).sqrt()
}

/// Median of an unsorted sample.
///
/// # Panics
/// If the sample is empty.
pub fn median(data: &[f64]) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    percentile_sorted(&sorted, 50.0)
}

/// Percentile `p ∈ [0, 100]` by linear interpolation on a sorted slice.
///
/// # Panics
/// If the slice is empty or `p` out of range.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Index-paired element-wise difference `a - b`.
///
/// # Panics
/// If lengths differ.
pub fn paired_differences(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "paired_differences: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_textbook() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        // population var = 4.0, sample var = 32/7
        assert!((sample_variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
        assert!((percentile_sorted(&sorted, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn summary_consistency() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_nan_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn paired_differences_hand() {
        assert_eq!(paired_differences(&[3.0, 5.0], &[1.0, 7.0]), vec![2.0, -2.0]);
    }
}
