//! Two-sided Wilcoxon signed-rank test for paired samples (Table 4).
//!
//! Zero differences are dropped (Wilcoxon's original treatment, matching
//! SciPy's default `zero_method="wilcox"`); tied absolute differences get
//! average ranks. For `n ≤ 25` retained pairs the p-value is computed from
//! the exact permutation distribution of the rank sum (enumerated by dynamic
//! programming over doubled ranks so average ranks stay integral); for
//! larger `n` a normal approximation with tie correction and continuity
//! correction is used.

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences, `W⁺`.
    pub w_plus: f64,
    /// Sum of ranks of negative differences, `W⁻`.
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Whether the exact distribution was used (vs normal approximation).
    pub exact: bool,
}

/// Runs the test on paired samples `a` and `b` (testing `a - b` symmetric
/// about zero).
///
/// # Panics
/// If lengths differ, or every difference is zero (the statistic is
/// undefined), or fewer than 1 pair is supplied.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "wilcoxon: length mismatch");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).filter(|d| *d != 0.0).collect();
    assert!(
        !diffs.is_empty(),
        "wilcoxon: all differences are zero; the test statistic is undefined"
    );
    let n = diffs.len();

    // Rank |d| with average ranks for ties. Work in doubled ranks so ties
    // like 1.5 stay integral for the exact enumeration.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| diffs[i].abs().partial_cmp(&diffs[j].abs()).expect("finite"));
    let mut ranks2 = vec![0u64; n]; // doubled ranks
    let mut tie_sizes: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        // positions i..=j share the average rank ((i+1)+(j+1))/2; doubled:
        let avg2 = (i as u64 + 1) + (j as u64 + 1);
        for &idx in &order[i..=j] {
            ranks2[idx] = avg2;
        }
        if j > i {
            tie_sizes.push(j - i + 1);
        }
        i = j + 1;
    }

    let mut w_plus2: u64 = 0;
    let mut w_minus2: u64 = 0;
    for (d, &r2) in diffs.iter().zip(&ranks2) {
        if *d > 0.0 {
            w_plus2 += r2;
        } else {
            w_minus2 += r2;
        }
    }
    let w_plus = w_plus2 as f64 / 2.0;
    let w_minus = w_minus2 as f64 / 2.0;

    let (p_value, exact) = if n <= 25 {
        (exact_two_sided_p(&ranks2, w_plus2.min(w_minus2)), true)
    } else {
        (normal_two_sided_p(n, &tie_sizes, w_plus), false)
    };

    WilcoxonResult { w_plus, w_minus, n_used: n, p_value: p_value.min(1.0), exact }
}

/// Exact two-sided p-value: `P(min(W⁺, W⁻) ≤ w_min)` under the null, where
/// each rank independently lands in the positive or negative pile.
///
/// Enumerates the distribution of the (doubled) positive rank sum by DP:
/// `count[s]` = number of sign assignments with doubled rank sum `s`.
fn exact_two_sided_p(ranks2: &[u64], w_min2: u64) -> f64 {
    let total: u64 = ranks2.iter().sum();
    let mut counts = vec![0.0f64; total as usize + 1];
    counts[0] = 1.0;
    let mut reach = 0usize;
    for &r in ranks2 {
        let r = r as usize;
        reach = (reach + r).min(total as usize);
        for s in (0..=reach).rev() {
            if s >= r && counts[s - r] > 0.0 {
                counts[s] += counts[s - r];
            }
        }
    }
    let denom = 2.0f64.powi(ranks2.len() as i32);
    // Two-sided: mass at or below w_min on BOTH tails. By symmetry of the
    // null distribution around total/2, P(W⁺ ≤ w) == P(W⁻ ≤ w), so
    // p = 2 · P(W⁺ ≤ w_min), minus the double-counted middle if the two
    // tails overlap (only possible when w_min ≥ total/2, i.e. p would be 1).
    let low_mass: f64 = counts[..=(w_min2 as usize).min(total as usize)].iter().sum();
    (2.0 * low_mass / denom).min(1.0)
}

/// Normal approximation with tie correction and 0.5 continuity correction.
fn normal_two_sided_p(n: usize, tie_sizes: &[usize], w_plus: f64) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let tie_corr: f64 = tie_sizes.iter().map(|&t| (t * t * t - t) as f64).sum::<f64>() / 48.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_corr;
    if var <= 0.0 {
        return 1.0;
    }
    let z = (w_plus - mean).abs() - 0.5;
    let z = z.max(0.0) / var.sqrt();
    2.0 * normal_sf(z)
}

/// Standard normal survival function `P(Z > z)` via the complementary error
/// function (Abramowitz–Stegun 7.1.26 rational approximation, |err| < 1.5e-7).
fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x * x).exp();
    if sign_neg {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n = 10 with every difference positive: the most extreme outcome.
    /// Exact two-sided p = 2/2^10 ≈ 1.953e-3, the value SciPy reports and
    /// (to approximation error) what the paper's Table 4 shows (1.93e-3).
    #[test]
    fn table4_configuration_all_positive_n10() {
        let a: Vec<f64> = (1..=10).map(|i| i as f64 + 10.0).collect();
        let b: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.exact);
        assert_eq!(r.w_plus, 55.0);
        assert_eq!(r.w_minus, 0.0);
        assert!((r.p_value - 2.0 / 1024.0).abs() < 1e-12, "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_arguments_same_p() {
        let a = [1.0, 5.0, 3.0, 9.0, 2.0, 8.0];
        let b = [2.0, 4.0, 6.0, 1.0, 7.0, 3.0];
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        assert_eq!(r1.p_value, r2.p_value);
        assert_eq!(r1.w_plus, r2.w_minus);
    }

    /// Textbook example (Conover-style data with one zero and one tie pair):
    /// the rank statistics are checked by hand and the exact p-value is
    /// cross-checked against a brute-force enumeration of all 2^9 sign
    /// assignments below.
    #[test]
    fn hand_ranked_example_with_zero_and_ties() {
        let x = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let y = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        // diffs (zero dropped): [15,-7,5,20,-9,17,-12,5,-10]
        // |d| ranks: 5→1.5 (twice), 7→3, 9→4, 10→5, 12→6, 15→7, 17→8, 20→9
        let r = wilcoxon_signed_rank(&x, &y);
        assert_eq!(r.n_used, 9);
        assert!(r.exact);
        assert_eq!(r.w_plus, 27.0); // 7 + 1.5 + 9 + 8 + 1.5
        assert_eq!(r.w_minus, 18.0); // 3 + 4 + 6 + 5
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    /// Brute-force validation of the exact DP: enumerate all sign
    /// assignments of the ranks and compute the two-sided p directly.
    #[test]
    fn exact_p_matches_brute_force_enumeration() {
        let a = [125.0, 115.0, 130.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let b = [110.0, 122.0, 125.0, 120.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        let r = wilcoxon_signed_rank(&a, &b);
        // Recompute doubled ranks exactly as the implementation defines them.
        let diffs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let n = diffs.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| diffs[i].abs().partial_cmp(&diffs[j].abs()).unwrap());
        let mut ranks2 = vec![0u64; n];
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
                j += 1;
            }
            let avg2 = (i as u64 + 1) + (j as u64 + 1);
            for &idx in &order[i..=j] {
                ranks2[idx] = avg2;
            }
            i = j + 1;
        }
        let w_min2 = (2.0 * r.w_plus.min(r.w_minus)) as u64;
        // Enumerate all 2^n assignments; count those with min tail ≤ w_min.
        let total2: u64 = ranks2.iter().sum();
        let mut low = 0u64;
        for mask in 0u32..(1 << n) {
            let wp2: u64 = (0..n).filter(|&k| mask & (1 << k) != 0).map(|k| ranks2[k]).sum();
            if wp2 <= w_min2 || (total2 - wp2) <= w_min2 {
                low += 1;
            }
        }
        let brute = low as f64 / (1u64 << n) as f64;
        assert!(
            (r.p_value - brute).abs() < 1e-12,
            "implementation {} vs brute force {}",
            r.p_value,
            brute
        );
    }

    /// n = 3, all differences positive, distinct magnitudes: W⁻ = 0 and the
    /// exact two-sided p is 2·P(W ≤ 0) = 2/8.
    #[test]
    fn tiny_exact_case_by_hand() {
        let r = wilcoxon_signed_rank(&[2.0, 4.0, 7.0], &[1.0, 2.0, 4.0]);
        assert_eq!(r.w_minus, 0.0);
        assert_eq!(r.w_plus, 6.0);
        assert!((r.p_value - 0.25).abs() < 1e-12, "p = {}", r.p_value);
    }

    #[test]
    fn zero_differences_dropped() {
        let a = [1.0, 2.0, 3.0, 10.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n_used, 1);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "all differences are zero")]
    fn all_zero_panics() {
        let a = [1.0, 2.0];
        let _ = wilcoxon_signed_rank(&a, &a);
    }

    #[test]
    fn ties_get_average_ranks() {
        // |diffs| = [1, 1, 2]: ranks 1.5, 1.5, 3.
        let a = [2.0, 0.0, 5.0];
        let b = [1.0, 1.0, 3.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.w_plus, 4.5);
        assert_eq!(r.w_minus, 1.5);
        assert!((r.w_plus + r.w_minus - 6.0).abs() < 1e-12);
    }

    #[test]
    fn large_n_uses_normal_approximation() {
        // 30 pairs, alternating small effects: ~null ⇒ p not tiny.
        let a: Vec<f64> = (0..30).map(|i| i as f64 + if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(!r.exact);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn large_n_strong_effect_small_p() {
        let a: Vec<f64> = (0..40).map(|i| i as f64 + 1.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(!r.exact);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn p_value_always_in_unit_interval() {
        let cases: [(&[f64], &[f64]); 3] = [
            (&[1.0, 2.0], &[2.0, 1.0]),
            (&[5.0, 5.0, 5.0, 1.0], &[1.0, 1.0, 1.0, 5.0]),
            (&[1.0, 2.0, 3.0, 4.0, 5.0], &[5.0, 4.0, 3.0, 2.0, 1.0]),
        ];
        for (a, b) in cases {
            let r = wilcoxon_signed_rank(a, b);
            assert!(r.p_value > 0.0 && r.p_value <= 1.0, "p = {}", r.p_value);
        }
    }
}
