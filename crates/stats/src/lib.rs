//! Statistics for the PFRL-DM evaluation: descriptive summaries, empirical
//! CDFs (Fig. 5), discrete divergences (Fig. 12), the Wilcoxon signed-rank
//! test (Table 4), bootstrap confidence intervals and Holm correction for
//! the multi-seed replication harness, and deterministic seed derivation
//! for the federated experiments.
//!
//! Everything here is dependency-free, `f64`-precision, and validated
//! against hand-computed and textbook values in the unit tests.

pub mod bootstrap;
pub mod cdf;
pub mod descriptive;
pub mod divergence;
pub mod holm;
pub mod seeding;
pub mod wilcoxon;

pub use bootstrap::{bootstrap_mean_ci, BootstrapCi};
pub use cdf::EmpiricalCdf;
pub use descriptive::Summary;
pub use divergence::{histogram, js_divergence, kl_divergence};
pub use holm::holm_adjust;
pub use seeding::{derive_seed, SeedStream};
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
