//! Deterministic seed derivation.
//!
//! Every stochastic component of the reproduction (workload sampling, network
//! initialization, per-episode exploration, client participation draws) takes
//! a seed derived from one experiment root seed through SplitMix64, so that
//! (a) different components never share a stream and (b) results are
//! identical regardless of the number of worker threads.

/// One SplitMix64 step: maps a 64-bit state to a well-mixed output.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `(root, stream)` — e.g.
/// `derive_seed(root, client_id)` for per-client streams.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    splitmix64(root ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5_DEAD_BEEF)))
}

/// A named hierarchy of seeds: `SeedStream::new(root).child("workload").index(3)`
/// always yields the same value for the same path.
#[derive(Debug, Clone, Copy)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Starts a stream at an experiment root seed.
    pub fn new(root: u64) -> Self {
        Self { state: splitmix64(root) }
    }

    /// Descends into a labeled sub-stream (label hashed with FNV-1a).
    pub fn child(self, label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: splitmix64(self.state ^ h) }
    }

    /// Descends into a numbered sub-stream.
    pub fn index(self, i: u64) -> Self {
        Self { state: derive_seed(self.state, i) }
    }

    /// The seed value at this node.
    pub fn seed(self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_eq!(
            SeedStream::new(1).child("a").index(2).seed(),
            SeedStream::new(1).child("a").index(2).seed()
        );
    }

    #[test]
    fn distinct_streams_distinct_seeds() {
        let root = SeedStream::new(7);
        assert_ne!(root.child("actor").seed(), root.child("critic").seed());
        assert_ne!(root.index(0).seed(), root.index(1).seed());
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn path_order_matters() {
        let s = SeedStream::new(3);
        assert_ne!(s.child("a").child("b").seed(), s.child("b").child("a").seed());
    }

    #[test]
    fn no_trivial_collisions_across_1000_indices() {
        let s = SeedStream::new(99);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(s.index(i).seed()), "collision at {i}");
        }
    }
}
