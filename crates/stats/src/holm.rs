//! Holm–Bonferroni correction for families of hypothesis tests.
//!
//! The replication harness runs one paired test per
//! (baseline, workload, metric) combination; reporting raw p-values over
//! that family would inflate the false-positive rate. Holm's step-down
//! procedure controls the family-wise error rate at least as powerfully
//! as plain Bonferroni, with no independence assumptions.

/// Holm–Bonferroni adjusted p-values, returned in the input order.
///
/// Sorting the p-values ascending as `p_(1) ≤ … ≤ p_(m)`, the adjusted
/// value of `p_(i)` is `max_{j ≤ i} min(1, (m - j + 1) · p_(j))` — the
/// running maximum enforces monotonicity so the step-down rejection rule
/// ("reject while adjusted p ≤ α") is equivalent to the classical
/// formulation.
///
/// # Panics
/// If any p-value is NaN or outside `[0, 1]`.
pub fn holm_adjust(p_values: &[f64]) -> Vec<f64> {
    for &p in p_values {
        assert!((0.0..=1.0).contains(&p), "holm_adjust: p-value {p} outside [0, 1]");
    }
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| p_values[i].partial_cmp(&p_values[j]).expect("finite p-values"));

    let mut adjusted = vec![0.0f64; m];
    let mut running_max = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        let scaled = ((m - rank) as f64 * p_values[idx]).min(1.0);
        running_max = running_max.max(scaled);
        adjusted[idx] = running_max;
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic worked example: p = [0.01, 0.04, 0.03, 0.005], m = 4.
        // Sorted: 0.005·4 = 0.02, 0.01·3 = 0.03, 0.03·2 = 0.06, 0.04·1 = 0.04
        // → running max: 0.02, 0.03, 0.06, 0.06 (monotonicity clamps the last).
        let adj = holm_adjust(&[0.01, 0.04, 0.03, 0.005]);
        let expect = [0.03, 0.06, 0.06, 0.02];
        for (a, e) in adj.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-12, "{adj:?} vs {expect:?}");
        }
    }

    #[test]
    fn single_test_is_unchanged() {
        assert_eq!(holm_adjust(&[0.07]), vec![0.07]);
    }

    #[test]
    fn empty_family_is_empty() {
        assert!(holm_adjust(&[]).is_empty());
    }

    #[test]
    fn adjusted_values_are_capped_at_one() {
        let adj = holm_adjust(&[0.9, 0.8, 0.7]);
        assert!(adj.iter().all(|&p| p <= 1.0));
        assert_eq!(adj, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn adjustment_never_decreases_a_p_value() {
        let raw = [0.001, 0.2, 0.05, 0.6, 0.03];
        let adj = holm_adjust(&raw);
        for (r, a) in raw.iter().zip(&adj) {
            assert!(a >= r, "{a} < {r}");
        }
    }

    #[test]
    fn monotone_in_rank_order() {
        let raw = [0.04, 0.01, 0.02, 0.03];
        let adj = holm_adjust(&raw);
        let mut pairs: Vec<(f64, f64)> = raw.iter().cloned().zip(adj.iter().cloned()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1), "{pairs:?}");
    }

    #[test]
    fn ties_get_equal_adjustments() {
        let adj = holm_adjust(&[0.02, 0.02, 0.5]);
        assert_eq!(adj[0], adj[1]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_rejected() {
        let _ = holm_adjust(&[0.5, 1.5]);
    }
}
