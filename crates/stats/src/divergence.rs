//! Discrete distribution divergences, used by the Sec. 3.3 study comparing
//! KL-divergence-based aggregation weights (Fig. 12) against attention and
//! cosine weights.

/// Kullback–Leibler divergence `D(p‖q) = Σ p·ln(p/q)` in nats.
///
/// Zero-probability bins in `p` contribute nothing; zero bins in `q` where
/// `p > 0` are smoothed with `eps = 1e-12` rather than returning infinity,
/// which matches how the weight-generation code must behave on histograms of
/// finite samples.
///
/// # Panics
/// If lengths differ or inputs are not (approximately) normalized.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence: length mismatch");
    for (name, dist) in [("p", p), ("q", q)] {
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "kl_divergence: {name} sums to {sum}, expected 1");
        assert!(dist.iter().all(|&v| v >= 0.0), "kl_divergence: negative mass in {name}");
    }
    const EPS: f64 = 1e-12;
    p.iter().zip(q).filter(|(&pi, _)| pi > 0.0).map(|(&pi, &qi)| pi * (pi / qi.max(EPS)).ln()).sum()
}

/// Jensen–Shannon divergence (symmetric, bounded by `ln 2`).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "js_divergence: length mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Normalized histogram of `data` over `bins` equal-width bins spanning
/// `[lo, hi]`; out-of-range values clamp into the edge bins, so the result
/// always sums to 1 for non-empty input.
///
/// # Panics
/// If `bins == 0`, `lo >= hi`, or `data` is empty.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "histogram: zero bins");
    assert!(lo < hi, "histogram: lo {lo} >= hi {hi}");
    assert!(!data.is_empty(), "histogram: empty data");
    let mut counts = vec![0.0f64; bins];
    let width = (hi - lo) / bins as f64;
    for &v in data {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1.0;
    }
    let total = data.len() as f64;
    counts.iter_mut().for_each(|c| *c /= total);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_hand_value() {
        // D([1/2,1/2] ‖ [1/4,3/4]) = 0.5 ln2 + 0.5 ln(2/3)
        let d = kl_divergence(&[0.5, 0.5], &[0.25, 0.75]);
        let expect = 0.5 * 2.0f64.ln() + 0.5 * (2.0f64 / 3.0).ln();
        assert!((d - expect).abs() < 1e-12, "{d} vs {expect}");
    }

    #[test]
    fn kl_is_asymmetric_and_nonnegative() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let dpq = kl_divergence(&p, &q);
        let dqp = kl_divergence(&q, &p);
        assert!(dpq > 0.0 && dqp > 0.0);
        assert!((dpq - dqp).abs() > 1e-6);
    }

    #[test]
    fn kl_smooths_zero_bins() {
        let d = kl_divergence(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(d.is_finite() && d > 10.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn kl_rejects_unnormalized() {
        let _ = kl_divergence(&[0.5, 0.1], &[0.5, 0.5]);
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [0.8, 0.2, 0.0];
        let q = [0.1, 0.3, 0.6];
        let a = js_divergence(&p, &q);
        let b = js_divergence(&q, &p);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a <= std::f64::consts::LN_2 + 1e-12);
    }

    #[test]
    fn histogram_normalized_and_placed() {
        let h = histogram(&[0.5, 1.5, 1.6, 2.5], 0.0, 3.0, 3);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h, vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-100.0, 100.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![0.5, 0.5]);
    }
}
