//! Bootstrap resampling for the multi-seed evaluation harness.
//!
//! The replication harness (`pfrl-eval`) reduces each
//! (algorithm, workload, metric) cell — one value per independent seed —
//! into a percentile-bootstrap confidence interval of the mean. The
//! resampler is dependency-free and fully deterministic: resample draws
//! come from a SplitMix64 stream seeded by the caller, so the same data
//! and seed always produce the same interval regardless of thread count.

use crate::seeding::splitmix64;

/// A bootstrap confidence interval for the sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// The sample mean of the original data (not a resampled quantity).
    pub mean: f64,
    /// Lower percentile-bootstrap bound.
    pub lo: f64,
    /// Upper percentile-bootstrap bound.
    pub hi: f64,
    /// Confidence level the bounds correspond to (e.g. 0.95).
    pub confidence: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapCi {
    /// Interval width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Minimal deterministic generator for resample index draws.
struct Mix64 {
    state: u64,
}

impl Mix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `0..n` via rejection-free multiply-shift (Lemire);
    /// the tiny modulo bias is irrelevant at bootstrap sample sizes.
    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

/// Percentile-bootstrap confidence interval for the mean of `data`.
///
/// Draws `resamples` with-replacement resamples of the same size as
/// `data`, computes each resample's mean, and reports the
/// `(1±confidence)/2` percentiles of that distribution (linear
/// interpolation). A single observation yields a degenerate interval at
/// that value.
///
/// # Panics
/// If `data` is empty or contains non-finite values, `resamples == 0`,
/// or `confidence` is outside `(0, 1)`.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!data.is_empty(), "bootstrap_mean_ci: empty sample");
    assert!(data.iter().all(|v| v.is_finite()), "bootstrap_mean_ci: non-finite value");
    assert!(resamples >= 1, "bootstrap_mean_ci: need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "bootstrap_mean_ci: confidence {confidence} outside (0, 1)"
    );
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return BootstrapCi { mean, lo: mean, hi: mean, confidence, resamples };
    }

    let mut rng = Mix64::new(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += data[rng.below(n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite resample means"));
    let tail = (1.0 - confidence) / 2.0;
    BootstrapCi {
        mean,
        lo: crate::descriptive::percentile_sorted(&means, tail * 100.0),
        hi: crate::descriptive::percentile_sorted(&means, (1.0 - tail) * 100.0),
        confidence,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let data: Vec<f64> = (0..20).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
        let a = bootstrap_mean_ci(&data, 500, 0.95, 7);
        let b = bootstrap_mean_ci(&data, 500, 0.95, 7);
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&data, 500, 0.95, 8);
        assert_ne!((a.lo, a.hi), (c.lo, c.hi));
    }

    #[test]
    fn interval_brackets_the_mean_on_a_simple_sample() {
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ci = bootstrap_mean_ci(&data, 2000, 0.95, 1);
        assert!((ci.mean - 14.5).abs() < 1e-12);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.contains(ci.mean));
        // For uniform 0..30 the 95% CI of the mean is a few units wide.
        assert!(ci.width() > 1.0 && ci.width() < 14.0, "width {}", ci.width());
    }

    #[test]
    fn constant_sample_degenerates_to_a_point() {
        let ci = bootstrap_mean_ci(&[4.0; 12], 200, 0.9, 3);
        assert_eq!((ci.lo, ci.mean, ci.hi), (4.0, 4.0, 4.0));
    }

    #[test]
    fn single_observation_is_a_point_interval() {
        let ci = bootstrap_mean_ci(&[2.5], 100, 0.95, 0);
        assert_eq!((ci.lo, ci.mean, ci.hi), (2.5, 2.5, 2.5));
    }

    #[test]
    fn more_data_tightens_the_interval() {
        // The same generating process with 16x the data: the CI of the mean
        // must shrink (roughly by 4x; assert a conservative factor).
        let small: Vec<f64> = (0..10).map(|i| ((i * 37) % 10) as f64).collect();
        let large: Vec<f64> = (0..160).map(|i| ((i * 37) % 10) as f64).collect();
        let ci_s = bootstrap_mean_ci(&small, 1500, 0.95, 5);
        let ci_l = bootstrap_mean_ci(&large, 1500, 0.95, 5);
        assert!(
            ci_l.width() < ci_s.width() / 1.5,
            "large {} vs small {}",
            ci_l.width(),
            ci_s.width()
        );
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let data: Vec<f64> = (0..25).map(|i| (i as f64 * 1.3).cos() * 5.0).collect();
        let narrow = bootstrap_mean_ci(&data, 2000, 0.80, 11);
        let wide = bootstrap_mean_ci(&data, 2000, 0.99, 11);
        assert!(wide.width() > narrow.width());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = bootstrap_mean_ci(&[], 100, 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = bootstrap_mean_ci(&[1.0, f64::NAN], 100, 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_rejected() {
        let _ = bootstrap_mean_ci(&[1.0, 2.0], 100, 1.0, 0);
    }
}
