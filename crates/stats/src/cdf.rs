//! Empirical cumulative distribution functions (used for the Fig. 5
//! execution-time CDFs and elsewhere in the workload analysis).

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample (copied and sorted).
    ///
    /// # Panics
    /// If the sample is empty or contains NaN.
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "EmpiricalCdf: empty sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF sample"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x) = P(X ≤ x)`, a step function in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements ≤ x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: smallest sample value `v` with `F(v) ≥ q`.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Evenly-spaced `(x, F(x))` points for plotting, `n ≥ 2` of them.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_values() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let cdf = EmpiricalCdf::new(&[2.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(1.9), 0.0);
    }

    #[test]
    fn quantile_inverts_eval() {
        let cdf = EmpiricalCdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.2), 10.0);
        assert_eq!(cdf.quantile(0.5), 30.0);
        assert_eq!(cdf.quantile(1.0), 50.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let pts = cdf.plot_points(50);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
        assert_eq!(pts.len(), 50);
        assert!((pts[49].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        let _ = EmpiricalCdf::new(&[]);
    }
}
