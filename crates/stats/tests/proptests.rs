//! Property-based tests of the statistics crate.

use pfrl_stats::descriptive::{mean, median, sample_variance};
use pfrl_stats::{histogram, kl_divergence, wilcoxon_signed_rank, EmpiricalCdf, Summary};
use proptest::prelude::*;

proptest! {
    /// The Wilcoxon p-value is always in (0, 1], and the rank sums always
    /// total n(n+1)/2 over the non-zero differences.
    #[test]
    fn wilcoxon_p_in_unit_interval(
        pairs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..40),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assume!(a.iter().zip(&b).any(|(x, y)| x != y));
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!(r.p_value > 0.0 && r.p_value <= 1.0, "p = {}", r.p_value);
        let n = r.n_used as f64;
        prop_assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    /// Wilcoxon is antisymmetric in its arguments.
    #[test]
    fn wilcoxon_antisymmetric(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..25),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assume!(a.iter().zip(&b).any(|(x, y)| x != y));
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        prop_assert_eq!(r1.w_plus, r2.w_minus);
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    /// The empirical CDF is monotone, 0 below the min, 1 at/above the max.
    #[test]
    fn cdf_monotone(sample in proptest::collection::vec(-100.0f64..100.0, 1..80)) {
        let cdf = EmpiricalCdf::new(&sample);
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.eval(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.eval(hi), 1.0);
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = lo + (hi - lo) * (i as f64 + 10.0) / 20.0;
            let f = cdf.eval(x);
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    /// Quantile inverts eval: `F(quantile(q)) ≥ q`.
    #[test]
    fn quantile_inverts(sample in proptest::collection::vec(-50.0f64..50.0, 1..60), q in 0.01f64..1.0) {
        let cdf = EmpiricalCdf::new(&sample);
        let v = cdf.quantile(q);
        prop_assert!(cdf.eval(v) >= q - 1e-12);
    }

    /// KL divergence is non-negative and zero on identical distributions.
    #[test]
    fn kl_nonnegative(weights in proptest::collection::vec(0.01f64..1.0, 2..10)) {
        let total: f64 = weights.iter().sum();
        let p: Vec<f64> = weights.iter().map(|w| w / total).collect();
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-10);
        // Against uniform:
        let u = vec![1.0 / p.len() as f64; p.len()];
        prop_assert!(kl_divergence(&p, &u) >= -1e-12);
    }

    /// Histograms are normalized for any in-range data.
    #[test]
    fn histogram_normalized(
        data in proptest::collection::vec(-1000.0f64..1000.0, 1..100),
        bins in 1usize..30,
    ) {
        let h = histogram(&data, -1000.0, 1000.0, bins);
        prop_assert_eq!(h.len(), bins);
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(h.iter().all(|&v| v >= 0.0));
    }

    /// Summary invariants: min ≤ p25 ≤ median ≤ p75 ≤ max, and the mean
    /// lies within [min, max].
    #[test]
    fn summary_ordering(sample in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&sample);
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Mean/median shift-equivariance: f(x + c) = f(x) + c.
    #[test]
    fn location_equivariance(
        sample in proptest::collection::vec(-100.0f64..100.0, 1..50),
        c in -50.0f64..50.0,
    ) {
        let shifted: Vec<f64> = sample.iter().map(|v| v + c).collect();
        prop_assert!((mean(&shifted) - mean(&sample) - c).abs() < 1e-7);
        prop_assert!((median(&shifted) - median(&sample) - c).abs() < 1e-7);
        prop_assert!((sample_variance(&shifted) - sample_variance(&sample)).abs() < 1e-5);
    }
}
