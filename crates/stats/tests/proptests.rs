//! Property-based tests of the statistics crate.

use pfrl_stats::descriptive::{mean, median, sample_variance};
use pfrl_stats::{
    bootstrap_mean_ci, histogram, holm_adjust, kl_divergence, wilcoxon_signed_rank, EmpiricalCdf,
    Summary,
};
use proptest::prelude::*;

proptest! {
    /// The Wilcoxon p-value is always in (0, 1], and the rank sums always
    /// total n(n+1)/2 over the non-zero differences.
    #[test]
    fn wilcoxon_p_in_unit_interval(
        pairs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..40),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assume!(a.iter().zip(&b).any(|(x, y)| x != y));
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!(r.p_value > 0.0 && r.p_value <= 1.0, "p = {}", r.p_value);
        let n = r.n_used as f64;
        prop_assert!((r.w_plus + r.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    /// Wilcoxon is antisymmetric in its arguments.
    #[test]
    fn wilcoxon_antisymmetric(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..25),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assume!(a.iter().zip(&b).any(|(x, y)| x != y));
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        prop_assert_eq!(r1.w_plus, r2.w_minus);
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    /// The empirical CDF is monotone, 0 below the min, 1 at/above the max.
    #[test]
    fn cdf_monotone(sample in proptest::collection::vec(-100.0f64..100.0, 1..80)) {
        let cdf = EmpiricalCdf::new(&sample);
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.eval(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.eval(hi), 1.0);
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = lo + (hi - lo) * (i as f64 + 10.0) / 20.0;
            let f = cdf.eval(x);
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    /// Quantile inverts eval: `F(quantile(q)) ≥ q`.
    #[test]
    fn quantile_inverts(sample in proptest::collection::vec(-50.0f64..50.0, 1..60), q in 0.01f64..1.0) {
        let cdf = EmpiricalCdf::new(&sample);
        let v = cdf.quantile(q);
        prop_assert!(cdf.eval(v) >= q - 1e-12);
    }

    /// KL divergence is non-negative and zero on identical distributions.
    #[test]
    fn kl_nonnegative(weights in proptest::collection::vec(0.01f64..1.0, 2..10)) {
        let total: f64 = weights.iter().sum();
        let p: Vec<f64> = weights.iter().map(|w| w / total).collect();
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-10);
        // Against uniform:
        let u = vec![1.0 / p.len() as f64; p.len()];
        prop_assert!(kl_divergence(&p, &u) >= -1e-12);
    }

    /// Histograms are normalized for any in-range data.
    #[test]
    fn histogram_normalized(
        data in proptest::collection::vec(-1000.0f64..1000.0, 1..100),
        bins in 1usize..30,
    ) {
        let h = histogram(&data, -1000.0, 1000.0, bins);
        prop_assert_eq!(h.len(), bins);
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(h.iter().all(|&v| v >= 0.0));
    }

    /// Summary invariants: min ≤ p25 ≤ median ≤ p75 ≤ max, and the mean
    /// lies within [min, max].
    #[test]
    fn summary_ordering(sample in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&sample);
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Mean/median shift-equivariance: f(x + c) = f(x) + c.
    #[test]
    fn location_equivariance(
        sample in proptest::collection::vec(-100.0f64..100.0, 1..50),
        c in -50.0f64..50.0,
    ) {
        let shifted: Vec<f64> = sample.iter().map(|v| v + c).collect();
        prop_assert!((mean(&shifted) - mean(&sample) - c).abs() < 1e-7);
        prop_assert!((median(&shifted) - median(&sample) - c).abs() < 1e-7);
        prop_assert!((sample_variance(&shifted) - sample_variance(&sample)).abs() < 1e-5);
    }

    /// The bootstrap interval always brackets the sample mean, is ordered,
    /// and is a pure function of (data, resamples, confidence, seed).
    #[test]
    fn bootstrap_ci_contains_sample_mean(
        sample in proptest::collection::vec(-100.0f64..100.0, 2..40),
        seed in 0u64..1000,
    ) {
        let ci = bootstrap_mean_ci(&sample, 300, 0.95, seed);
        let m = mean(&sample);
        prop_assert!(ci.lo <= ci.hi);
        prop_assert!(ci.contains(m), "mean {m} outside [{}, {}]", ci.lo, ci.hi);
        prop_assert!((ci.mean - m).abs() < 1e-9);
        prop_assert_eq!(ci, bootstrap_mean_ci(&sample, 300, 0.95, seed));
    }

    /// Replicating the sample shrinks the CI of the mean: same empirical
    /// distribution, 9x the observations, ~3x narrower interval (asserted
    /// with a conservative factor to absorb resampling noise).
    #[test]
    fn bootstrap_width_shrinks_with_more_data(
        sample in proptest::collection::vec(-50.0f64..50.0, 5..20),
        seed in 0u64..1000,
    ) {
        prop_assume!(sample_variance(&sample) > 1e-6);
        let large: Vec<f64> = sample.iter().cycle().take(sample.len() * 9).cloned().collect();
        let ci_small = bootstrap_mean_ci(&sample, 600, 0.95, seed);
        let ci_large = bootstrap_mean_ci(&large, 600, 0.95, seed);
        prop_assert!(
            ci_large.width() < ci_small.width() * 0.75,
            "9x data: width {} vs {}",
            ci_large.width(),
            ci_small.width()
        );
    }

    /// Holm adjustment never decreases a p-value, never exceeds plain
    /// Bonferroni (`m·p`), caps at 1, and is monotone in rank order.
    #[test]
    fn holm_bounded_and_monotone(
        raw in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let adj = holm_adjust(&raw);
        let m = raw.len() as f64;
        for (&r, &a) in raw.iter().zip(&adj) {
            prop_assert!(a >= r, "adjusted {a} below raw {r}");
            prop_assert!(a <= (m * r).min(1.0) + 1e-12, "adjusted {a} above Bonferroni {}", m * r);
        }
        let mut pairs: Vec<(f64, f64)> = raw.iter().cloned().zip(adj).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        prop_assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12), "{pairs:?}");
    }
}

/// SplitMix64, locally: the null-distribution tests need a deterministic
/// stream independent of the crate's internals.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Under a null of identical distributions, the paired Wilcoxon p-value
/// must be approximately uniform on (0, 1]: calibrated tests are what the
/// eval harness's significance claims stand on. Deterministic (fixed
/// stream), so it is a one-time calibration check, not a flaky sampler.
#[test]
fn wilcoxon_p_value_is_uniformish_under_the_null() {
    let mut state = 0xC0FF_EE00_DEAD_BEEFu64;
    let trials = 400;
    let n = 18;
    let mut p_values = Vec::with_capacity(trials);
    for _ in 0..trials {
        let a: Vec<f64> = (0..n).map(|_| unit_f64(&mut state)).collect();
        let b: Vec<f64> = (0..n).map(|_| unit_f64(&mut state)).collect();
        p_values.push(wilcoxon_signed_rank(&a, &b).p_value);
    }
    let mean_p = mean(&p_values);
    assert!((0.42..=0.58).contains(&mean_p), "null mean p {mean_p}");
    for threshold in [0.1, 0.25, 0.5] {
        let frac = p_values.iter().filter(|&&p| p <= threshold).count() as f64 / trials as f64;
        assert!(
            (frac - threshold).abs() < 0.08,
            "P(p <= {threshold}) = {frac}, expected ~{threshold}"
        );
    }
    // And the family-wise gate: ~20 of the 400 raw null p-values fall
    // under 0.05, but Holm controls the *family-wise* error at 5%, so it
    // lets essentially none through. (This fixed stream happens to contain
    // one extreme draw — within the 5% FWER budget, hence <= 1, not 0.)
    let adj = holm_adjust(&p_values);
    let raw_hits = p_values.iter().filter(|&&p| p < 0.05).count();
    assert!(raw_hits >= 10, "null family suspiciously clean: {raw_hits} raw hits");
    let false_positives = adj.iter().filter(|&&p| p < 0.05).count();
    assert!(false_positives <= 1, "Holm let {false_positives} null tests through");
}
