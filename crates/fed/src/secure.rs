//! Pairwise-masked secure aggregation (Bonawitz-style, simplified).
//!
//! The paper's threat model (Sec. 3.4) assumes an *honest-but-curious*
//! server: it follows the protocol but may inspect individual client
//! updates. Additive pairwise masking hides them: every client pair
//! `(i, j)`, `i < j`, derives a shared mask from a common round seed;
//! client `i` **adds** it to its update, client `j` **subtracts** it. The
//! server only ever sees masked vectors, whose sum equals the sum of the
//! true updates because all masks cancel — so FedAvg-style aggregation is
//! exact while individual contributions stay hidden.
//!
//! This models the cryptographic core (mask cancellation); real
//! deployments add key agreement and dropout recovery, which are outside
//! the paper's scope.

use crate::error::FedError;
use pfrl_stats::seeding::derive_seed;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Magnitude of the pairwise masks. Large relative to parameter scale so a
/// masked update carries essentially no usable information.
const MASK_SCALE: f32 = 100.0;

/// Derives the shared mask stream for the *ordered* pair `(i, j)`, `i < j`.
fn pair_mask(i: usize, j: usize, round_seed: u64, len: usize) -> Vec<f32> {
    debug_assert!(i < j);
    let seed = derive_seed(round_seed, (i as u64) << 32 | j as u64);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-MASK_SCALE..MASK_SCALE)).collect()
}

/// Masks client `idx`'s update for one aggregation round of `n` clients.
///
/// # Panics
/// If `idx >= n`.
pub fn mask_update(params: &[f32], idx: usize, n: usize, round_seed: u64) -> Vec<f32> {
    assert!(idx < n, "client index {idx} out of {n}");
    let mut out = params.to_vec();
    for other in 0..n {
        if other == idx {
            continue;
        }
        let (lo, hi, sign) = if idx < other { (idx, other, 1.0) } else { (other, idx, -1.0) };
        let mask = pair_mask(lo, hi, round_seed, params.len());
        for (o, m) in out.iter_mut().zip(&mask) {
            *o += sign * m;
        }
    }
    out
}

/// Server-side aggregation of the masked updates into their *mean*. Exact
/// (up to float round-off) because the pairwise masks cancel — but only
/// when every one of the `expected` cohort members contributed, which is
/// why the count is checked instead of assumed. Refusals surface as
/// [`FedError`] variants (`CohortMismatch` / `EmptyCohort` /
/// `RaggedUpdate`).
pub fn aggregate_masked(masked: &[Vec<f32>], expected: usize) -> Result<Vec<f32>, FedError> {
    if masked.is_empty() {
        return Err(FedError::EmptyCohort);
    }
    if masked.len() != expected {
        return Err(FedError::CohortMismatch { expected, got: masked.len() });
    }
    let len = masked[0].len();
    let mut sum = vec![0.0f32; len];
    for (k, m) in masked.iter().enumerate() {
        if m.len() != len {
            return Err(FedError::RaggedUpdate(k));
        }
        for (s, v) in sum.iter_mut().zip(m) {
            *s += v;
        }
    }
    let inv = 1.0 / masked.len() as f32;
    sum.iter_mut().for_each(|s| *s *= inv);
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_nn::params::average_params;

    fn updates(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n).map(|k| (0..len).map(|i| ((k * len + i) as f32 * 0.13).sin()).collect()).collect()
    }

    #[test]
    fn masks_cancel_exactly_in_aggregate() {
        for n in [2usize, 3, 5, 10] {
            let ups = updates(n, 64);
            let plain = average_params(&ups);
            let masked: Vec<Vec<f32>> =
                ups.iter().enumerate().map(|(i, u)| mask_update(u, i, n, 42)).collect();
            let secure = aggregate_masked(&masked, n).expect("full cohort");
            for (a, b) in plain.iter().zip(&secure) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn individual_masked_update_reveals_nothing_useful() {
        let ups = updates(3, 128);
        let masked = mask_update(&ups[0], 0, 3, 7);
        // The masked vector is dominated by the masks: far from the true
        // update and with much larger magnitude.
        let dist: f32 = masked.iter().zip(&ups[0]).map(|(m, u)| (m - u).abs()).sum::<f32>() / 128.0;
        assert!(dist > 10.0, "mean |masked - true| = {dist}");
    }

    #[test]
    fn single_client_mask_is_identity() {
        let u = vec![1.0f32, -2.0, 3.0];
        assert_eq!(mask_update(&u, 0, 1, 9), u);
    }

    #[test]
    fn different_round_seed_different_masks() {
        let u = vec![0.0f32; 16];
        let a = mask_update(&u, 0, 4, 1);
        let b = mask_update(&u, 0, 4, 2);
        assert_ne!(a, b);
        // Deterministic per round.
        assert_eq!(a, mask_update(&u, 0, 4, 1));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_index_rejected() {
        let _ = mask_update(&[0.0], 5, 3, 0);
    }

    #[test]
    fn missing_cohort_member_is_an_error_not_garbage() {
        // Mask for a 3-client cohort, then "lose" one upload: the masks no
        // longer cancel, so the server must refuse rather than aggregate.
        let ups = updates(3, 16);
        let mut masked: Vec<Vec<f32>> =
            ups.iter().enumerate().map(|(i, u)| mask_update(u, i, 3, 11)).collect();
        masked.pop();
        assert_eq!(
            aggregate_masked(&masked, 3),
            Err(FedError::CohortMismatch { expected: 3, got: 2 })
        );
        assert_eq!(aggregate_masked(&[], 0), Err(FedError::EmptyCohort));
    }

    #[test]
    fn ragged_updates_rejected() {
        assert_eq!(
            aggregate_masked(&[vec![0.0, 1.0], vec![0.0]], 2),
            Err(FedError::RaggedUpdate(1))
        );
    }
}
