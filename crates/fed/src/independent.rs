//! Independent (non-federated) PPO training — the paper's "PPO" baseline.

use crate::client::{Client, FedAgent};
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use pfrl_rl::{PpoAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use rayon::prelude::*;

/// Runs `n` episodes on every client, in parallel when configured. Results
/// are identical to the sequential order because clients share no state.
pub(crate) fn run_all<A: FedAgent>(clients: &mut [Client<A>], n: usize, parallel: bool) {
    if parallel {
        clients.par_iter_mut().for_each(|c| c.run_episodes(n));
    } else {
        clients.iter_mut().for_each(|c| c.run_episodes(n));
    }
}

/// Extracts the reward curves from a set of clients.
pub(crate) fn curves_of<A: FedAgent>(clients: &[Client<A>]) -> TrainingCurves {
    TrainingCurves { per_client: clients.iter().map(|c| c.rewards.clone()).collect() }
}

/// Derives the deterministic agent seed for client `i`.
pub(crate) fn agent_seed(fed_cfg: &FedConfig, i: usize) -> u64 {
    SeedStream::new(fed_cfg.seed).child("agent").index(i as u64).seed()
}

/// Baseline runner: every client trains alone, no communication.
pub struct IndependentRunner {
    /// The isolated clients.
    pub clients: Vec<Client<PpoAgent>>,
    cfg: FedConfig,
    telemetry: Telemetry,
}

impl IndependentRunner {
    /// Builds one PPO client per setup.
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        fed_cfg.validate(setups.len());
        let clients = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = PpoAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect();
        Self { clients, cfg: fed_cfg, telemetry: Telemetry::noop() }
    }

    /// Routes runner, agent, and environment metrics to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
        self
    }

    /// Trains every client for the configured number of episodes and
    /// returns the reward curves.
    pub fn train(&mut self) -> TrainingCurves {
        // Chunked identically to the federated runners so wall-clock and
        // rng usage are comparable.
        let rounds = self.cfg.rounds();
        for _ in 0..rounds {
            let _round = self.telemetry.span("fed/round");
            let _local = self.telemetry.span("fed/round/local_train");
            run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
        }
        let leftover = self.cfg.episodes - rounds * self.cfg.comm_every;
        if leftover > 0 {
            let _local = self.telemetry.span("fed/round/local_train");
            run_all(&mut self.clients, leftover, self.cfg.parallel);
        }
        self.telemetry.counter("fed/rounds", rounds as u64);
        curves_of(&self.clients)
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;

    #[test]
    fn trains_all_clients_for_all_episodes() {
        let fed = FedConfig {
            episodes: 6,
            comm_every: 4,
            participation_k: 1,
            tasks_per_episode: Some(15),
            seed: 1,
            parallel: false,
        };
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = IndependentRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed);
        let curves = r.train();
        assert_eq!(curves.clients(), 2);
        assert!(curves.per_client.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn parallel_equals_sequential() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mk = |parallel: bool| {
            let fed = FedConfig {
                episodes: 4,
                comm_every: 2,
                participation_k: 1,
                tasks_per_episode: Some(12),
                seed: 7,
                parallel,
            };
            let mut r =
                IndependentRunner::new(setups.clone(), dims, env_cfg, PpoConfig::default(), fed);
            r.train()
        };
        assert_eq!(mk(true), mk(false));
    }
}
