//! Independent (non-federated) PPO training — the paper's "PPO" baseline.

use crate::checkpoint::{read_ppo_agent, write_ppo_agent, Fingerprint, Reader, Writer};
use crate::client::{Client, FedAgent};
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use crate::error::FedError;
use crate::fault::{FaultPlan, FaultState, QuarantinePolicy};
use pfrl_rl::{PpoAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use rayon::prelude::*;
use std::io;

/// Runs `n` episodes on every client, in parallel when configured. Results
/// are identical to the sequential order because clients share no state.
pub(crate) fn run_all<A: FedAgent>(clients: &mut [Client<A>], n: usize, parallel: bool) {
    if parallel {
        clients.par_iter_mut().for_each(|c| c.run_episodes(n));
    } else {
        clients.iter_mut().for_each(|c| c.run_episodes(n));
    }
}

/// Extracts the reward curves from a set of clients.
pub(crate) fn curves_of<A: FedAgent>(clients: &[Client<A>]) -> TrainingCurves {
    TrainingCurves { per_client: clients.iter().map(|c| c.rewards.clone()).collect() }
}

/// Derives the deterministic agent seed for client `i`.
pub(crate) fn agent_seed(fed_cfg: &FedConfig, i: usize) -> u64 {
    SeedStream::new(fed_cfg.seed).child("agent").index(i as u64).seed()
}

/// Baseline runner: every client trains alone, no communication.
pub struct IndependentRunner {
    /// The isolated clients.
    pub clients: Vec<Client<PpoAgent>>,
    cfg: FedConfig,
    rounds_done: usize,
    fault: FaultState,
    telemetry: Telemetry,
}

impl IndependentRunner {
    /// Builds one PPO client per setup.
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        fed_cfg.validate(setups.len());
        let clients = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = PpoAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect::<Vec<_>>();
        let n = clients.len();
        Self {
            clients,
            cfg: fed_cfg,
            rounds_done: 0,
            fault: FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), n),
            telemetry: Telemetry::noop(),
        }
    }

    /// Routes runner, agent, and environment metrics to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.fault.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Installs a deterministic fault schedule, for API parity with the
    /// federated runners. Without communication there is nothing to drop
    /// or quarantine, so the schedule only surfaces in telemetry (the
    /// `fed/dropouts` / `fed/stragglers` counters and the participation
    /// gauge) — training itself is untouched, which is exactly the
    /// baseline's role in chaos experiments.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let policy = *self.fault.policy();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Accepts an adversarial-upload schedule for API parity with the
    /// federated runners. Independent clients never upload, so a poisoning
    /// coalition has nothing to poison — the plan is stored (and validated)
    /// but training is untouched, which is exactly the baseline's role in
    /// robustness experiments.
    pub fn with_attack_plan(mut self, plan: crate::attack::AttackPlan) -> Self {
        self.fault.set_attack(plan);
        self
    }

    /// Accepts a robust-aggregation config for API parity with the
    /// federated runners. There is no server and no aggregation here, so
    /// the config is validated and dropped.
    pub fn with_robust_aggregator(self, robust: crate::robust::RobustConfig) -> Self {
        robust.validate();
        self
    }

    /// Installs a deterministic scenario (see [`pfrl_scenario`]): clients
    /// regenerate their episode traces from the drift plan and the plan's
    /// churn schedule drives cohort membership. For the isolated baseline
    /// the churn only surfaces in telemetry — there is no cohort to leave —
    /// but the drifting workloads hit training exactly as they do for the
    /// federated runners.
    pub fn with_scenario(mut self, binding: &pfrl_scenario::ScenarioBinding) -> Self {
        crate::client::install_scenario(
            &mut self.clients,
            &mut self.fault,
            binding,
            self.cfg.tasks_per_episode,
        );
        self
    }

    /// Switches every client to DAG workflow scheduling: client `i` draws
    /// its episodes from `pools[i]` (seeded windows of `per_episode`
    /// workflows; `None` replays the full pool each episode).
    pub fn with_workflows(
        mut self,
        pools: Vec<Vec<pfrl_workloads::workflow::Workflow>>,
        per_episode: Option<usize>,
    ) -> Self {
        assert_eq!(pools.len(), self.clients.len(), "one workflow pool per client");
        for (c, pool) in self.clients.iter_mut().zip(pools) {
            c.use_workflows(pool, per_episode);
        }
        self
    }

    /// Trains every client for the configured number of episodes and
    /// returns the reward curves. Resume-safe: starts from `rounds_done`.
    pub fn train(&mut self) -> TrainingCurves {
        // Chunked identically to the federated runners so wall-clock and
        // rng usage are comparable.
        while self.rounds_done < self.cfg.rounds() {
            self.train_round();
        }
        self.finish()
    }

    /// One round-sized chunk of local training.
    pub fn train_round(&mut self) {
        let _round = self.telemetry.span("fed/round");
        {
            let _local = self.telemetry.span("fed/round/local_train");
            run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
        }
        let round = self.rounds_done;
        let presences = self.fault.begin_round(round);
        let present = presences.iter().filter(|p| p.is_present()).count();
        for (i, p) in presences.iter().enumerate() {
            if !p.is_present() {
                self.fault.note_missed(i);
            }
        }
        self.fault.record_participation(present);
        self.telemetry.counter("fed/rounds", 1);
        self.rounds_done += 1;
    }

    /// Runs any leftover episodes and returns the curves. Idempotent: each
    /// client is trained up to the episode budget.
    pub fn finish(&mut self) -> TrainingCurves {
        let done = self.clients.first().map_or(0, |c| c.episodes_done());
        if self.cfg.episodes > done {
            let _local = self.telemetry.span("fed/round/local_train");
            run_all(&mut self.clients, self.cfg.episodes - done, self.cfg.parallel);
        }
        curves_of(&self.clients)
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }

    /// Round-sized training chunks completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Independent training never uploads, so no arena capacity is pooled.
    pub fn arena_bytes(&self) -> u64 {
        0
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            algo: 0,
            seed: self.cfg.seed,
            episodes: self.cfg.episodes,
            comm_every: self.cfg.comm_every,
            participation_k: self.cfg.participation_k,
            n_clients: self.clients.len(),
        }
    }

    /// Serializes the full training state (round cursor, per-client agent
    /// snapshots and reward histories).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.fingerprint().write(&mut w);
        w.usize(self.rounds_done);
        for c in &self.clients {
            w.vec_f64(&c.rewards);
            w.usize(c.episodes_done());
            write_ppo_agent(&mut w, &c.agent.snapshot());
        }
        w.finish()
    }

    /// Restores state captured by [`Self::checkpoint_bytes`]. Malformed,
    /// truncated, or mismatched checkpoints surface as
    /// [`FedError::Checkpoint`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError> {
        self.restore_impl(bytes).map_err(FedError::checkpoint)
    }

    fn restore_impl(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes)?;
        Fingerprint::check(&mut r, &self.fingerprint())?;
        let rounds_done = r.usize()?;
        let mut snaps = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            let rewards = r.vec_f64()?;
            let episodes_done = r.usize()?;
            snaps.push((rewards, episodes_done, read_ppo_agent(&mut r)?));
        }
        r.finish()?;
        self.rounds_done = rounds_done;
        for (c, (rewards, episodes_done, snap)) in self.clients.iter_mut().zip(snaps) {
            c.rewards = rewards;
            c.restore_episode_cursor(episodes_done);
            c.agent.restore(&snap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;

    #[test]
    fn trains_all_clients_for_all_episodes() {
        let fed = FedConfig {
            episodes: 6,
            comm_every: 4,
            participation_k: 1,
            tasks_per_episode: Some(15),
            seed: 1,
            parallel: false,
        };
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = IndependentRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed);
        let curves = r.train();
        assert_eq!(curves.clients(), 2);
        assert!(curves.per_client.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn parallel_equals_sequential() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mk = |parallel: bool| {
            let fed = FedConfig {
                episodes: 4,
                comm_every: 2,
                participation_k: 1,
                tasks_per_episode: Some(12),
                seed: 7,
                parallel,
            };
            let mut r =
                IndependentRunner::new(setups.clone(), dims, env_cfg, PpoConfig::default(), fed);
            r.train()
        };
        assert_eq!(mk(true), mk(false));
    }
}
