//! Per-client reward curves collected during federated training.

/// Training reward trajectories: `per_client[k][e]` is client `k`'s total
/// reward in its `e`-th training episode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingCurves {
    /// One reward series per client.
    pub per_client: Vec<Vec<f64>>,
}

impl TrainingCurves {
    /// Creates empty curves for `n` clients.
    pub fn new(n: usize) -> Self {
        Self { per_client: vec![Vec::new(); n] }
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.per_client.len()
    }

    /// The cross-client mean reward at each episode index (the quantity
    /// plotted in Figs. 8 and 15). Truncates to the shortest series.
    pub fn mean_curve(&self) -> Vec<f64> {
        if self.per_client.is_empty() {
            return Vec::new();
        }
        let len = self.per_client.iter().map(Vec::len).min().unwrap_or(0);
        (0..len)
            .map(|e| {
                self.per_client.iter().map(|c| c[e]).sum::<f64>() / self.per_client.len() as f64
            })
            .collect()
    }

    /// Moving average of the mean curve with the given window (plot
    /// smoothing, as convergence figures conventionally apply).
    pub fn smoothed_mean_curve(&self, window: usize) -> Vec<f64> {
        let mean = self.mean_curve();
        let w = window.max(1);
        (0..mean.len())
            .map(|i| {
                let lo = i.saturating_sub(w - 1);
                let slice = &mean[lo..=i];
                slice.iter().sum::<f64>() / slice.len() as f64
            })
            .collect()
    }

    /// Mean reward over the final `n` episodes (convergence level).
    pub fn final_mean(&self, n: usize) -> f64 {
        let mean = self.mean_curve();
        if mean.is_empty() {
            return 0.0;
        }
        let n = n.min(mean.len()).max(1);
        mean[mean.len() - n..].iter().sum::<f64>() / n as f64
    }

    /// First episode index at which the smoothed mean curve reaches
    /// `threshold` (a convergence-speed proxy); `None` if never.
    pub fn episodes_to_reach(&self, threshold: f64, window: usize) -> Option<usize> {
        self.smoothed_mean_curve(window).iter().position(|&v| v >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curves() -> TrainingCurves {
        TrainingCurves { per_client: vec![vec![0.0, 2.0, 4.0, 6.0], vec![2.0, 4.0, 6.0, 8.0]] }
    }

    #[test]
    fn mean_curve_averages_clients() {
        assert_eq!(curves().mean_curve(), vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn smoothing_window_two() {
        let s = curves().smoothed_mean_curve(2);
        assert_eq!(s, vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn final_mean_tail() {
        assert_eq!(curves().final_mean(2), 6.0);
        assert_eq!(curves().final_mean(100), 4.0); // clamps to full curve
    }

    #[test]
    fn episodes_to_reach_threshold() {
        assert_eq!(curves().episodes_to_reach(5.0, 1), Some(2));
        assert_eq!(curves().episodes_to_reach(100.0, 1), None);
    }

    #[test]
    fn ragged_series_truncate() {
        let c = TrainingCurves { per_client: vec![vec![1.0, 2.0, 3.0], vec![3.0]] };
        assert_eq!(c.mean_curve(), vec![2.0]);
    }

    #[test]
    fn empty_safe() {
        let c = TrainingCurves::new(0);
        assert!(c.mean_curve().is_empty());
        assert_eq!(c.final_mean(5), 0.0);
    }
}
