//! A federated client: an agent bound to its private environment and
//! workload pool.

use crate::config::{ClientSetup, FedConfig};
use crate::snapshot::PolicySnapshot;
use pfrl_nn::Mlp;
use pfrl_rl::{DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_sim::{CloudEnv, EnvConfig, EnvDims, EpisodeMetrics};
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use pfrl_workloads::TaskSpec;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Minimal agent interface the federation machinery needs.
pub trait FedAgent: Send {
    /// One training episode on a freshly reset env; returns total reward.
    fn train_episode(&mut self, env: &mut CloudEnv) -> f32;
    /// Greedy evaluation on a freshly reset env (`&mut self`: the agents
    /// route per-decision tensors through internal scratch buffers).
    fn evaluate_episode(&mut self, env: &mut CloudEnv) -> EpisodeMetrics;
    /// Routes the agent's metrics to `telemetry`. Default: ignore.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
    /// The policy (actor) network — the part of the agent a serving
    /// snapshot exports.
    fn actor(&self) -> &Mlp;
    /// The agent's PPO configuration (hidden width, masking flag).
    fn ppo_config(&self) -> &PpoConfig;
}

impl FedAgent for PpoAgent {
    fn train_episode(&mut self, env: &mut CloudEnv) -> f32 {
        self.train_one_episode(env)
    }
    fn evaluate_episode(&mut self, env: &mut CloudEnv) -> EpisodeMetrics {
        self.evaluate(env)
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        PpoAgent::set_telemetry(self, telemetry);
    }
    fn actor(&self) -> &Mlp {
        &self.actor
    }
    fn ppo_config(&self) -> &PpoConfig {
        self.config()
    }
}

impl FedAgent for DualCriticAgent {
    fn train_episode(&mut self, env: &mut CloudEnv) -> f32 {
        self.train_one_episode(env)
    }
    fn evaluate_episode(&mut self, env: &mut CloudEnv) -> EpisodeMetrics {
        self.evaluate(env)
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DualCriticAgent::set_telemetry(self, telemetry);
    }
    fn actor(&self) -> &Mlp {
        &self.actor
    }
    fn ppo_config(&self) -> &PpoConfig {
        self.config()
    }
}

/// One client of the federation.
pub struct Client<A: FedAgent> {
    /// The learning agent.
    pub agent: A,
    /// Display name.
    pub name: String,
    /// Episode rewards collected so far.
    pub rewards: Vec<f64>,
    env: CloudEnv,
    train_tasks: Vec<TaskSpec>,
    episode_seeds: SeedStream,
    episodes_done: usize,
    tasks_per_episode: Option<usize>,
}

impl<A: FedAgent> Client<A> {
    /// Builds a client from its setup, agent, and the shared dims/config.
    pub fn new(
        setup: ClientSetup,
        agent: A,
        dims: EnvDims,
        env_cfg: EnvConfig,
        fed_cfg: &FedConfig,
        client_index: usize,
    ) -> Self {
        assert!(!setup.train_tasks.is_empty(), "client {} has no tasks", setup.name);
        let env = CloudEnv::new(dims, setup.vms, env_cfg);
        let episode_seeds =
            SeedStream::new(fed_cfg.seed).child("episodes").index(client_index as u64);
        Self {
            agent,
            name: setup.name,
            rewards: Vec::new(),
            env,
            train_tasks: setup.train_tasks,
            episode_seeds,
            episodes_done: 0,
            tasks_per_episode: fed_cfg.tasks_per_episode,
        }
    }

    /// Routes this client's agent and environment metrics to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.agent.set_telemetry(telemetry.clone());
        self.env.set_telemetry(telemetry);
    }

    /// Number of training episodes completed.
    pub fn episodes_done(&self) -> usize {
        self.episodes_done
    }

    /// Restores the episode cursor from a checkpoint (the reward history is
    /// restored directly through the public `rewards` field). Episode seeds
    /// derive from `(config seed, client index, episode index)`, so setting
    /// the cursor is all that is needed to resume the episode stream.
    pub(crate) fn restore_episode_cursor(&mut self, episodes_done: usize) {
        self.episodes_done = episodes_done;
    }

    /// The client's private training pool.
    pub fn train_tasks(&self) -> &[TaskSpec] {
        &self.train_tasks
    }

    /// Draws this episode's task window: a seeded random contiguous slice
    /// of the pool, rebased to arrival 0 (or the full pool when
    /// `tasks_per_episode` is `None`).
    fn episode_tasks(&self, episode: usize) -> Vec<TaskSpec> {
        match self.tasks_per_episode {
            None => self.train_tasks.clone(),
            Some(n) if n >= self.train_tasks.len() => self.train_tasks.clone(),
            Some(n) => {
                let seed = self.episode_seeds.index(episode as u64).seed();
                let mut rng = SmallRng::seed_from_u64(seed);
                let start = rng.gen_range(0..=self.train_tasks.len() - n);
                let mut window = self.train_tasks[start..start + n].to_vec();
                let base = window.first().map_or(0, |t| t.arrival);
                for (i, t) in window.iter_mut().enumerate() {
                    t.id = i as u64;
                    t.arrival -= base;
                }
                window
            }
        }
    }

    /// Runs `n` training episodes, appending to `rewards`.
    pub fn run_episodes(&mut self, n: usize) {
        for _ in 0..n {
            let tasks = self.episode_tasks(self.episodes_done);
            self.env.reset(tasks);
            let r = self.agent.train_episode(&mut self.env);
            self.rewards.push(r as f64);
            self.episodes_done += 1;
        }
    }

    /// Greedy evaluation of the current policy on an arbitrary task set
    /// (e.g. a held-out or hybrid test set). Borrows the tasks: the one
    /// copy the environment needs (it re-sorts by arrival) happens here,
    /// not at every call site.
    pub fn evaluate_on(&mut self, tasks: &[TaskSpec]) -> EpisodeMetrics {
        self.env.reset(tasks.to_vec());
        self.agent.evaluate_episode(&mut self.env)
    }

    /// Exports the client's current greedy policy plus its environment
    /// definition as an inference-only snapshot. `algorithm` is the paper
    /// name of the runner that trained it.
    pub fn policy_snapshot(&self, algorithm: &str) -> PolicySnapshot {
        let cfg = self.agent.ppo_config();
        PolicySnapshot {
            algorithm: algorithm.to_string(),
            client: self.name.clone(),
            version: self.episodes_done as u64,
            dims: *self.env.dims(),
            env_cfg: *self.env.config(),
            vms: self.env.vm_specs().to_vec(),
            hidden: cfg.hidden,
            mask_actions: cfg.mask_invalid_actions,
            actor_params: self.agent.actor().flat_params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_rl::PpoConfig;
    use pfrl_sim::VmSpec;
    use pfrl_workloads::DatasetId;

    fn dims() -> EnvDims {
        EnvDims::new(2, 8, 64.0, 3)
    }

    fn setup() -> ClientSetup {
        ClientSetup {
            name: "test".into(),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DatasetId::K8s.model().sample(200, 1),
        }
    }

    fn client(fed_cfg: &FedConfig) -> Client<PpoAgent> {
        let d = dims();
        let agent = PpoAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 5);
        Client::new(setup(), agent, d, EnvConfig::default(), fed_cfg, 0)
    }

    #[test]
    fn runs_episodes_and_collects_rewards() {
        let cfg = FedConfig { tasks_per_episode: Some(20), ..Default::default() };
        let mut c = client(&cfg);
        c.run_episodes(3);
        assert_eq!(c.rewards.len(), 3);
        assert_eq!(c.episodes_done(), 3);
        assert!(c.rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn episode_windows_differ_but_are_deterministic() {
        let cfg = FedConfig { tasks_per_episode: Some(20), seed: 3, ..Default::default() };
        let c1 = client(&cfg);
        let w0 = c1.episode_tasks(0);
        let w1 = c1.episode_tasks(1);
        assert_eq!(w0.len(), 20);
        assert_eq!(w0[0].arrival, 0);
        assert_ne!(w0, w1);
        let c2 = client(&cfg);
        assert_eq!(c2.episode_tasks(0), w0);
    }

    #[test]
    fn full_pool_when_window_is_none_or_large() {
        let cfg = FedConfig { tasks_per_episode: None, ..Default::default() };
        let c = client(&cfg);
        assert_eq!(c.episode_tasks(0).len(), 200);
        let cfg = FedConfig { tasks_per_episode: Some(500), ..Default::default() };
        let c = client(&cfg);
        assert_eq!(c.episode_tasks(0).len(), 200);
    }

    #[test]
    fn evaluate_on_external_tasks() {
        let cfg = FedConfig::default();
        let mut c = client(&cfg);
        let m = c.evaluate_on(&DatasetId::Google.model().sample(30, 2));
        assert_eq!(m.tasks_placed + m.tasks_unplaced, 30);
    }

    #[test]
    #[should_panic(expected = "no tasks")]
    fn empty_task_pool_rejected() {
        let d = dims();
        let agent = PpoAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 5);
        let s = ClientSetup {
            name: "empty".into(),
            vms: vec![VmSpec::new(8, 64.0)],
            train_tasks: vec![],
        };
        let _ = Client::new(s, agent, d, EnvConfig::default(), &FedConfig::default(), 0);
    }
}
