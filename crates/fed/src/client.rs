//! A federated client: an agent bound to its private environment and
//! workload pool.

use crate::config::{ClientSetup, FedConfig};
use crate::snapshot::PolicySnapshot;
use pfrl_nn::Mlp;
use pfrl_rl::{DualCriticAgent, PpoAgent, PpoConfig};
use pfrl_scenario::{ClientTrace, ScenarioBinding};
use pfrl_sim::{CloudEnv, DagCloudEnv, EnvConfig, EnvDims, EpisodeMetrics, SchedulingEnv};
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use pfrl_workloads::workflow::{DagTask, Workflow};
use pfrl_workloads::TaskSpec;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Minimal agent interface the federation machinery needs.
pub trait FedAgent: Send {
    /// One training episode on a freshly reset env; returns total reward.
    fn train_episode(&mut self, env: &mut dyn SchedulingEnv) -> f32;
    /// Greedy evaluation on a freshly reset env (`&mut self`: the agents
    /// route per-decision tensors through internal scratch buffers).
    fn evaluate_episode(&mut self, env: &mut dyn SchedulingEnv) -> EpisodeMetrics;
    /// Routes the agent's metrics to `telemetry`. Default: ignore.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
    /// The policy (actor) network — the part of the agent a serving
    /// snapshot exports.
    fn actor(&self) -> &Mlp;
    /// The agent's PPO configuration (hidden width, masking flag).
    fn ppo_config(&self) -> &PpoConfig;
}

impl FedAgent for PpoAgent {
    fn train_episode(&mut self, env: &mut dyn SchedulingEnv) -> f32 {
        self.train_one_episode(env)
    }
    fn evaluate_episode(&mut self, env: &mut dyn SchedulingEnv) -> EpisodeMetrics {
        self.evaluate(env)
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        PpoAgent::set_telemetry(self, telemetry);
    }
    fn actor(&self) -> &Mlp {
        &self.actor
    }
    fn ppo_config(&self) -> &PpoConfig {
        self.config()
    }
}

impl FedAgent for DualCriticAgent {
    fn train_episode(&mut self, env: &mut dyn SchedulingEnv) -> f32 {
        self.train_one_episode(env)
    }
    fn evaluate_episode(&mut self, env: &mut dyn SchedulingEnv) -> EpisodeMetrics {
        self.evaluate(env)
    }
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        DualCriticAgent::set_telemetry(self, telemetry);
    }
    fn actor(&self) -> &Mlp {
        &self.actor
    }
    fn ppo_config(&self) -> &PpoConfig {
        self.config()
    }
}

/// The environment a client trains in: the paper's flat task stream, or the
/// dependency-aware workflow environment (both share dims, action space, and
/// reward shape, so the agents are oblivious to the choice).
enum ClientEnv {
    /// Flat per-task scheduling ([`CloudEnv`]).
    Flat(CloudEnv),
    /// DAG workflow scheduling ([`DagCloudEnv`]).
    Dag(DagCloudEnv),
}

impl ClientEnv {
    fn dims(&self) -> &EnvDims {
        match self {
            ClientEnv::Flat(e) => e.dims(),
            ClientEnv::Dag(e) => e.dims(),
        }
    }

    fn config(&self) -> &EnvConfig {
        match self {
            ClientEnv::Flat(e) => e.config(),
            ClientEnv::Dag(e) => e.config(),
        }
    }

    fn vm_specs(&self) -> &[pfrl_sim::VmSpec] {
        match self {
            ClientEnv::Flat(e) => e.vm_specs(),
            ClientEnv::Dag(e) => e.vm_specs(),
        }
    }
}

/// One client of the federation.
pub struct Client<A: FedAgent> {
    /// The learning agent.
    pub agent: A,
    /// Display name.
    pub name: String,
    /// Episode rewards collected so far.
    pub rewards: Vec<f64>,
    env: ClientEnv,
    train_tasks: Vec<TaskSpec>,
    episode_seeds: SeedStream,
    episodes_done: usize,
    tasks_per_episode: Option<usize>,
    /// Non-stationary trace override: when set, episode tasks come from the
    /// scenario plan (pure in `(client, episode)`) instead of the pool.
    scenario: Option<ClientTrace>,
    /// Workflow pool (DAG mode only).
    workflows: Vec<Workflow>,
    /// Per-episode workflow window (DAG mode; `None` = full pool).
    workflows_per_episode: Option<usize>,
}

impl<A: FedAgent> Client<A> {
    /// Builds a client from its setup, agent, and the shared dims/config.
    pub fn new(
        setup: ClientSetup,
        agent: A,
        dims: EnvDims,
        env_cfg: EnvConfig,
        fed_cfg: &FedConfig,
        client_index: usize,
    ) -> Self {
        assert!(!setup.train_tasks.is_empty(), "client {} has no tasks", setup.name);
        let env = CloudEnv::new(dims, setup.vms, env_cfg);
        let episode_seeds =
            SeedStream::new(fed_cfg.seed).child("episodes").index(client_index as u64);
        Self {
            agent,
            name: setup.name,
            rewards: Vec::new(),
            env: ClientEnv::Flat(env),
            train_tasks: setup.train_tasks,
            episode_seeds,
            episodes_done: 0,
            tasks_per_episode: fed_cfg.tasks_per_episode,
            scenario: None,
            workflows: Vec::new(),
            workflows_per_episode: None,
        }
    }

    /// Routes this client's agent and environment metrics to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.agent.set_telemetry(telemetry.clone());
        match &mut self.env {
            ClientEnv::Flat(env) => env.set_telemetry(telemetry),
            ClientEnv::Dag(env) => env.set_telemetry(telemetry),
        }
    }

    /// Installs a scenario trace: from now on episode tasks are sampled
    /// from the drifting plan instead of the static pool. The pool is kept
    /// (it still defines `train_tasks()` for evaluation bookkeeping).
    pub fn set_scenario_trace(&mut self, trace: ClientTrace) {
        self.scenario = Some(trace);
    }

    /// Switches the client to the dependency-aware workflow environment,
    /// training on windows of `pool` (same dims/config/VMs as the flat env
    /// it replaces). `per_episode` bounds the workflows per episode window
    /// (`None` = the whole pool every episode).
    pub fn use_workflows(&mut self, pool: Vec<Workflow>, per_episode: Option<usize>) {
        assert!(!pool.is_empty(), "client {} has no workflows", self.name);
        let dims = *self.env.dims();
        let cfg = *self.env.config();
        let vms = self.env.vm_specs().to_vec();
        self.env = ClientEnv::Dag(DagCloudEnv::new(dims, vms, cfg));
        self.workflows = pool;
        self.workflows_per_episode = per_episode;
    }

    /// Number of training episodes completed.
    pub fn episodes_done(&self) -> usize {
        self.episodes_done
    }

    /// Restores the episode cursor from a checkpoint (the reward history is
    /// restored directly through the public `rewards` field). Episode seeds
    /// derive from `(config seed, client index, episode index)`, so setting
    /// the cursor is all that is needed to resume the episode stream.
    pub(crate) fn restore_episode_cursor(&mut self, episodes_done: usize) {
        self.episodes_done = episodes_done;
    }

    /// The client's private training pool.
    pub fn train_tasks(&self) -> &[TaskSpec] {
        &self.train_tasks
    }

    /// Draws this episode's task window. A scenario trace, when installed,
    /// takes precedence (the drifting plan is the workload law); otherwise a
    /// seeded random contiguous slice of the pool, rebased to arrival 0 (or
    /// the full pool when `tasks_per_episode` is `None`).
    fn episode_tasks(&self, episode: usize) -> Vec<TaskSpec> {
        if let Some(trace) = &self.scenario {
            return trace.episode_tasks(episode);
        }
        match self.tasks_per_episode {
            None => self.train_tasks.clone(),
            Some(n) if n >= self.train_tasks.len() => self.train_tasks.clone(),
            Some(n) => {
                let seed = self.episode_seeds.index(episode as u64).seed();
                let mut rng = SmallRng::seed_from_u64(seed);
                let start = rng.gen_range(0..=self.train_tasks.len() - n);
                let mut window = self.train_tasks[start..start + n].to_vec();
                let base = window.first().map_or(0, |t| t.arrival);
                for (i, t) in window.iter_mut().enumerate() {
                    t.id = i as u64;
                    t.arrival -= base;
                }
                window
            }
        }
    }

    /// Draws this episode's workflow window (DAG mode): the same seeded
    /// windowing discipline as [`Self::episode_tasks`], with submission
    /// times rebased to 0.
    fn episode_workflows(&self, episode: usize) -> Vec<Workflow> {
        let n = match self.workflows_per_episode {
            None => return self.workflows.clone(),
            Some(n) if n >= self.workflows.len() => return self.workflows.clone(),
            Some(n) => n,
        };
        let seed = self.episode_seeds.index(episode as u64).seed();
        let mut rng = SmallRng::seed_from_u64(seed);
        let start = rng.gen_range(0..=self.workflows.len() - n);
        let mut window = self.workflows[start..start + n].to_vec();
        let base = window.first().map_or(0, |w| w.submit);
        for wf in &mut window {
            wf.submit -= base;
            for t in &mut wf.tasks {
                t.spec.arrival = wf.submit;
            }
        }
        window
    }

    /// Runs `n` training episodes, appending to `rewards`.
    pub fn run_episodes(&mut self, n: usize) {
        for _ in 0..n {
            let episode = self.episodes_done;
            let r = if matches!(self.env, ClientEnv::Dag(_)) {
                let workflows = self.episode_workflows(episode);
                let ClientEnv::Dag(env) = &mut self.env else { unreachable!() };
                env.reset(workflows);
                self.agent.train_episode(env)
            } else {
                let tasks = self.episode_tasks(episode);
                let ClientEnv::Flat(env) = &mut self.env else { unreachable!() };
                env.reset(tasks);
                self.agent.train_episode(env)
            };
            self.rewards.push(r as f64);
            self.episodes_done += 1;
        }
    }

    /// Greedy evaluation of the current policy on an arbitrary task set
    /// (e.g. a held-out or hybrid test set). Borrows the tasks: the one
    /// copy the environment needs (it re-sorts by arrival) happens here,
    /// not at every call site. In DAG mode the tasks run as singleton
    /// workflows, so flat- and workflow-trained policies share one
    /// evaluation pipeline.
    pub fn evaluate_on(&mut self, tasks: &[TaskSpec]) -> EpisodeMetrics {
        match &mut self.env {
            ClientEnv::Flat(env) => {
                env.reset(tasks.to_vec());
                self.agent.evaluate_episode(env)
            }
            ClientEnv::Dag(env) => {
                let workflows = tasks
                    .iter()
                    .map(|t| Workflow {
                        tasks: vec![DagTask { spec: TaskSpec { id: 0, ..*t }, deps: vec![] }],
                        submit: t.arrival,
                    })
                    .collect();
                env.reset(workflows);
                self.agent.evaluate_episode(env)
            }
        }
    }

    /// Exports the client's current greedy policy plus its environment
    /// definition as an inference-only snapshot. `algorithm` is the paper
    /// name of the runner that trained it.
    pub fn policy_snapshot(&self, algorithm: &str) -> PolicySnapshot {
        let cfg = self.agent.ppo_config();
        PolicySnapshot {
            algorithm: algorithm.to_string(),
            client: self.name.clone(),
            version: self.episodes_done as u64,
            dims: *self.env.dims(),
            env_cfg: *self.env.config(),
            vms: self.env.vm_specs().to_vec(),
            hidden: cfg.hidden,
            mask_actions: cfg.mask_invalid_actions,
            actor_params: self.agent.actor().flat_params(),
        }
    }
}

/// Installs a scenario binding on a runner's clients and fault state: drift
/// traces per client (only when the plan actually drifts — a churn-only plan
/// leaves training traces untouched) plus the churn schedule. Shared by all
/// four runners' `with_scenario` builders.
pub(crate) fn install_scenario<A: FedAgent>(
    clients: &mut [Client<A>],
    fault: &mut crate::fault::FaultState,
    binding: &ScenarioBinding,
    tasks_per_episode: Option<usize>,
) {
    assert_eq!(
        binding.datasets.len(),
        clients.len(),
        "scenario binding has {} datasets for {} clients",
        binding.datasets.len(),
        clients.len()
    );
    if binding.plan.has_drift() {
        for (i, c) in clients.iter_mut().enumerate() {
            let n = tasks_per_episode.unwrap_or(c.train_tasks().len());
            c.set_scenario_trace(binding.trace_for(i, n));
        }
    }
    fault.set_churn(binding.plan.churn().clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_rl::PpoConfig;
    use pfrl_sim::VmSpec;
    use pfrl_workloads::DatasetId;

    fn dims() -> EnvDims {
        EnvDims::new(2, 8, 64.0, 3)
    }

    fn setup() -> ClientSetup {
        ClientSetup {
            name: "test".into(),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            train_tasks: DatasetId::K8s.model().sample(200, 1),
        }
    }

    fn client(fed_cfg: &FedConfig) -> Client<PpoAgent> {
        let d = dims();
        let agent = PpoAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 5);
        Client::new(setup(), agent, d, EnvConfig::default(), fed_cfg, 0)
    }

    #[test]
    fn runs_episodes_and_collects_rewards() {
        let cfg = FedConfig { tasks_per_episode: Some(20), ..Default::default() };
        let mut c = client(&cfg);
        c.run_episodes(3);
        assert_eq!(c.rewards.len(), 3);
        assert_eq!(c.episodes_done(), 3);
        assert!(c.rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn episode_windows_differ_but_are_deterministic() {
        let cfg = FedConfig { tasks_per_episode: Some(20), seed: 3, ..Default::default() };
        let c1 = client(&cfg);
        let w0 = c1.episode_tasks(0);
        let w1 = c1.episode_tasks(1);
        assert_eq!(w0.len(), 20);
        assert_eq!(w0[0].arrival, 0);
        assert_ne!(w0, w1);
        let c2 = client(&cfg);
        assert_eq!(c2.episode_tasks(0), w0);
    }

    #[test]
    fn full_pool_when_window_is_none_or_large() {
        let cfg = FedConfig { tasks_per_episode: None, ..Default::default() };
        let c = client(&cfg);
        assert_eq!(c.episode_tasks(0).len(), 200);
        let cfg = FedConfig { tasks_per_episode: Some(500), ..Default::default() };
        let c = client(&cfg);
        assert_eq!(c.episode_tasks(0).len(), 200);
    }

    #[test]
    fn evaluate_on_external_tasks() {
        let cfg = FedConfig::default();
        let mut c = client(&cfg);
        let m = c.evaluate_on(&DatasetId::Google.model().sample(30, 2));
        assert_eq!(m.tasks_placed + m.tasks_unplaced, 30);
    }

    #[test]
    #[should_panic(expected = "no tasks")]
    fn empty_task_pool_rejected() {
        let d = dims();
        let agent = PpoAgent::new(d.state_dim(), d.action_dim(), PpoConfig::default(), 5);
        let s = ClientSetup {
            name: "empty".into(),
            vms: vec![VmSpec::new(8, 64.0)],
            train_tasks: vec![],
        };
        let _ = Client::new(s, agent, d, EnvConfig::default(), &FedConfig::default(), 0);
    }
}
