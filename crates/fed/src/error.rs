//! The single error surface of the federation layer.
//!
//! Secure aggregation, the round-checkpoint codec, and the policy-snapshot
//! codec each detect their own failure modes, but callers see one public
//! [`FedError`] — no crate-private error shapes leak through the API, and
//! adding a new failure source is a new variant here rather than a new
//! error type downstream code must learn to match on.

use crate::fault::RejectReason;
use std::io;

/// Any failure surfaced by the federation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// Secure aggregation: the number of masked updates differs from the
    /// cohort size the masks were built for. Aggregating anyway would leave
    /// masks uncancelled and silently corrupt the mean — with partial
    /// participation the cohort must be fixed *before* masking, so a
    /// mismatch here is a protocol violation, not a recoverable dropout.
    CohortMismatch {
        /// Cohort size the masks were generated for.
        expected: usize,
        /// Masked updates actually received.
        got: usize,
    },
    /// Secure aggregation: an empty batch of masked updates.
    EmptyCohort,
    /// Secure aggregation: masked update at this index has a different
    /// length than the first one.
    RaggedUpdate(usize),
    /// A round checkpoint that is malformed, truncated, or fingerprinted
    /// for a different federation.
    Checkpoint(String),
    /// A policy snapshot that is malformed, truncated, or internally
    /// inconsistent (e.g. parameter count disagreeing with the declared
    /// network shape).
    Snapshot(String),
    /// The quarantine gate or a robust screen rejected a client's upload,
    /// with the structured reason (not just a bare count). Recoverable —
    /// aggregation continues without the contribution — and surfaced via
    /// [`crate::FaultState::last_rejection`] for inspection.
    Quarantine {
        /// Aggregation round of the rejection.
        round: usize,
        /// The client whose upload was rejected.
        client: usize,
        /// Why the server threw the upload out.
        reason: RejectReason,
    },
    /// An underlying I/O failure (reading or writing checkpoint files).
    Io(io::ErrorKind, String),
}

impl FedError {
    /// Wraps a checkpoint-codec decode failure.
    pub(crate) fn checkpoint(e: io::Error) -> Self {
        FedError::Checkpoint(e.to_string())
    }

    /// Wraps a snapshot-codec decode failure.
    pub(crate) fn snapshot(e: io::Error) -> Self {
        FedError::Snapshot(e.to_string())
    }
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::CohortMismatch { expected, got } => {
                write!(f, "expected {expected} masked updates, got {got}")
            }
            FedError::EmptyCohort => write!(f, "no masked updates"),
            FedError::RaggedUpdate(k) => write!(f, "masked update {k} has wrong length"),
            FedError::Checkpoint(msg) => write!(f, "invalid checkpoint: {msg}"),
            FedError::Snapshot(msg) => write!(f, "invalid policy snapshot: {msg}"),
            FedError::Quarantine { round, client, reason } => {
                write!(f, "round {round}: client {client} upload rejected — {reason}")
            }
            FedError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<io::Error> for FedError {
    fn from(e: io::Error) -> Self {
        FedError::Io(e.kind(), e.to_string())
    }
}

impl From<FedError> for io::Error {
    fn from(e: FedError) -> Self {
        let kind = match &e {
            FedError::Io(kind, _) => *kind,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(FedError, &str)> = vec![
            (FedError::CohortMismatch { expected: 3, got: 2 }, "expected 3"),
            (FedError::EmptyCohort, "no masked updates"),
            (FedError::RaggedUpdate(1), "update 1"),
            (FedError::Checkpoint("bad magic".into()), "invalid checkpoint"),
            (FedError::Snapshot("truncated".into()), "invalid policy snapshot"),
            (
                FedError::Quarantine {
                    round: 4,
                    client: 2,
                    reason: RejectReason::NormBand {
                        stream: 0,
                        norm: 90.0,
                        median: 9.0,
                        band: 4.0,
                    },
                },
                "client 2 upload rejected",
            ),
            (FedError::Io(io::ErrorKind::NotFound, "gone".into()), "i/o error"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_conversions_roundtrip_kind() {
        let fed: FedError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert_eq!(fed, FedError::Io(io::ErrorKind::NotFound, "missing".into()));
        let io_err: io::Error = FedError::Checkpoint("x".into()).into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        let io_err: io::Error = FedError::Io(io::ErrorKind::PermissionDenied, "p".into()).into();
        assert_eq!(io_err.kind(), io::ErrorKind::PermissionDenied);
    }
}
