//! Client-similarity weight generators compared in Sec. 3.3
//! (Figs. 11–13): multi-head attention vs KL divergence vs cosine
//! similarity.
//!
//! All three return a `K × K` row-stochastic matrix whose row `k` holds
//! client `k`'s aggregation weights. The paper's observation — reproduced
//! by `fig11_13_weight_heatmaps` — is that only the attention weights
//! concentrate on genuinely similar clients.

use pfrl_nn::{
    multi_head_attention_weights, multi_head_attention_weights_into, AttentionScratch, Mlp,
    MultiHeadConfig,
};
use pfrl_tensor::{ops, Matrix};

/// Multi-head attention weights over flat client parameter vectors
/// (Eq. 18 applied to models-as-tokens; the PFRL-DM aggregator).
pub fn attention_weights(client_params: &[Vec<f32>], cfg: &MultiHeadConfig) -> Matrix {
    multi_head_attention_weights(client_params, cfg)
}

/// [`attention_weights`] into a reusable workspace — the steady-state form
/// the PFRL-DM aggregator calls every round; bitwise identical to the
/// allocating form at any `parallel` setting.
pub fn attention_weights_into(
    client_params: &[Vec<f32>],
    cfg: &MultiHeadConfig,
    parallel: bool,
    ws: &mut AttentionScratch,
    out: &mut Matrix,
) {
    multi_head_attention_weights_into(client_params, cfg, parallel, ws, out);
}

/// Mean Shannon entropy (nats) of the rows of a row-stochastic weight
/// matrix. 0 when every client attends to exactly one peer, `ln K` for
/// uniform attention — the telemetry probe for how personalized the
/// aggregation actually is.
pub fn mean_row_entropy(w: &Matrix) -> f64 {
    if w.rows() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for r in 0..w.rows() {
        total += -w
            .row(r)
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| (p as f64) * (p as f64).ln())
            .sum::<f64>();
    }
    total / w.rows() as f64
}

/// KL-divergence-based weights: each critic is evaluated on a shared probe
/// state batch, its outputs are softmax-normalized into a distribution over
/// the probe states, and client `i` weights client `j` by
/// `softmax_j(−KL(p_i ‖ p_j))`.
///
/// # Panics
/// If `critics` is empty or a critic's input dim mismatches `probe_states`.
pub fn kl_weights(critics: &[Mlp], probe_states: &Matrix) -> Matrix {
    assert!(!critics.is_empty(), "kl_weights: no critics");
    let k = critics.len();
    let dists: Vec<Vec<f64>> = critics
        .iter()
        .map(|c| {
            let out = c.forward(probe_states);
            let mut vals: Vec<f32> = (0..out.rows()).map(|i| out[(i, 0)]).collect();
            ops::softmax_inplace(&mut vals);
            vals.into_iter().map(|v| v as f64).collect()
        })
        .collect();
    let mut w = Matrix::zeros(k, k);
    for i in 0..k {
        let row: Vec<f32> =
            (0..k).map(|j| -(pfrl_stats::kl_divergence(&dists[i], &dists[j]) as f32)).collect();
        let mut row = row;
        ops::softmax_inplace(&mut row);
        w.row_mut(i).copy_from_slice(&row);
    }
    w
}

/// Cosine-similarity weights over flat parameter vectors:
/// `softmax_j(cos(θ_i, θ_j))`.
///
/// # Panics
/// If `client_params` is empty or lengths disagree.
pub fn cosine_weights(client_params: &[Vec<f32>]) -> Matrix {
    assert!(!client_params.is_empty(), "cosine_weights: no clients");
    let k = client_params.len();
    let mut w = Matrix::zeros(k, k);
    for i in 0..k {
        let mut row: Vec<f32> =
            (0..k).map(|j| ops::cosine_similarity(&client_params[i], &client_params[j])).collect();
        ops::softmax_inplace(&mut row);
        w.row_mut(i).copy_from_slice(&row);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_nn::Activation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn row_stochastic(m: &Matrix) -> bool {
        (0..m.rows()).all(|r| {
            let s: f32 = m.row(r).iter().sum();
            (s - 1.0).abs() < 1e-4 && m.row(r).iter().all(|&v| v >= 0.0)
        })
    }

    fn mk_critic(seed: u64) -> Mlp {
        Mlp::new(&[4, 8, 1], Activation::Tanh, &mut SmallRng::seed_from_u64(seed))
    }

    fn probe() -> Matrix {
        Matrix::from_vec(16, 4, (0..64).map(|i| ((i as f32) * 0.37).sin()).collect())
    }

    #[test]
    fn all_generators_row_stochastic() {
        let critics: Vec<Mlp> = (0..4).map(mk_critic).collect();
        let params: Vec<Vec<f32>> = critics.iter().map(Mlp::flat_params).collect();
        assert!(row_stochastic(&attention_weights(&params, &Default::default())));
        assert!(row_stochastic(&kl_weights(&critics, &probe())));
        assert!(row_stochastic(&cosine_weights(&params)));
    }

    #[test]
    fn kl_identical_critics_get_equal_max_weight() {
        let c0 = mk_critic(1);
        let critics = vec![c0.clone(), c0.clone(), mk_critic(2)];
        let w = kl_weights(&critics, &probe());
        // Clients 0 and 1 are identical: their mutual weight equals their
        // self weight and is at least the weight on the different client.
        assert!((w[(0, 1)] - w[(0, 0)]).abs() < 1e-5);
        assert!(w[(0, 1)] >= w[(0, 2)] - 1e-6);
    }

    #[test]
    fn cosine_self_weight_is_row_max() {
        let params: Vec<Vec<f32>> = (0..3).map(|s| mk_critic(s).flat_params()).collect();
        let w = cosine_weights(&params);
        for i in 0..3 {
            for j in 0..3 {
                assert!(w[(i, i)] >= w[(i, j)] - 1e-6);
            }
        }
    }

    /// The Sec. 3.3 contrast: cosine over full parameter vectors barely
    /// separates a true twin from strangers (softmax of values all ≈ 1),
    /// while the standardized multi-head attention does.
    #[test]
    fn attention_separates_twins_better_than_cosine() {
        let base = mk_critic(7).flat_params();
        let mut twin = base.clone();
        for v in twin.iter_mut() {
            *v += 0.002; // same-environment near-duplicate
        }
        let strangers: Vec<Vec<f32>> = (20..22).map(|s| mk_critic(s).flat_params()).collect();
        let all = vec![base, twin, strangers[0].clone(), strangers[1].clone()];

        let att = attention_weights(&all, &Default::default());
        let cos = cosine_weights(&all);
        let contrast = |w: &Matrix| w[(0, 1)] - w[(0, 2)].max(w[(0, 3)]);
        assert!(
            contrast(&att) > contrast(&cos),
            "attention contrast {} vs cosine contrast {}",
            contrast(&att),
            contrast(&cos)
        );
        assert!(contrast(&att) > 0.05, "attention should clearly favor the twin");
    }

    #[test]
    fn row_entropy_bounds() {
        // Uniform rows → ln K; one-hot rows → 0.
        let k = 4;
        let uniform = Matrix::from_vec(k, k, vec![1.0 / k as f32; k * k]);
        assert!((mean_row_entropy(&uniform) - (k as f64).ln()).abs() < 1e-6);
        let mut onehot = Matrix::zeros(k, k);
        for i in 0..k {
            onehot[(i, i)] = 1.0;
        }
        assert_eq!(mean_row_entropy(&onehot), 0.0);
        assert_eq!(mean_row_entropy(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "no critics")]
    fn kl_empty_rejected() {
        let _ = kl_weights(&[], &probe());
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn cosine_empty_rejected() {
        let _ = cosine_weights(&[]);
    }
}
