//! Byzantine-robust aggregation: pluggable reductions and cohort-relative
//! outlier screens, shared by every federation runner.
//!
//! The absolute quarantine gate ([`crate::fault`]) rejects syntactically
//! broken uploads; this module defends against *well-formed* poison (see
//! [`crate::attack`]). Two composable layers:
//!
//! 1. **Screens** ([`RobustConfig::norm_band`], [`RobustConfig::cosine`])
//!    run over the gated cohort before any aggregation: a relative-norm
//!    band around the cohort median catches stealth scaling, and a cosine
//!    screen against the cohort's coordinate-median direction catches
//!    sign-flips. Screened clients feed the *existing* rejection/eviction
//!    machinery ([`FaultState::note_screened`]), so a persistent adversary
//!    is eventually evicted just like a persistently corrupt link.
//! 2. **Robust reduction** ([`RobustAggregator`]) replaces the plain mean
//!    wherever a runner averages uploads: FedAvg's shared model, MFPO's
//!    momentum average, and PFRL-DM's global model ψ_G (Eq. 22) over
//!    personalized critics. [`RobustAggregator::Mean`] delegates to
//!    [`pfrl_nn::average_params_into`] — bit-identical to a runner without
//!    this layer, so the default costs nothing.
//!
//! Everything is allocation-free at steady state through
//! [`RobustScratch`], and deterministic at any thread count (screens and
//! reductions are single-threaded order-stable passes over the cohort).

use crate::fault::{AcceptedUpload, FaultState, RejectReason};
use crate::runner::UploadArena;
use pfrl_nn::params::{
    average_params_into, coordinate_median_into, l2_norm, norm_clipped_mean_into, trimmed_mean_into,
};
use pfrl_telemetry::Telemetry;

/// How a runner reduces a cohort of uploads to one vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RobustAggregator {
    /// Plain arithmetic mean — the paper's Eq. 22, bit-identical to the
    /// pre-robustness code path. Breakdown point 0: one adversary moves
    /// the aggregate arbitrarily.
    #[default]
    Mean,
    /// Coordinate-wise median (breakdown point 1/2).
    CoordinateMedian,
    /// Coordinate-wise β-trimmed mean (robust to coalitions smaller than
    /// the trim count, smoother than the median on honest cohorts).
    TrimmedMean {
        /// Per-side trim fraction, `[0, 0.5)`.
        beta: f32,
    },
    /// Mean of uploads norm-clipped to τ (bounds any client's pull to
    /// τ/K; counts activations on `fed/clipped`).
    NormClip {
        /// The clip threshold.
        tau: f32,
    },
}

impl RobustAggregator {
    /// Short stable label for telemetry, reports, and manifests.
    pub fn name(&self) -> &'static str {
        match self {
            RobustAggregator::Mean => "mean",
            RobustAggregator::CoordinateMedian => "coordinate_median",
            RobustAggregator::TrimmedMean { .. } => "trimmed_mean",
            RobustAggregator::NormClip { .. } => "norm_clip",
        }
    }
}

/// The full server-side defence configuration: a reduction plus optional
/// cohort-relative screens. Construction-time config (like `FaultPlan`):
/// never checkpointed, installed on a runner via
/// `with_robust_aggregator`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// The reduction replacing the plain mean.
    pub aggregator: RobustAggregator,
    /// Relative-norm band factor: uploads whose per-stream L2 norm falls
    /// outside `[median / band, median · band]` of the cohort median are
    /// screened out. `None` disables.
    pub norm_band: Option<f32>,
    /// Minimum cosine similarity between each upload and the cohort's
    /// coordinate-median reference direction. Sign-flipped uploads score
    /// near −1; `Some(0.0)` rejects anything pointing against the cohort.
    /// `None` disables.
    pub cosine: Option<f32>,
    /// Screens only engage at this cohort size or larger — below it a
    /// "median" is too few honest samples to trust (default 4).
    pub min_cohort: usize,
}

impl Default for RobustConfig {
    /// The do-nothing default: plain mean, no screens — bit-identical to
    /// a runner without the robustness layer.
    fn default() -> Self {
        Self { aggregator: RobustAggregator::Mean, norm_band: None, cosine: None, min_cohort: 4 }
    }
}

impl RobustConfig {
    /// The recommended defended profile: 20%-trimmed mean, a 10× norm
    /// band, and a zero-cosine screen. Survives any coalition below 20%
    /// of the cohort while staying inside honest-run CIs (the
    /// no-resilience-tax gate in `eval::robustness` holds it to that).
    pub fn defended() -> Self {
        Self {
            aggregator: RobustAggregator::TrimmedMean { beta: 0.2 },
            norm_band: Some(10.0),
            cosine: Some(0.0),
            min_cohort: 4,
        }
    }

    /// A plain reduction with no screens.
    pub fn with_aggregator(aggregator: RobustAggregator) -> Self {
        Self { aggregator, ..Self::default() }
    }

    /// Panics on degenerate thresholds.
    pub fn validate(&self) {
        match self.aggregator {
            RobustAggregator::TrimmedMean { beta } => {
                assert!((0.0..0.5).contains(&beta), "trim fraction {beta} outside [0, 0.5)")
            }
            RobustAggregator::NormClip { tau } => {
                assert!(tau.is_finite() && tau > 0.0, "clip threshold {tau} invalid")
            }
            _ => {}
        }
        if let Some(band) = self.norm_band {
            assert!(band.is_finite() && band > 1.0, "norm band factor {band} must exceed 1");
        }
        if let Some(threshold) = self.cosine {
            assert!((-1.0..=1.0).contains(&threshold), "cosine threshold {threshold} invalid");
        }
    }

    /// Whether any cohort-relative screen is enabled.
    pub fn is_screening(&self) -> bool {
        self.norm_band.is_some() || self.cosine.is_some()
    }
}

/// Reusable buffers for screens and robust reductions — the price of a
/// zero-allocation aggregation round (audited in `tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub struct RobustScratch {
    /// K-length sort/column buffer for median and trimmed-mean kernels.
    col: Vec<f32>,
    /// Per-client norm-clip scales.
    scales: Vec<f32>,
    /// Per-upload, per-stream L2 norms.
    norms: Vec<f32>,
    /// Coordinate-median reference direction for the cosine screen.
    reference: Vec<f32>,
    /// Borrowed stream views for the reference median (pointers only).
    views: Vec<Vec<f32>>,
    /// Per-upload screen verdicts for the current round.
    verdicts: Vec<Option<RejectReason>>,
}

/// Reduces `params` with the configured aggregator into `out`.
/// [`RobustAggregator::Mean`] routes through [`average_params_into`] and
/// is bitwise identical to the undefended path; `NormClip` reports its
/// activation count on the `fed/clipped` counter.
pub(crate) fn reduce_into(
    aggregator: RobustAggregator,
    params: &[Vec<f32>],
    scratch: &mut RobustScratch,
    out: &mut Vec<f32>,
    telemetry: &Telemetry,
) {
    match aggregator {
        RobustAggregator::Mean => average_params_into(params, out),
        RobustAggregator::CoordinateMedian => coordinate_median_into(params, &mut scratch.col, out),
        RobustAggregator::TrimmedMean { beta } => {
            trimmed_mean_into(params, beta, &mut scratch.col, out)
        }
        RobustAggregator::NormClip { tau } => {
            let clipped = norm_clipped_mean_into(params, tau, &mut scratch.scales, out);
            if clipped > 0 {
                telemetry.counter("fed/clipped", clipped as u64);
            }
        }
    }
}

/// Runs the cohort-relative screens over the gated uploads, removing
/// outliers in place (their pooled buffers return to the arena) and
/// feeding rejections into the quarantine/eviction machinery. Order-
/// preserving and single-threaded, so the surviving cohort — and hence
/// every downstream float op — is identical at any thread count.
pub(crate) fn screen_uploads(
    cfg: &RobustConfig,
    round: usize,
    fault: &mut FaultState,
    accepted: &mut Vec<AcceptedUpload>,
    arena: &mut UploadArena,
    scratch: &mut RobustScratch,
) {
    if !cfg.is_screening() || accepted.len() < cfg.min_cohort {
        return;
    }
    let n_streams = accepted[0].streams.len();
    scratch.verdicts.clear();
    scratch.verdicts.resize(accepted.len(), None);
    for s in 0..n_streams {
        if let Some(band) = cfg.norm_band {
            scratch.norms.clear();
            scratch.norms.extend(accepted.iter().map(|u| l2_norm(&u.streams[s])));
            scratch.col.clear();
            scratch.col.extend_from_slice(&scratch.norms);
            scratch.col.sort_unstable_by(f32::total_cmp);
            let k = scratch.col.len();
            let median = if k % 2 == 1 {
                scratch.col[k / 2]
            } else {
                0.5 * (scratch.col[k / 2 - 1] + scratch.col[k / 2])
            };
            if median > 0.0 {
                for (i, &norm) in scratch.norms.iter().enumerate() {
                    if scratch.verdicts[i].is_none()
                        && (norm > median * band || norm * band < median)
                    {
                        scratch.verdicts[i] =
                            Some(RejectReason::NormBand { stream: s, norm, median, band });
                    }
                }
            }
        }
        if let Some(threshold) = cfg.cosine {
            // Robust reference: the coordinate median of the stream across
            // the cohort (the mean would let the outliers drag their own
            // yardstick). Borrow the streams into pooled view buffers.
            scratch.views.truncate(accepted.len());
            while scratch.views.len() < accepted.len() {
                scratch.views.push(Vec::new());
            }
            for (v, u) in scratch.views.iter_mut().zip(accepted.iter()) {
                v.clone_from(&u.streams[s]);
            }
            coordinate_median_into(&scratch.views, &mut scratch.col, &mut scratch.reference);
            let ref_norm = l2_norm(&scratch.reference);
            if ref_norm > 0.0 {
                for (i, u) in accepted.iter().enumerate() {
                    if scratch.verdicts[i].is_some() {
                        continue;
                    }
                    let v = &u.streams[s];
                    let norm = l2_norm(v);
                    if norm == 0.0 {
                        continue;
                    }
                    let dot: f32 = v.iter().zip(&scratch.reference).map(|(a, b)| a * b).sum();
                    let cosine = dot / (norm * ref_norm);
                    if cosine < threshold {
                        scratch.verdicts[i] =
                            Some(RejectReason::CosineOutlier { stream: s, cosine, threshold });
                    }
                }
            }
        }
    }
    let any = scratch.verdicts.iter().any(Option::is_some);
    if !any {
        return;
    }
    for (i, verdict) in scratch.verdicts.iter().enumerate() {
        if let Some(reason) = verdict {
            fault.note_screened(round, &accepted[i], *reason);
            arena.release(std::mem::take(&mut accepted[i].streams));
        }
    }
    accepted.retain(|u| !u.streams.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, Presence, QuarantinePolicy};

    fn gated(
        fault: &mut FaultState,
        round: usize,
        uploads: Vec<Vec<Vec<f32>>>,
    ) -> Vec<AcceptedUpload> {
        let fresh = Presence::Present { corrupt: None, stale_age: 0 };
        uploads
            .into_iter()
            .enumerate()
            .filter_map(|(i, u)| fault.gate_upload(round, i, u, fresh))
            .collect()
    }

    #[test]
    fn default_config_is_inert_mean() {
        let cfg = RobustConfig::default();
        cfg.validate();
        assert!(!cfg.is_screening());
        assert_eq!(cfg.aggregator, RobustAggregator::Mean);
    }

    #[test]
    fn mean_reduction_matches_average_params_bitwise() {
        let p = vec![vec![1.0f32, -2.5, 3.0], vec![0.5, 4.0, -1.0], vec![2.0, 0.0, 0.25]];
        let mut scratch = RobustScratch::default();
        let mut out = Vec::new();
        reduce_into(RobustAggregator::Mean, &p, &mut scratch, &mut out, &Telemetry::noop());
        let mut expect = Vec::new();
        average_params_into(&p, &mut expect);
        assert_eq!(out, expect);
    }

    #[test]
    fn norm_band_screen_rejects_the_blown_upload_and_tracks_rejections() {
        let mut fault = FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), 5);
        let honest = [vec![1.0f32, 0.5], vec![0.9, 0.6], vec![1.1, 0.4], vec![1.0, 0.55]];
        let mut uploads: Vec<Vec<Vec<f32>>> = honest.iter().map(|v| vec![v.clone()]).collect();
        uploads.push(vec![vec![500.0f32, 250.0]]); // stealth-scaled way out of band
        let mut accepted = gated(&mut fault, 0, uploads);
        assert_eq!(accepted.len(), 5);
        let cfg = RobustConfig { norm_band: Some(10.0), ..RobustConfig::default() };
        let mut arena = UploadArena::default();
        let mut scratch = RobustScratch::default();
        screen_uploads(&cfg, 0, &mut fault, &mut accepted, &mut arena, &mut scratch);
        assert_eq!(accepted.len(), 4, "outlier must be screened");
        assert!(accepted.iter().all(|u| u.client != 4));
        assert_eq!(fault.client_states()[4].rejections, 1);
        let err = fault.last_rejection().expect("rejection recorded");
        assert!(err.to_string().contains("norm-band"), "{err}");
    }

    #[test]
    fn cosine_screen_rejects_sign_flipped_uploads() {
        let mut fault = FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), 5);
        let base = [0.8f32, -0.3, 0.5, 0.1];
        let mut uploads: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|i| vec![base.iter().map(|v| v * (1.0 + 0.01 * i as f32)).collect()])
            .collect();
        uploads.push(vec![base.iter().map(|v| -v).collect()]); // sign-flip
        let mut accepted = gated(&mut fault, 0, uploads);
        let cfg = RobustConfig { cosine: Some(0.0), ..RobustConfig::default() };
        let mut arena = UploadArena::default();
        let mut scratch = RobustScratch::default();
        screen_uploads(&cfg, 0, &mut fault, &mut accepted, &mut arena, &mut scratch);
        assert_eq!(accepted.len(), 4, "sign-flipped upload must be screened");
        assert!(accepted.iter().all(|u| u.client != 4));
        assert!(matches!(
            fault.last_rejection(),
            Some(crate::FedError::Quarantine {
                reason: RejectReason::CosineOutlier { .. },
                client: 4,
                ..
            })
        ));
    }

    #[test]
    fn tiny_cohorts_are_never_screened() {
        let mut fault = FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), 2);
        let uploads = vec![vec![vec![1.0f32]], vec![vec![-1000.0f32]]];
        let mut accepted = gated(&mut fault, 0, uploads);
        let cfg = RobustConfig::defended();
        let mut arena = UploadArena::default();
        let mut scratch = RobustScratch::default();
        screen_uploads(&cfg, 0, &mut fault, &mut accepted, &mut arena, &mut scratch);
        assert_eq!(accepted.len(), 2, "below min_cohort the screen must stand down");
    }

    #[test]
    fn repeated_screen_rejections_evict() {
        let policy = QuarantinePolicy { evict_after: 2, ..QuarantinePolicy::default() };
        let mut fault = FaultState::new(FaultPlan::none(), policy, 5);
        let cfg = RobustConfig { norm_band: Some(4.0), ..RobustConfig::default() };
        let mut arena = UploadArena::default();
        let mut scratch = RobustScratch::default();
        for round in 0..2 {
            let mut uploads: Vec<Vec<Vec<f32>>> = (0..4).map(|_| vec![vec![1.0f32, 1.0]]).collect();
            uploads.push(vec![vec![900.0f32, 900.0]]);
            let mut accepted = gated(&mut fault, round, uploads);
            screen_uploads(&cfg, round, &mut fault, &mut accepted, &mut arena, &mut scratch);
        }
        assert!(fault.is_evicted(4), "two consecutive screens must evict");
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn invalid_band_rejected() {
        RobustConfig { norm_band: Some(1.0), ..RobustConfig::default() }.validate();
    }
}
