//! Momentum-based federated RL in the spirit of MFPO (Yue et al.,
//! INFOCOM'24), the paper's state-of-the-art comparison point.
//!
//! Substitution note (see DESIGN.md): the original MFPO couples momentum
//! into both the client-side policy updates and the server-side
//! aggregation to cut interaction/communication cost. The property the
//! PFRL-DM paper exercises is that *"its momentum mechanism preserves the
//! influence of past solutions"* under heterogeneity — which is carried by
//! the server momentum on aggregated parameter deltas implemented here
//! (FedAvg-M form): `v ← β·v + (x̄ − x_g)`, `x_g ← x_g + v`, broadcast
//! `x_g`, applied to both actor and critic.

use crate::attack::AttackPlan;
use crate::checkpoint::{
    read_client_fault, read_ppo_agent, write_client_fault, write_ppo_agent, Fingerprint, Reader,
    Writer,
};
use crate::client::Client;
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use crate::error::FedError;
use crate::fault::{AcceptedUpload, FaultPlan, FaultState, Presence, QuarantinePolicy};
use crate::fedavg::param_bytes;
use crate::independent::{agent_seed, curves_of, run_all};
use crate::robust::{reduce_into, screen_uploads, RobustConfig, RobustScratch};
use crate::runner::UploadArena;
use pfrl_rl::{PpoAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_telemetry::Telemetry;
use std::io;

/// One server-momentum update: `v ← β·v + (x̄ − x_g)`, `x_g ← x_g + v`.
fn momentum_step(server: &mut [f32], velocity: &mut [f32], avg: &[f32], beta: f32) {
    for ((s, v), a) in server.iter_mut().zip(velocity.iter_mut()).zip(avg) {
        let delta = a - *s;
        *v = beta * *v + delta;
        *s += *v;
    }
}

/// Reusable per-round aggregation buffers (see `fedavg::AggWorkspace`).
#[derive(Default)]
struct AggWorkspace {
    presences: Vec<Presence>,
    accepted: Vec<AcceptedUpload>,
    actors: Vec<Vec<f32>>,
    critics: Vec<Vec<f32>>,
    actor_avg: Vec<f32>,
    critic_avg: Vec<f32>,
    robust: RobustScratch,
}

/// Momentum-FRL runner.
pub struct MfpoRunner {
    /// Participating clients.
    pub clients: Vec<Client<PpoAgent>>,
    cfg: FedConfig,
    beta: f32,
    server_actor: Vec<f32>,
    server_critic: Vec<f32>,
    vel_actor: Vec<f32>,
    vel_critic: Vec<f32>,
    rounds_done: usize,
    fault: FaultState,
    robust: RobustConfig,
    telemetry: Telemetry,
    arena: UploadArena,
    agg: AggWorkspace,
}

impl MfpoRunner {
    /// Default server momentum coefficient (as in FedAvgM practice and the
    /// MFPO paper's momentum range).
    pub const DEFAULT_BETA: f32 = 0.9;

    /// Builds the federation; the server model starts from client 0's
    /// initialization and is broadcast so all clients share a start point.
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        Self::with_beta(setups, dims, env_cfg, ppo_cfg, fed_cfg, Self::DEFAULT_BETA)
    }

    /// Builds the federation with an explicit momentum coefficient.
    pub fn with_beta(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
        beta: f32,
    ) -> Self {
        fed_cfg.validate(setups.len());
        assert!((0.0..1.0).contains(&beta), "beta out of [0,1)");
        let mut clients: Vec<Client<PpoAgent>> = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = PpoAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect();
        let server_actor = clients[0].agent.actor_params();
        let server_critic = clients[0].agent.critic_params();
        for c in &mut clients {
            c.agent.set_actor_params(&server_actor);
            c.agent.set_critic_params(&server_critic);
        }
        let vel_actor = vec![0.0; server_actor.len()];
        let vel_critic = vec![0.0; server_critic.len()];
        let n = clients.len();
        Self {
            clients,
            cfg: fed_cfg,
            beta,
            server_actor,
            server_critic,
            vel_actor,
            vel_critic,
            rounds_done: 0,
            fault: FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), n),
            robust: RobustConfig::default(),
            telemetry: Telemetry::noop(),
            arena: UploadArena::new(),
            agg: AggWorkspace::default(),
        }
    }

    /// Routes runner, agent, and environment metrics to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.fault.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let policy = *self.fault.policy();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Overrides the update-quarantine policy.
    pub fn with_quarantine_policy(mut self, policy: QuarantinePolicy) -> Self {
        let plan = *self.fault.plan();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Installs a deterministic Byzantine attack schedule (see
    /// [`crate::attack`]).
    pub fn with_attack_plan(mut self, plan: AttackPlan) -> Self {
        self.fault.set_attack(plan);
        self
    }

    /// Installs the Byzantine-robust aggregation config (see
    /// [`crate::robust`]): screens run over the gated uploads, and the
    /// configured reduction replaces the plain client average that feeds
    /// the server momentum. The default is bit-identical to a runner
    /// without the layer.
    pub fn with_robust_aggregator(mut self, robust: RobustConfig) -> Self {
        robust.validate();
        self.robust = robust;
        self
    }

    /// Installs a deterministic scenario (workload drift + churn, see
    /// [`pfrl_scenario`]): drifting clients regenerate their episode traces
    /// from the plan, and the plan's churn schedule drives which clients are
    /// in the cohort each round.
    pub fn with_scenario(mut self, binding: &pfrl_scenario::ScenarioBinding) -> Self {
        crate::client::install_scenario(
            &mut self.clients,
            &mut self.fault,
            binding,
            self.cfg.tasks_per_episode,
        );
        self
    }

    /// Switches every client to DAG workflow scheduling: client `i` draws
    /// its episodes from `pools[i]` (seeded windows of `per_episode`
    /// workflows; `None` replays the full pool each episode).
    pub fn with_workflows(
        mut self,
        pools: Vec<Vec<pfrl_workloads::workflow::Workflow>>,
        per_episode: Option<usize>,
    ) -> Self {
        assert_eq!(pools.len(), self.clients.len(), "one workflow pool per client");
        for (c, pool) in self.clients.iter_mut().zip(pools) {
            c.use_workflows(pool, per_episode);
        }
        self
    }

    /// Full training run. Resume-safe: starts from `rounds_done`.
    pub fn train(&mut self) -> TrainingCurves {
        while self.rounds_done < self.cfg.rounds() {
            self.train_round();
        }
        self.finish()
    }

    /// One communication round: local episodes then a momentum aggregation.
    pub fn train_round(&mut self) {
        let t = self.telemetry.clone();
        let round_span = t.span("fed/round");
        {
            let _local = round_span.child("local_train");
            run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
        }
        self.aggregate();
    }

    /// Runs any leftover episodes past the last aggregation and returns the
    /// curves. Idempotent: each client is trained up to the episode budget.
    pub fn finish(&mut self) -> TrainingCurves {
        let done = self.clients.first().map_or(0, |c| c.episodes_done());
        if self.cfg.episodes > done {
            run_all(&mut self.clients, self.cfg.episodes - done, self.cfg.parallel);
        }
        curves_of(&self.clients)
    }

    /// One momentum aggregation + broadcast over the round's surviving
    /// subset: the client average feeding the server momentum is taken over
    /// gated uploads only, and the refreshed server model is broadcast to
    /// connected clients only.
    pub fn aggregate(&mut self) {
        let round = self.rounds_done;
        let n = self.clients.len();
        self.fault.begin_round_into(round, &mut self.agg.presences);

        let upload = self.telemetry.span("fed/round/upload");
        self.agg.accepted.clear();
        for i in 0..n {
            let p = self.agg.presences[i];
            if !p.is_present() {
                self.fault.note_missed(i);
                continue;
            }
            // Uploads flow through the pooled arena (see `UploadArena`).
            let mut streams = self.arena.acquire(2);
            self.clients[i].agent.actor_params_into(&mut streams[0]);
            self.clients[i].agent.critic_params_into(&mut streams[1]);
            if let Some(up) = self.fault.gate_upload(round, i, streams, p) {
                self.agg.accepted.push(up);
            }
        }
        drop(upload);
        // Cohort-relative robust screens (no-ops on the default config).
        screen_uploads(
            &self.robust,
            round,
            &mut self.fault,
            &mut self.agg.accepted,
            &mut self.arena,
            &mut self.agg.robust,
        );
        self.fault.record_participation(self.agg.accepted.len());
        if self.agg.accepted.is_empty() {
            // No surviving uploads: the server model (and its momentum)
            // stays put, nothing is broadcast.
            self.telemetry.counter("fed/rounds", 1);
            self.rounds_done += 1;
            return;
        }
        let agg_start = std::time::Instant::now();
        let k = self.agg.accepted.len();
        self.agg.actors.truncate(k);
        self.agg.critics.truncate(k);
        while self.agg.actors.len() < k {
            self.agg.actors.push(Vec::new());
        }
        while self.agg.critics.len() < k {
            self.agg.critics.push(Vec::new());
        }
        for (dst, u) in self.agg.actors.iter_mut().zip(&self.agg.accepted) {
            dst.clone_from(&u.streams[0]);
        }
        for (dst, u) in self.agg.critics.iter_mut().zip(&self.agg.accepted) {
            dst.clone_from(&u.streams[1]);
        }
        // The upload buffers are copied out; park them for the next round.
        for up in self.agg.accepted.drain(..) {
            self.arena.release(up.streams);
        }
        // Like FedAvg, MFPO ships both networks client → server.
        self.telemetry.counter(
            "fed/bytes_up",
            param_bytes(&self.agg.actors) + param_bytes(&self.agg.critics),
        );

        let loss_before = self.mean_critic_loss();

        {
            let _agg = self.telemetry.span("fed/round/aggregate");
            // The robust reduction replaces the plain client average that
            // feeds the momentum (Mean delegates bit-identically).
            reduce_into(
                self.robust.aggregator,
                &self.agg.actors,
                &mut self.agg.robust,
                &mut self.agg.actor_avg,
                &self.telemetry,
            );
            reduce_into(
                self.robust.aggregator,
                &self.agg.critics,
                &mut self.agg.robust,
                &mut self.agg.critic_avg,
                &self.telemetry,
            );
            momentum_step(
                &mut self.server_actor,
                &mut self.vel_actor,
                &self.agg.actor_avg,
                self.beta,
            );
            momentum_step(
                &mut self.server_critic,
                &mut self.vel_critic,
                &self.agg.critic_avg,
                self.beta,
            );
        }

        let mut receivers = 0u64;
        {
            let _broadcast = self.telemetry.span("fed/round/broadcast");
            for i in 0..n {
                if !self.agg.presences[i].is_present() {
                    continue;
                }
                self.clients[i].agent.set_actor_params(&self.server_actor);
                self.clients[i].agent.set_critic_params(&self.server_critic);
                self.fault.note_refreshed(i);
                receivers += 1;
            }
        }
        self.telemetry.counter(
            "fed/bytes_down",
            receivers * 4 * (self.server_actor.len() + self.server_critic.len()) as u64,
        );
        self.telemetry.observe("fed/agg_wall_us", agg_start.elapsed().as_secs_f64() * 1e6);
        self.telemetry.gauge("fed/arena_bytes", self.arena.pooled_bytes() as f64);

        if let (Some(b), Some(a)) = (loss_before, self.mean_critic_loss()) {
            self.telemetry.observe("fed/critic_loss_before_agg", b);
            self.telemetry.observe("fed/critic_loss_after_agg", a);
        }
        self.telemetry.counter("fed/rounds", 1);
        self.rounds_done += 1;
    }

    /// Mean critic loss across clients on their own last episodes.
    fn mean_critic_loss(&self) -> Option<f64> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for c in &self.clients {
            if let Some(l) = c.agent.critic_loss_on_last_episode() {
                sum += l as f64;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }

    /// Communication rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Bytes of `f32` capacity pooled in the upload arena between rounds.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.pooled_bytes()
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            algo: 2,
            seed: self.cfg.seed,
            episodes: self.cfg.episodes,
            comm_every: self.cfg.comm_every,
            participation_k: self.cfg.participation_k,
            n_clients: self.clients.len(),
        }
    }

    /// Serializes the full training state — server model and momentum
    /// velocities, round cursor, per-client agent snapshots and reward
    /// histories, fault bookkeeping. Restore into a runner built with the
    /// same configuration (including `beta`).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.fingerprint().write(&mut w);
        w.f32(self.beta);
        w.usize(self.rounds_done);
        w.vec_f32(&self.server_actor);
        w.vec_f32(&self.server_critic);
        w.vec_f32(&self.vel_actor);
        w.vec_f32(&self.vel_critic);
        for c in &self.clients {
            w.vec_f64(&c.rewards);
            w.usize(c.episodes_done());
            write_ppo_agent(&mut w, &c.agent.snapshot());
        }
        for f in self.fault.client_states() {
            write_client_fault(&mut w, f);
        }
        w.finish()
    }

    /// Restores state captured by [`Self::checkpoint_bytes`].
    ///
    /// Malformed, truncated, or mismatched checkpoints surface as
    /// [`FedError::Checkpoint`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError> {
        self.restore_impl(bytes).map_err(FedError::checkpoint)
    }

    fn restore_impl(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes)?;
        Fingerprint::check(&mut r, &self.fingerprint())?;
        let beta = r.f32()?;
        if beta != self.beta {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint beta {beta} vs runner beta {}", self.beta),
            ));
        }
        let rounds_done = r.usize()?;
        let server_actor = r.vec_f32()?;
        let server_critic = r.vec_f32()?;
        let vel_actor = r.vec_f32()?;
        let vel_critic = r.vec_f32()?;
        let mut snaps = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            let rewards = r.vec_f64()?;
            let episodes_done = r.usize()?;
            snaps.push((rewards, episodes_done, read_ppo_agent(&mut r)?));
        }
        let mut faults = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            faults.push(read_client_fault(&mut r)?);
        }
        r.finish()?;
        self.rounds_done = rounds_done;
        self.server_actor = server_actor;
        self.server_critic = server_critic;
        self.vel_actor = vel_actor;
        self.vel_critic = vel_critic;
        for (c, (rewards, episodes_done, snap)) in self.clients.iter_mut().zip(snaps) {
            c.rewards = rewards;
            c.restore_episode_cursor(episodes_done);
            c.agent.restore(&snap);
        }
        self.fault.restore_client_states(faults);
        Ok(())
    }

    /// Current L2 norm of the actor velocity (diagnostics: how much history
    /// the momentum is carrying).
    pub fn actor_velocity_norm(&self) -> f32 {
        self.vel_actor.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;
    use pfrl_nn::params::average_params;

    fn fed() -> FedConfig {
        FedConfig {
            episodes: 4,
            comm_every: 2,
            participation_k: 1,
            tasks_per_episode: Some(12),
            seed: 11,
            parallel: false,
        }
    }

    #[test]
    fn clients_start_synchronized() {
        let (setups, dims, env_cfg) = small_setups(3);
        let r = MfpoRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed());
        let p0 = r.clients[0].agent.actor_params();
        for c in &r.clients[1..] {
            assert_eq!(c.agent.actor_params(), p0);
        }
    }

    #[test]
    fn zero_beta_first_round_equals_fedavg() {
        // With β=0 and zero initial velocity, the first aggregation lands
        // exactly on the client average.
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = MfpoRunner::with_beta(setups, dims, env_cfg, PpoConfig::default(), fed(), 0.0);
        run_all(&mut r.clients, 1, false);
        let actors: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        let avg = average_params(&actors);
        r.aggregate();
        let got = r.clients[0].agent.actor_params();
        for (g, a) in got.iter().zip(&avg) {
            assert!((g - a).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = MfpoRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed());
        assert_eq!(r.actor_velocity_norm(), 0.0);
        run_all(&mut r.clients, 1, false);
        r.aggregate();
        let v1 = r.actor_velocity_norm();
        assert!(v1 > 0.0);
    }

    #[test]
    fn momentum_overshoots_average_on_second_round() {
        // After two aggregations in the same direction, the server model
        // moves beyond the plain average — the "preserves the influence of
        // past solutions" behavior the paper attributes to MFPO.
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = MfpoRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed());
        run_all(&mut r.clients, 1, false);
        r.aggregate();
        run_all(&mut r.clients, 1, false);
        let actors: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        let avg = average_params(&actors);
        r.aggregate();
        let server = r.clients[0].agent.actor_params();
        let diff: f32 = server.iter().zip(&avg).map(|(s, a)| (s - a).abs()).sum::<f32>();
        assert!(diff > 1e-6, "server should deviate from the plain average");
    }

    #[test]
    fn full_training_produces_curves() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = MfpoRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed());
        let curves = r.train();
        assert_eq!(curves.clients(), 2);
        assert!(curves.per_client.iter().all(|c| c.len() == 4));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let (setups, dims, env_cfg) = small_setups(2);
        let _ = MfpoRunner::with_beta(setups, dims, env_cfg, PpoConfig::default(), fed(), 1.0);
    }
}
