//! Binary round-checkpoint codec shared by the federation runners.
//!
//! Every runner exposes `checkpoint_bytes()` / `restore_checkpoint()` built
//! on the little-endian [`Writer`]/[`Reader`] pair here, so a killed run can
//! resume mid-schedule and finish with *bit-identical* curves. The format
//! mirrors `pfrl-nn`'s model checkpoint (magic + version prefix, strict
//! length checks, `io::Error` on any malformed input) but additionally
//! fingerprints the federation configuration: restoring into a runner built
//! with a different seed, schedule, or client count is an error, not a
//! silent divergence.

use crate::fault::ClientFault;
use pfrl_nn::AdamState;
use pfrl_rl::{BufferSnapshot, DualAgentSnapshot, PpoAgentSnapshot};
use pfrl_tensor::Matrix;
use std::collections::VecDeque;
use std::io;

/// Magic + format version prefix of every federation checkpoint.
pub(crate) const MAGIC: &[u8; 13] = b"PFRL-FEDCKPT\x01";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Little-endian byte sink for checkpoint encoding.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::with_magic(MAGIC)
    }

    /// A writer for a different container format sharing the same
    /// primitive encoding (e.g. the policy-snapshot codec).
    pub fn with_magic(magic: &[u8]) -> Self {
        Self { buf: magic.to_vec() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn vec_f32(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    pub fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    pub fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    pub fn vec_bool(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &x in v {
            self.bool(x);
        }
    }

    pub fn rng_state(&mut self, s: [u64; 4]) {
        for w in s {
            self.u64(w);
        }
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Strict little-endian reader for checkpoint decoding.
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Opens a checkpoint, verifying the magic/version prefix.
    pub fn new(data: &'a [u8]) -> io::Result<Self> {
        Self::with_magic(data, MAGIC)
    }

    /// Opens a container with a caller-supplied magic/version prefix.
    pub fn with_magic(data: &'a [u8], magic: &[u8]) -> io::Result<Self> {
        if data.len() < magic.len() || &data[..magic.len()] != magic {
            return Err(bad("bad magic (wrong container format or version)"));
        }
        Ok(Self { data, pos: magic.len() })
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated checkpoint"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(bad(format!("invalid bool byte {v}"))),
        }
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> io::Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| bad(format!("length {v} exceeds usize")))
    }

    /// A length prefix additionally bounded by the bytes remaining, so a
    /// corrupted length fails fast instead of attempting a huge allocation.
    fn len_at_most(&mut self, elem_bytes: usize) -> io::Result<usize> {
        let n = self.usize()?;
        if n.saturating_mul(elem_bytes.max(1)) > self.data.len() - self.pos {
            return Err(bad(format!("declared length {n} exceeds checkpoint size")));
        }
        Ok(n)
    }

    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn vec_f32(&mut self) -> io::Result<Vec<f32>> {
        let n = self.len_at_most(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    pub fn vec_f64(&mut self) -> io::Result<Vec<f64>> {
        let n = self.len_at_most(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    pub fn vec_usize(&mut self) -> io::Result<Vec<usize>> {
        let n = self.len_at_most(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    pub fn vec_bool(&mut self) -> io::Result<Vec<bool>> {
        let n = self.len_at_most(1)?;
        (0..n).map(|_| self.bool()).collect()
    }

    pub fn rng_state(&mut self) -> io::Result<[u64; 4]> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }

    pub fn str(&mut self) -> io::Result<String> {
        let n = self.len_at_most(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not valid UTF-8"))
    }

    /// Asserts the whole checkpoint was consumed.
    pub fn finish(self) -> io::Result<()> {
        if self.pos != self.data.len() {
            return Err(bad(format!("{} trailing bytes", self.data.len() - self.pos)));
        }
        Ok(())
    }
}

/// The construction-time facts a checkpoint must agree with before any
/// state is loaded into a runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    /// Runner discriminant (each runner module picks a distinct tag).
    pub algo: u8,
    /// Federation seed.
    pub seed: u64,
    /// Total episode budget.
    pub episodes: usize,
    /// Episodes between aggregations.
    pub comm_every: usize,
    /// Participants per round.
    pub participation_k: usize,
    /// Number of clients at checkpoint time.
    pub n_clients: usize,
}

impl Fingerprint {
    pub fn write(&self, w: &mut Writer) {
        w.u8(self.algo);
        w.u64(self.seed);
        w.usize(self.episodes);
        w.usize(self.comm_every);
        w.usize(self.participation_k);
        w.usize(self.n_clients);
    }

    /// Reads a fingerprint and verifies it matches `expected`.
    pub fn check(r: &mut Reader<'_>, expected: &Fingerprint) -> io::Result<()> {
        let got = Fingerprint {
            algo: r.u8()?,
            seed: r.u64()?,
            episodes: r.usize()?,
            comm_every: r.usize()?,
            participation_k: r.usize()?,
            n_clients: r.usize()?,
        };
        if &got != expected {
            return Err(bad(format!(
                "checkpoint is for a different federation: {got:?} vs {expected:?}"
            )));
        }
        Ok(())
    }
}

pub(crate) fn write_adam(w: &mut Writer, s: &AdamState) {
    w.vec_f32(&s.m);
    w.vec_f32(&s.v);
    w.u64(s.t);
}

pub(crate) fn read_adam(r: &mut Reader<'_>) -> io::Result<AdamState> {
    Ok(AdamState { m: r.vec_f32()?, v: r.vec_f32()?, t: r.u64()? })
}

pub(crate) fn write_buffer(w: &mut Writer, b: &BufferSnapshot) {
    w.usize(b.state_dim);
    w.usize(b.mask_dim);
    w.vec_f32(&b.states);
    w.vec_usize(&b.actions);
    w.vec_f32(&b.rewards);
    w.vec_f32(&b.old_log_probs);
    w.vec_bool(&b.terminals);
    w.vec_bool(&b.masks);
}

pub(crate) fn read_buffer(r: &mut Reader<'_>) -> io::Result<BufferSnapshot> {
    Ok(BufferSnapshot {
        state_dim: r.usize()?,
        mask_dim: r.usize()?,
        states: r.vec_f32()?,
        actions: r.vec_usize()?,
        rewards: r.vec_f32()?,
        old_log_probs: r.vec_f32()?,
        terminals: r.vec_bool()?,
        masks: r.vec_bool()?,
    })
}

pub(crate) fn write_ppo_agent(w: &mut Writer, s: &PpoAgentSnapshot) {
    w.vec_f32(&s.actor);
    w.vec_f32(&s.critic);
    write_adam(w, &s.actor_opt);
    write_adam(w, &s.critic_opt);
    w.rng_state(s.rng);
    write_buffer(w, &s.buffer);
    w.usize(s.episodes_buffered);
}

pub(crate) fn read_ppo_agent(r: &mut Reader<'_>) -> io::Result<PpoAgentSnapshot> {
    Ok(PpoAgentSnapshot {
        actor: r.vec_f32()?,
        critic: r.vec_f32()?,
        actor_opt: read_adam(r)?,
        critic_opt: read_adam(r)?,
        rng: r.rng_state()?,
        buffer: read_buffer(r)?,
        episodes_buffered: r.usize()?,
    })
}

pub(crate) fn write_dual_agent(w: &mut Writer, s: &DualAgentSnapshot) {
    w.vec_f32(&s.actor);
    w.vec_f32(&s.local_critic);
    w.vec_f32(&s.public_critic);
    write_adam(w, &s.actor_opt);
    write_adam(w, &s.local_opt);
    write_adam(w, &s.public_opt);
    w.f32(s.alpha);
    match s.fixed_alpha {
        Some(a) => {
            w.bool(true);
            w.f32(a);
        }
        None => w.bool(false),
    }
    w.rng_state(s.rng);
    write_buffer(w, &s.buffer);
    w.usize(s.episodes_buffered);
}

pub(crate) fn read_dual_agent(r: &mut Reader<'_>) -> io::Result<DualAgentSnapshot> {
    Ok(DualAgentSnapshot {
        actor: r.vec_f32()?,
        local_critic: r.vec_f32()?,
        public_critic: r.vec_f32()?,
        actor_opt: read_adam(r)?,
        local_opt: read_adam(r)?,
        public_opt: read_adam(r)?,
        alpha: r.f32()?,
        fixed_alpha: if r.bool()? { Some(r.f32()?) } else { None },
        rng: r.rng_state()?,
        buffer: read_buffer(r)?,
        episodes_buffered: r.usize()?,
    })
}

fn write_streams(w: &mut Writer, streams: &[Vec<f32>]) {
    w.usize(streams.len());
    for s in streams {
        w.vec_f32(s);
    }
}

fn read_streams(r: &mut Reader<'_>) -> io::Result<Vec<Vec<f32>>> {
    let n = r.usize()?;
    (0..n).map(|_| r.vec_f32()).collect()
}

pub(crate) fn write_client_fault(w: &mut Writer, c: &ClientFault) {
    w.usize(c.straggle_left);
    w.usize(c.missed_rounds);
    w.u32(c.rejections);
    w.bool(c.evicted);
    match &c.last_good {
        Some(streams) => {
            w.bool(true);
            write_streams(w, streams);
        }
        None => w.bool(false),
    }
    w.usize(c.history.len());
    for streams in &c.history {
        write_streams(w, streams);
    }
}

pub(crate) fn read_client_fault(r: &mut Reader<'_>) -> io::Result<ClientFault> {
    let straggle_left = r.usize()?;
    let missed_rounds = r.usize()?;
    let rejections = r.u32()?;
    let evicted = r.bool()?;
    let last_good = if r.bool()? { Some(read_streams(r)?) } else { None };
    let n = r.usize()?;
    let mut history = VecDeque::with_capacity(n.min(64));
    for _ in 0..n {
        history.push_back(read_streams(r)?);
    }
    Ok(ClientFault { straggle_left, missed_rounds, rejections, evicted, last_good, history })
}

pub(crate) fn write_matrix(w: &mut Writer, m: &Matrix) {
    let (rows, cols) = m.shape();
    w.usize(rows);
    w.usize(cols);
    w.vec_f32(m.as_slice());
}

pub(crate) fn read_matrix(r: &mut Reader<'_>) -> io::Result<Matrix> {
    let rows = r.usize()?;
    let cols = r.usize()?;
    let data = r.vec_f32()?;
    if data.len() != rows * cols {
        return Err(bad(format!("matrix {rows}x{cols} with {} elements", data.len())));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.f32(-0.25);
        w.f64(1e300);
        w.vec_f32(&[1.0, 2.5]);
        w.vec_f64(&[-3.0]);
        w.vec_usize(&[0, 9, 4]);
        w.vec_bool(&[true, false]);
        w.rng_state([1, 2, 3, 4]);
        w.str("héllo");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), -0.25);
        assert_eq!(r.f64().unwrap(), 1e300);
        assert_eq!(r.vec_f32().unwrap(), vec![1.0, 2.5]);
        assert_eq!(r.vec_f64().unwrap(), vec![-3.0]);
        assert_eq!(r.vec_usize().unwrap(), vec![0, 9, 4]);
        assert_eq!(r.vec_bool().unwrap(), vec![true, false]);
        assert_eq!(r.rng_state().unwrap(), [1, 2, 3, 4]);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_truncation_and_trailing_bytes_rejected() {
        assert!(Reader::new(b"nope").is_err());
        let mut w = Writer::new();
        w.u64(5);
        let mut bytes = w.finish();
        assert!(Reader::new(&bytes[..bytes.len() - 1]).unwrap().u64().is_err());
        bytes.push(0);
        let mut r = Reader::new(&bytes).unwrap();
        let _ = r.u64().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn oversized_declared_length_fails_fast() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 8); // an absurd vec_f64 length prefix
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert!(r.vec_f64().is_err());
    }

    #[test]
    fn fingerprint_mismatch_is_invalid_data() {
        let fp = Fingerprint {
            algo: 3,
            seed: 9,
            episodes: 10,
            comm_every: 2,
            participation_k: 2,
            n_clients: 4,
        };
        let mut w = Writer::new();
        fp.write(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        Fingerprint::check(&mut r, &fp).unwrap();
        let other = Fingerprint { seed: 10, ..fp };
        let mut r = Reader::new(&bytes).unwrap();
        let err = Fingerprint::check(&mut r, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn client_fault_roundtrips() {
        let mut c = ClientFault {
            straggle_left: 2,
            missed_rounds: 1,
            rejections: 3,
            evicted: false,
            last_good: Some(vec![vec![1.0, -2.0], vec![0.5]]),
            history: VecDeque::new(),
        };
        c.history.push_back(vec![vec![9.0]]);
        let mut w = Writer::new();
        write_client_fault(&mut w, &c);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(read_client_fault(&mut r).unwrap(), c);
        r.finish().unwrap();
    }

    #[test]
    fn matrix_roundtrips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut w = Writer::new();
        write_matrix(&mut w, &m);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        let back = read_matrix(&mut r).unwrap();
        assert_eq!(back.shape(), (2, 3));
        assert_eq!(back.as_slice(), m.as_slice());
    }
}
