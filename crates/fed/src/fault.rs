//! Deterministic fault injection and the server-side update-quarantine
//! gate — the federation's robustness layer.
//!
//! Real FRL deployments face stragglers, dropouts, and corrupted uploads;
//! Algorithm 1 as written assumes every client returns a valid public
//! critic every round. This module makes the failure regime first-class
//! and *bit-reproducible*:
//!
//! * [`FaultPlan`] — a seeded, purely functional schedule of per-round,
//!   per-client [`FaultEvent`]s. `event(round, client)` derives its RNG
//!   from `(seed, round, client)` alone, so the same plan replays
//!   identically at any thread count and needs no checkpoint state.
//! * [`FaultState`] — the per-client runtime bookkeeping (straggler
//!   countdowns, consecutive-rejection counts, evictions, last-known-good
//!   uploads) shared by all federation runners, with every event emitted
//!   through `pfrl-telemetry` counters.
//! * [`validate_update`] — the quarantine gate: uploads with non-finite
//!   values or exploding norms are rejected at the server boundary, the
//!   client's last-known-good vector is substituted, and clients that fail
//!   repeatedly are evicted.
//!
//! Injection happens at the client→server boundary only: a corrupted
//! *upload* models a corrupted transmission (or a poisoned/diverged
//! client), while the client's own replica keeps training. Faulted clients
//! therefore still run local episodes — only their communication fails —
//! which keeps reward curves rectangular and the local training streams
//! independent of the fault schedule.

use crate::attack::AttackPlan;
use pfrl_nn::params::validate_params;
use pfrl_scenario::ChurnPlan;
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// How a corrupted upload is damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One element becomes NaN (e.g. a diverged Adam step).
    Nan,
    /// One element becomes +∞.
    Inf,
    /// Every element is scaled by `1e6` (norm blow-up without non-finites).
    NormBlowup,
}

/// One scheduled fault for a `(round, client)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The client is offline this round: no upload, no broadcast received.
    Dropout,
    /// The client goes silent for `rounds` consecutive rounds (this one
    /// included), then reconnects with whatever it trained in the interim.
    Straggle {
        /// Number of rounds the client stays silent.
        rounds: usize,
    },
    /// The upload arrives damaged and must be caught by the quarantine
    /// gate.
    CorruptUpload(Corruption),
    /// The upload that arrives is the client's upload from `age` rounds
    /// ago (a delayed packet), not its fresh parameters.
    StaleParams {
        /// How many rounds old the delivered upload is.
        age: usize,
    },
}

/// A deterministic, seeded fault schedule.
///
/// The plan is a pure function of `(seed, round, client)`: probabilities
/// pick which event (if any) fires for each pair, and all randomness is
/// derived locally, so chaos runs replay bit-identically regardless of
/// thread count, checkpointing, or evaluation order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed of the fault schedule (independent of the training seed).
    pub seed: u64,
    /// Per-round, per-client dropout probability.
    pub dropout: f64,
    /// Probability that a multi-round straggle starts.
    pub straggle: f64,
    /// Maximum straggle length in rounds (uniform `1..=max`).
    pub straggle_max: usize,
    /// Probability of a corrupted upload.
    pub corrupt: f64,
    /// Probability of a stale (delayed) upload.
    pub stale: f64,
    /// Maximum staleness age in rounds (uniform `1..=max`).
    pub stale_max_age: usize,
}

impl FaultPlan {
    /// The no-fault plan: every client is healthy every round, and no RNG
    /// is ever drawn, so runs are bit-identical to a runner without the
    /// fault layer.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout: 0.0,
            straggle: 0.0,
            straggle_max: 1,
            corrupt: 0.0,
            stale: 0.0,
            stale_max_age: 1,
        }
    }

    /// A healthy plan carrying a seed, for builder-style composition.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::none() }
    }

    /// Builder: sets the per-round dropout probability.
    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout = p;
        self
    }

    /// Builder: sets the straggle probability and maximum length.
    pub fn with_straggle(mut self, p: f64, max_rounds: usize) -> Self {
        self.straggle = p;
        self.straggle_max = max_rounds.max(1);
        self
    }

    /// Builder: sets the corrupted-upload probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Builder: sets the stale-upload probability and maximum age.
    pub fn with_stale(mut self, p: f64, max_age: usize) -> Self {
        self.stale = p;
        self.stale_max_age = max_age.max(1);
        self
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0 || self.straggle > 0.0 || self.corrupt > 0.0 || self.stale > 0.0
    }

    /// Panics if any probability is invalid or the total exceeds 1.
    pub fn validate(&self) {
        for (name, p) in [
            ("dropout", self.dropout),
            ("straggle", self.straggle),
            ("corrupt", self.corrupt),
            ("stale", self.stale),
        ] {
            assert!((0.0..=1.0).contains(&p), "fault {name} probability {p} outside [0, 1]");
        }
        let total = self.dropout + self.straggle + self.corrupt + self.stale;
        assert!(total <= 1.0 + 1e-12, "fault probabilities sum to {total} > 1");
    }

    /// The event scheduled for `(round, client)`, if any. Pure: derives a
    /// private RNG from `(seed, round, client)` and touches nothing else.
    pub fn event(&self, round: usize, client: usize) -> Option<FaultEvent> {
        if !self.is_active() {
            return None;
        }
        let seed = SeedStream::new(self.seed)
            .child("fault")
            .index(round as u64)
            .index(client as u64)
            .seed();
        let mut rng = SmallRng::seed_from_u64(seed);
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut edge = self.dropout;
        if u < edge {
            return Some(FaultEvent::Dropout);
        }
        edge += self.straggle;
        if u < edge {
            return Some(FaultEvent::Straggle { rounds: rng.gen_range(1..=self.straggle_max) });
        }
        edge += self.corrupt;
        if u < edge {
            let kind = match rng.gen_range(0..3u32) {
                0 => Corruption::Nan,
                1 => Corruption::Inf,
                _ => Corruption::NormBlowup,
            };
            return Some(FaultEvent::CorruptUpload(kind));
        }
        edge += self.stale;
        if u < edge {
            return Some(FaultEvent::StaleParams { age: rng.gen_range(1..=self.stale_max_age) });
        }
        None
    }
}

/// Server-side policy of the update-quarantine gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Uploads whose L2 norm exceeds this are rejected (legitimate critic
    /// parameter vectors in this codebase have norms of order 10).
    pub norm_limit: f32,
    /// Consecutive rejected uploads before the client is evicted from all
    /// future aggregations.
    pub evict_after: u32,
    /// Per-missed-round decay of a returning straggler's blend weight: a
    /// client re-entering after `s` silent rounds contributes
    /// `decay^s · upload + (1 − decay^s) · global` to the aggregation.
    pub staleness_decay: f32,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        Self { norm_limit: 1e4, evict_after: 3, staleness_decay: 0.5 }
    }
}

/// Why the quarantine gate rejected an upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateFault {
    /// A NaN or infinity at the given flat index of the given stream.
    NonFinite {
        /// Index of the offending stream (0 for single-stream uploads).
        stream: usize,
        /// Flat index of the first non-finite element.
        index: usize,
    },
    /// A stream's L2 norm exceeded the policy limit.
    NormExploded {
        /// Index of the offending stream.
        stream: usize,
        /// The measured norm.
        norm: f32,
    },
}

/// Validates one multi-stream upload (e.g. `[actor, critic]` for FedAvg,
/// `[public_critic]` for PFRL-DM) against the quarantine policy.
pub fn validate_update(streams: &[Vec<f32>], norm_limit: f32) -> Result<(), UpdateFault> {
    for (s, v) in streams.iter().enumerate() {
        if let Err(fault) = validate_params(v) {
            let index = match fault {
                pfrl_nn::ParamFault::Nan(i) | pfrl_nn::ParamFault::Infinite(i) => i,
                // validate_params only reports non-finite faults; the band
                // variant comes from validate_params_in_band (the screens).
                pfrl_nn::ParamFault::NormOutOfBand { .. } => unreachable!(),
            };
            return Err(UpdateFault::NonFinite { stream: s, index });
        }
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > norm_limit {
            return Err(UpdateFault::NormExploded { stream: s, norm });
        }
    }
    Ok(())
}

/// Applies a [`Corruption`] to an upload, deterministically per
/// `(plan seed, round, client)`.
fn corrupt_upload(streams: &mut [Vec<f32>], kind: Corruption, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        Corruption::Nan | Corruption::Inf => {
            let stream = rng.gen_range(0..streams.len());
            if streams[stream].is_empty() {
                return;
            }
            let idx = rng.gen_range(0..streams[stream].len());
            streams[stream][idx] = if kind == Corruption::Nan { f32::NAN } else { f32::INFINITY };
        }
        Corruption::NormBlowup => {
            for s in streams.iter_mut() {
                for v in s.iter_mut() {
                    *v *= 1e6;
                }
            }
        }
    }
}

/// Why the server rejected a contribution — either the absolute
/// quarantine gate or one of the cohort-relative robust screens. `Copy`
/// so recording a rejection never allocates on the aggregation hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The absolute quarantine gate fired (non-finite values or norm
    /// blow-up).
    Gate(UpdateFault),
    /// A stream's L2 norm fell outside the cohort-relative band
    /// `[median / band, median · band]`.
    NormBand {
        /// Index of the offending stream.
        stream: usize,
        /// The measured norm.
        norm: f32,
        /// The cohort median norm of that stream.
        median: f32,
        /// The configured band factor.
        band: f32,
    },
    /// A stream's cosine similarity to the cohort's robust reference
    /// direction fell below the screen threshold.
    CosineOutlier {
        /// Index of the offending stream.
        stream: usize,
        /// The measured cosine similarity.
        cosine: f32,
        /// The configured minimum.
        threshold: f32,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Gate(UpdateFault::NonFinite { stream, index }) => {
                write!(f, "quarantine gate: non-finite value at stream {stream} index {index}")
            }
            RejectReason::Gate(UpdateFault::NormExploded { stream, norm }) => {
                write!(f, "quarantine gate: stream {stream} norm {norm} exceeded the limit")
            }
            RejectReason::NormBand { stream, norm, median, band } => write!(
                f,
                "norm-band screen: stream {stream} norm {norm} outside [{:.4}, {:.4}] \
                 (cohort median {median}, band {band})",
                median / band,
                median * band
            ),
            RejectReason::CosineOutlier { stream, cosine, threshold } => write!(
                f,
                "cosine screen: stream {stream} similarity {cosine:.4} below threshold \
                 {threshold:.4}"
            ),
        }
    }
}

/// Why a client is not uploading this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsenceReason {
    /// A one-round dropout.
    Dropout,
    /// Mid-straggle (multi-round silence).
    Straggling,
    /// Permanently evicted by the quarantine gate.
    Evicted,
    /// Outside the federation cohort this round per the churn plan (left,
    /// or not joined yet). Unlike a dropout, this is scheduled membership,
    /// not a failure — no fault counters fire and no straggle state ticks.
    NotEnrolled,
}

/// A client's connectivity for one round, as decided by
/// [`FaultState::begin_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// Connected: uploads (possibly damaged) and receives broadcasts.
    Present {
        /// Scheduled transmission corruption, if any.
        corrupt: Option<Corruption>,
        /// Scheduled upload staleness in rounds (0 = fresh).
        stale_age: usize,
    },
    /// Offline this round: no upload, no broadcast.
    Absent(AbsenceReason),
}

impl Presence {
    /// Whether the client is connected this round.
    pub fn is_present(&self) -> bool {
        matches!(self, Presence::Present { .. })
    }
}

/// Per-client runtime fault bookkeeping (checkpointed alongside the rest
/// of the federation state).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientFault {
    /// Remaining silent rounds of an in-flight straggle.
    pub straggle_left: usize,
    /// Consecutive rounds without an accepted fresh-enough contribution
    /// (drives staleness-weighted re-entry).
    pub missed_rounds: usize,
    /// Consecutive uploads rejected by the quarantine gate.
    pub rejections: u32,
    /// Whether the quarantine gate has evicted this client.
    pub evicted: bool,
    /// Last upload that passed validation (quarantine fallback).
    pub last_good: Option<Vec<Vec<f32>>>,
    /// Ring of recent accepted uploads, newest last (stale-upload
    /// simulation; kept only when the plan schedules staleness).
    pub history: VecDeque<Vec<Vec<f32>>>,
}

/// An upload that survived the gate, ready for aggregation.
#[derive(Debug, Clone)]
pub struct AcceptedUpload {
    /// The client it came from.
    pub client: usize,
    /// The parameter streams to aggregate.
    pub streams: Vec<Vec<f32>>,
    /// Rounds of silence before this contribution (0 = regular round);
    /// positive values trigger staleness-weighted re-entry.
    pub missed_rounds: usize,
    /// The client's consecutive-rejection count *before* the gate ruled on
    /// this upload. The accept path resets the live counter; if a robust
    /// screen later rejects this upload, [`FaultState::note_screened`]
    /// restores continuity from this value so that per-round screen
    /// rejections still accumulate toward eviction.
    pub prior_rejections: u32,
}

/// Shared fault-injection + quarantine state for one federation runner.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    policy: QuarantinePolicy,
    clients: Vec<ClientFault>,
    /// Cohort membership schedule (construction-time config, like `plan`:
    /// never checkpointed — a restored runner re-derives membership by pure
    /// replay).
    churn: ChurnPlan,
    /// Byzantine attack schedule (construction-time config, like `plan`:
    /// never checkpointed — membership and crafted vectors re-derive by
    /// pure replay).
    attack: AttackPlan,
    /// Cached coalition membership (`attack.is_adversary(i)` per client),
    /// so the per-upload hot path never re-derives seeds.
    adversary: Vec<bool>,
    /// The most recent gate/screen rejection, with round and client, for
    /// structured error surfacing (see [`crate::FedError::Quarantine`]).
    last_rejection: Option<(usize, usize, RejectReason)>,
    /// Enrolled-client count of the latest [`Self::begin_round`], the
    /// denominator of `fed/participation_fraction` (so scheduled churn does
    /// not masquerade as dropout).
    enrolled: usize,
    telemetry: Telemetry,
}

impl FaultState {
    /// Builds the state for `n` clients.
    pub fn new(plan: FaultPlan, policy: QuarantinePolicy, n: usize) -> Self {
        plan.validate();
        assert!(policy.norm_limit > 0.0, "norm_limit must be positive");
        assert!(policy.evict_after >= 1, "evict_after must be >= 1");
        assert!((0.0..=1.0).contains(&policy.staleness_decay), "staleness_decay outside [0, 1]");
        Self {
            plan,
            policy,
            clients: vec![ClientFault::default(); n],
            churn: ChurnPlan::none(),
            attack: AttackPlan::none(),
            adversary: vec![false; n],
            last_rejection: None,
            enrolled: n,
            telemetry: Telemetry::noop(),
        }
    }

    /// Installs the churn plan (construction-time config; replaces any
    /// previous plan).
    pub fn set_churn(&mut self, churn: ChurnPlan) {
        self.enrolled = churn.enrolled_count(0, self.clients.len());
        self.churn = churn;
    }

    /// Installs the Byzantine attack schedule (construction-time config,
    /// like [`Self::set_churn`]; replaces any previous plan) and caches
    /// coalition membership.
    pub fn set_attack(&mut self, attack: AttackPlan) {
        attack.validate();
        self.adversary.clear();
        self.adversary.extend((0..self.clients.len()).map(|i| attack.is_adversary(i)));
        self.attack = attack;
    }

    /// The attack plan in force.
    pub fn attack(&self) -> &AttackPlan {
        &self.attack
    }

    /// Whether client `i` belongs to the adversarial coalition.
    pub fn is_adversary(&self, i: usize) -> bool {
        self.adversary[i]
    }

    /// The most recent gate/screen rejection as a structured error, or
    /// `None` if every upload so far was accepted. Gives callers the
    /// *reason* an upload was thrown out instead of a bare quarantine
    /// count.
    pub fn last_rejection(&self) -> Option<crate::FedError> {
        self.last_rejection.map(|(round, client, reason)| crate::FedError::Quarantine {
            round,
            client,
            reason,
        })
    }

    /// The churn plan in force.
    pub fn churn(&self) -> &ChurnPlan {
        &self.churn
    }

    /// Enrolled-client count of the latest [`Self::begin_round`].
    pub fn enrolled_now(&self) -> usize {
        self.enrolled
    }

    /// Routes fault/quarantine counters to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The quarantine policy in force.
    pub fn policy(&self) -> &QuarantinePolicy {
        &self.policy
    }

    /// Whether any fault can ever fire (the quarantine gate itself is
    /// always on).
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Registers a newly joined client (healthy; coalition membership is
    /// derived from the attack plan like everyone else's).
    pub fn add_client(&mut self) {
        let i = self.clients.len();
        self.clients.push(ClientFault::default());
        self.adversary.push(self.attack.is_adversary(i));
        self.enrolled += 1;
    }

    /// Number of tracked clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Whether the gate has evicted client `i`.
    pub fn is_evicted(&self, i: usize) -> bool {
        self.clients[i].evicted
    }

    /// Per-client bookkeeping, for checkpointing and inspection.
    pub fn client_states(&self) -> &[ClientFault] {
        &self.clients
    }

    /// Restores bookkeeping captured via [`Self::client_states`].
    ///
    /// # Panics
    /// If the client count disagrees.
    pub fn restore_client_states(&mut self, states: Vec<ClientFault>) {
        assert_eq!(states.len(), self.clients.len(), "fault state: client count mismatch");
        self.clients = states;
    }

    /// Decides every client's connectivity for `round`, advancing straggler
    /// countdowns and emitting `fed/dropouts` / `fed/stragglers` counters
    /// (plus `fed/joins` / `fed/leaves` on churn transitions).
    pub fn begin_round(&mut self, round: usize) -> Vec<Presence> {
        let mut out = Vec::with_capacity(self.clients.len());
        self.begin_round_into(round, &mut out);
        out
    }

    /// [`Self::begin_round`] into a reusable buffer — what the runners'
    /// pooled aggregation paths call, allocation-free once `out`'s capacity
    /// covers the cohort.
    pub fn begin_round_into(&mut self, round: usize, out: &mut Vec<Presence>) {
        let n = self.clients.len();
        out.clear();
        let mut enrolled = 0usize;
        for i in 0..n {
            // Churn is resolved before any fault state: an unenrolled client
            // is simply not part of the cohort — its straggle countdown does
            // not tick and no failure counters fire.
            let in_cohort = self.churn.enrolled(round, i);
            let was_in_cohort = if round == 0 {
                self.churn.initially_enrolled(i)
            } else {
                self.churn.enrolled(round - 1, i)
            };
            match (was_in_cohort, in_cohort) {
                (false, true) => self.telemetry.counter("fed/joins", 1),
                (true, false) => self.telemetry.counter("fed/leaves", 1),
                _ => {}
            }
            if !in_cohort {
                out.push(Presence::Absent(AbsenceReason::NotEnrolled));
                continue;
            }
            enrolled += 1;
            let c = &mut self.clients[i];
            if c.evicted {
                out.push(Presence::Absent(AbsenceReason::Evicted));
                continue;
            }
            if c.straggle_left > 0 {
                c.straggle_left -= 1;
                out.push(Presence::Absent(AbsenceReason::Straggling));
                continue;
            }
            match self.plan.event(round, i) {
                Some(FaultEvent::Dropout) => {
                    self.telemetry.counter("fed/dropouts", 1);
                    out.push(Presence::Absent(AbsenceReason::Dropout));
                }
                Some(FaultEvent::Straggle { rounds }) => {
                    self.telemetry.counter("fed/stragglers", 1);
                    c.straggle_left = rounds - 1;
                    out.push(Presence::Absent(AbsenceReason::Straggling));
                }
                Some(FaultEvent::CorruptUpload(kind)) => {
                    out.push(Presence::Present { corrupt: Some(kind), stale_age: 0 })
                }
                Some(FaultEvent::StaleParams { age }) => {
                    out.push(Presence::Present { corrupt: None, stale_age: age })
                }
                None => out.push(Presence::Present { corrupt: None, stale_age: 0 }),
            }
        }
        self.enrolled = enrolled;
        if self.attack.fires_at(round) {
            let coalition =
                (0..n).filter(|&i| self.adversary[i] && self.churn.enrolled(round, i)).count();
            self.telemetry.gauge("fed/attack_coalition_size", coalition as f64);
        }
    }

    /// Records that client `i` contributed nothing this round (absent, or
    /// quarantined with no fallback).
    pub fn note_missed(&mut self, i: usize) {
        self.clients[i].missed_rounds += 1;
    }

    /// Records that client `i`'s replica was refreshed by a broadcast (its
    /// next upload is not stale even though it did not contribute).
    pub fn note_refreshed(&mut self, i: usize) {
        self.clients[i].missed_rounds = 0;
    }

    /// Runs one upload through injection + the quarantine gate.
    ///
    /// `presence` must be the `Present` entry [`Self::begin_round`]
    /// returned for this client. Returns the upload to aggregate (fresh,
    /// stale-substituted, or the last-known-good fallback), or `None` when
    /// the round contributes nothing (quarantined with no fallback).
    pub fn gate_upload(
        &mut self,
        round: usize,
        client: usize,
        mut streams: Vec<Vec<f32>>,
        presence: Presence,
    ) -> Option<AcceptedUpload> {
        let (corrupt, stale_age) = match presence {
            Presence::Present { corrupt, stale_age } => (corrupt, stale_age),
            Presence::Absent(_) => panic!("gate_upload on an absent client"),
        };

        // Injection: Byzantine crafting happens first — the adversary
        // poisons what it *sends*, and network-level staleness/corruption
        // then act on the crafted upload like on any honest one. (A stale
        // delivery below substitutes a history entry that was itself
        // poisoned when first accepted, so no double application.)
        if self.attack.fires_at(round) && self.adversary[client] {
            self.attack.poison(round, client, &mut streams);
            self.telemetry.counter("fed/attacked_uploads", 1);
        }
        // Injection: a delayed packet delivers an old upload instead.
        // `clone_from` writes over the arena-pooled buffers in place, so
        // even injected staleness costs no fresh allocation at steady state.
        if stale_age > 0 {
            let hist = &self.clients[client].history;
            if !hist.is_empty() {
                let idx = hist.len().saturating_sub(stale_age);
                streams.clone_from(&hist[idx]);
                self.telemetry.counter("fed/stale_uploads", 1);
            }
        }
        // Injection: transmission corruption.
        if let Some(kind) = corrupt {
            let seed = SeedStream::new(self.plan.seed)
                .child("corrupt")
                .index(round as u64)
                .index(client as u64)
                .seed();
            corrupt_upload(&mut streams, kind, seed);
        }

        let missed = self.clients[client].missed_rounds;
        let prior_rejections = self.clients[client].rejections;
        match validate_update(&streams, self.policy.norm_limit) {
            Ok(()) => {
                let c = &mut self.clients[client];
                c.rejections = 0;
                c.missed_rounds = 0;
                // Reuse the retained last-good capacity instead of cloning
                // a fresh copy every accepted round.
                match &mut c.last_good {
                    Some(lg) => lg.clone_from(&streams),
                    None => c.last_good = Some(streams.clone()),
                }
                if self.plan.stale > 0.0 {
                    c.history.push_back(streams.clone());
                    while c.history.len() > self.plan.stale_max_age {
                        c.history.pop_front();
                    }
                }
                Some(AcceptedUpload { client, streams, missed_rounds: missed, prior_rejections })
            }
            Err(fault) => {
                self.telemetry.counter("fed/quarantined", 1);
                self.last_rejection = Some((round, client, RejectReason::Gate(fault)));
                let c = &mut self.clients[client];
                c.rejections += 1;
                if c.rejections >= self.policy.evict_after {
                    c.evicted = true;
                    self.telemetry.counter("fed/evictions", 1);
                }
                match &c.last_good {
                    Some(lg) => {
                        self.telemetry.counter("fed/quarantine_fallbacks", 1);
                        // Substitute in place: the rejected upload's pooled
                        // buffers become the fallback contribution.
                        streams.clone_from(lg);
                        Some(AcceptedUpload {
                            client,
                            streams,
                            missed_rounds: missed,
                            prior_rejections,
                        })
                    }
                    None => {
                        c.missed_rounds += 1;
                        None
                    }
                }
            }
        }
    }

    /// Records that a cohort-relative robust screen rejected an
    /// already-gated contribution this round. Feeds the same
    /// rejection/eviction machinery as the absolute gate: the gate's
    /// accept path reset the live counters, so continuity is restored from
    /// the upload's pre-gate snapshot — consecutive per-round screen
    /// rejections accumulate toward eviction, and the structured reason is
    /// surfaced via [`Self::last_rejection`]. (The last-known-good vector
    /// was captured at the absolute gate before the screen ran — a
    /// screened client's fallback may therefore carry its rejected upload;
    /// eviction after `evict_after` consecutive rejections is the
    /// backstop.)
    pub fn note_screened(&mut self, round: usize, upload: &AcceptedUpload, reason: RejectReason) {
        let i = upload.client;
        self.telemetry.counter("fed/screened", 1);
        self.last_rejection = Some((round, i, reason));
        let c = &mut self.clients[i];
        c.rejections = upload.prior_rejections + 1;
        c.missed_rounds = upload.missed_rounds + 1;
        if c.rejections >= self.policy.evict_after {
            c.evicted = true;
            self.telemetry.counter("fed/evictions", 1);
        }
    }

    /// The staleness-weighted re-entry blend weight for a contribution that
    /// arrives after `missed_rounds` silent rounds: `decay^missed`.
    pub fn reentry_weight(&self, missed_rounds: usize) -> f32 {
        self.policy.staleness_decay.powi(missed_rounds as i32)
    }

    /// Observes the round's participation fraction and flags empty rounds.
    /// The denominator is the *currently enrolled* cohort of the latest
    /// [`Self::begin_round`], not the all-time client count — scheduled
    /// churn must not read as dropout.
    pub fn record_participation(&self, accepted: usize) {
        let n = self.enrolled.max(1);
        self.telemetry.observe("fed/participation_fraction", accepted as f64 / n as f64);
        if accepted == 0 {
            self.telemetry.counter("fed/skipped_rounds", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan() -> FaultPlan {
        FaultPlan::new(7)
            .with_dropout(0.2)
            .with_straggle(0.1, 3)
            .with_corrupt(0.1)
            .with_stale(0.1, 2)
    }

    #[test]
    fn none_plan_never_fires_and_is_inactive() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for round in 0..50 {
            for client in 0..8 {
                assert_eq!(p.event(round, client), None);
            }
        }
    }

    #[test]
    fn events_are_deterministic_and_seed_sensitive() {
        let a = chaos_plan();
        let b = chaos_plan();
        let c = FaultPlan { seed: 8, ..chaos_plan() };
        let events = |p: &FaultPlan| -> Vec<Option<FaultEvent>> {
            (0..40).flat_map(|r| (0..4).map(move |k| (r, k))).map(|(r, k)| p.event(r, k)).collect()
        };
        assert_eq!(events(&a), events(&b));
        assert_ne!(events(&a), events(&c));
    }

    #[test]
    fn event_rates_roughly_match_probabilities() {
        let p = FaultPlan::new(3).with_dropout(0.25);
        let total = 4000;
        let drops = (0..total).filter(|&r| p.event(r, 0) == Some(FaultEvent::Dropout)).count();
        let frac = drops as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.03, "dropout rate {frac}");
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_probabilities_rejected() {
        FaultState::new(
            FaultPlan::new(0).with_dropout(0.8).with_corrupt(0.5),
            QuarantinePolicy::default(),
            2,
        );
    }

    #[test]
    fn validate_update_catches_all_corruption_kinds() {
        let ok = vec![vec![0.5f32, -0.5], vec![1.0, 2.0]];
        assert_eq!(validate_update(&ok, 100.0), Ok(()));
        let nan = vec![vec![0.5f32, f32::NAN]];
        assert_eq!(
            validate_update(&nan, 100.0),
            Err(UpdateFault::NonFinite { stream: 0, index: 1 })
        );
        let inf = vec![vec![0.5f32], vec![f32::INFINITY, 0.0]];
        assert_eq!(
            validate_update(&inf, 100.0),
            Err(UpdateFault::NonFinite { stream: 1, index: 0 })
        );
        let blown = vec![vec![2e3f32, 2e3]];
        assert!(matches!(
            validate_update(&blown, 1e3),
            Err(UpdateFault::NormExploded { stream: 0, .. })
        ));
    }

    #[test]
    fn corrupted_upload_quarantined_and_falls_back_to_last_good() {
        let mut fs = FaultState::new(FaultPlan::new(1), QuarantinePolicy::default(), 1);
        let good = vec![vec![1.0f32, 2.0]];
        let healthy = Presence::Present { corrupt: None, stale_age: 0 };
        let poisoned = Presence::Present { corrupt: Some(Corruption::Nan), stale_age: 0 };
        // A clean round records last-known-good.
        let a = fs.gate_upload(0, 0, good.clone(), healthy).unwrap();
        assert_eq!(a.streams, good);
        // A poisoned round is rejected but the last-good vector substitutes.
        let b = fs.gate_upload(1, 0, vec![vec![3.0f32, 4.0]], poisoned).unwrap();
        assert_eq!(b.streams, good);
        assert_eq!(fs.client_states()[0].rejections, 1);
    }

    #[test]
    fn first_round_corruption_with_no_fallback_contributes_nothing() {
        let mut fs = FaultState::new(FaultPlan::new(1), QuarantinePolicy::default(), 1);
        let poisoned = Presence::Present { corrupt: Some(Corruption::Inf), stale_age: 0 };
        assert!(fs.gate_upload(0, 0, vec![vec![1.0f32]], poisoned).is_none());
        assert_eq!(fs.client_states()[0].missed_rounds, 1);
    }

    #[test]
    fn repeated_rejections_evict() {
        let policy = QuarantinePolicy { evict_after: 2, ..Default::default() };
        let mut fs = FaultState::new(FaultPlan::new(1), policy, 1);
        let poisoned = Presence::Present { corrupt: Some(Corruption::NormBlowup), stale_age: 0 };
        for round in 0..2 {
            let _ = fs.gate_upload(round, 0, vec![vec![1.0f32, 1.0]], poisoned);
        }
        assert!(fs.is_evicted(0));
        let presences = fs.begin_round(2);
        assert_eq!(presences[0], Presence::Absent(AbsenceReason::Evicted));
    }

    #[test]
    fn straggle_spans_multiple_rounds_then_reconnects() {
        // Force a straggle by probing rounds until one fires.
        let plan = FaultPlan::new(11).with_straggle(0.5, 3);
        let mut fs = FaultState::new(plan, QuarantinePolicy::default(), 1);
        let mut silent = 0usize;
        let mut reconnected = false;
        for round in 0..30 {
            let p = fs.begin_round(round)[0];
            match p {
                Presence::Absent(AbsenceReason::Straggling) => {
                    silent += 1;
                    fs.note_missed(0);
                }
                Presence::Present { .. } => {
                    if silent > 0 {
                        // Re-entry carries the missed-round count.
                        let got = fs
                            .gate_upload(round, 0, vec![vec![0.1f32]], p)
                            .expect("healthy upload accepted");
                        assert_eq!(got.missed_rounds, silent);
                        reconnected = true;
                        break;
                    }
                    let _ = fs.gate_upload(round, 0, vec![vec![0.1f32]], p);
                }
                Presence::Absent(_) => fs.note_missed(0),
            }
        }
        assert!(reconnected, "no straggle observed in 30 rounds");
    }

    #[test]
    fn stale_event_delivers_an_old_upload() {
        let plan = FaultPlan::new(1).with_stale(0.5, 4);
        let mut fs = FaultState::new(plan, QuarantinePolicy::default(), 1);
        let fresh = Presence::Present { corrupt: None, stale_age: 0 };
        for round in 0..3 {
            let up = vec![vec![round as f32]];
            let a = fs.gate_upload(round, 0, up.clone(), fresh).unwrap();
            assert_eq!(a.streams, up);
        }
        // age 2 → the upload from two accepted rounds back (value 1.0).
        let stale = Presence::Present { corrupt: None, stale_age: 2 };
        let a = fs.gate_upload(3, 0, vec![vec![99.0f32]], stale).unwrap();
        assert_eq!(a.streams, vec![vec![1.0f32]]);
    }

    #[test]
    fn reentry_weight_decays_with_missed_rounds() {
        let fs = FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), 1);
        assert_eq!(fs.reentry_weight(0), 1.0);
        assert_eq!(fs.reentry_weight(1), 0.5);
        assert_eq!(fs.reentry_weight(3), 0.125);
    }

    #[test]
    fn churn_drives_presence_and_enrolled_count() {
        use pfrl_scenario::{ChurnEvent, ChurnKind};
        let mut fs = FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), 3);
        fs.set_churn(ChurnPlan::new(vec![
            ChurnEvent { round: 1, client: 2, kind: ChurnKind::Leave },
            ChurnEvent { round: 3, client: 2, kind: ChurnKind::Join },
        ]));
        assert_eq!(fs.enrolled_now(), 3);
        assert!(fs.begin_round(0).iter().all(Presence::is_present));
        let p1 = fs.begin_round(1);
        assert_eq!(p1[2], Presence::Absent(AbsenceReason::NotEnrolled));
        assert!(p1[0].is_present() && p1[1].is_present());
        assert_eq!(fs.enrolled_now(), 2);
        assert!(fs.begin_round(3)[2].is_present());
        assert_eq!(fs.enrolled_now(), 3);
    }

    #[test]
    fn fault_state_roundtrips_through_snapshot() {
        let mut fs = FaultState::new(chaos_plan(), QuarantinePolicy::default(), 2);
        let healthy = Presence::Present { corrupt: None, stale_age: 0 };
        let _ = fs.gate_upload(0, 0, vec![vec![1.0f32]], healthy);
        fs.note_missed(1);
        let snap = fs.client_states().to_vec();
        let mut fresh = FaultState::new(chaos_plan(), QuarantinePolicy::default(), 2);
        fresh.restore_client_states(snap.clone());
        assert_eq!(fresh.client_states(), &snap[..]);
    }
}
