//! Versioned, inference-only policy snapshots — the export format the
//! serving layer (`pfrl-serve`) loads.
//!
//! A [`PolicySnapshot`] captures everything needed to reproduce one
//! client's *greedy decision path* outside the training process: the actor
//! parameters and shape, the masking flag, and the client's environment
//! definition (dims, VM fleet, reward config) so a serving session can
//! mirror the cluster state decision-for-decision. Deliberately excluded:
//! critics, optimizer moments, rollout buffers, RNG cursors — those belong
//! to the (much larger) round checkpoint, not to serving.
//!
//! The wire format reuses the round-checkpoint primitive codec
//! ([`Writer`]/[`Reader`]) under its own magic/version prefix, with the
//! same strictness: truncation, trailing bytes, or internally inconsistent
//! declarations decode to [`FedError::Snapshot`], never to a partially
//! initialized policy.

use crate::checkpoint::{Reader, Writer};
use crate::error::FedError;
use pfrl_sim::{EnvConfig, EnvDims, VmSpec, RESOURCE_DIMS};

/// Magic + format version prefix of every policy snapshot.
const MAGIC: &[u8; 12] = b"PFRL-POLICY\x01";

/// One client's frozen greedy policy plus its environment definition.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySnapshot {
    /// Algorithm that trained the policy (paper name, e.g. `"PFRL-DM"`).
    pub algorithm: String,
    /// Client display name (unique within a federation).
    pub client: String,
    /// Snapshot version: the number of training episodes the policy had
    /// completed at export time. Monotonically increasing across exports
    /// of the same client, so a store can keep several and serve the
    /// latest.
    pub version: u64,
    /// Federation-wide observation/action dimensions.
    pub dims: EnvDims,
    /// Reward-shaping and simulation options of the client's environment.
    pub env_cfg: EnvConfig,
    /// The client's VM fleet.
    pub vms: Vec<VmSpec>,
    /// Hidden-layer width of the actor network.
    pub hidden: usize,
    /// Whether decisions use feasibility masking.
    pub mask_actions: bool,
    /// Flat actor parameters (shape `[state_dim, hidden, action_dim]`).
    pub actor_params: Vec<f32>,
}

impl PolicySnapshot {
    /// Layer sizes of the actor network.
    pub fn sizes(&self) -> [usize; 3] {
        [self.dims.state_dim(), self.hidden, self.dims.action_dim()]
    }

    /// Parameter count implied by [`Self::sizes`] (dense layers + biases).
    pub fn param_count(&self) -> usize {
        let s = self.sizes();
        s.windows(2).map(|w| (w[0] + 1) * w[1]).sum()
    }

    /// Structural validation: every check needed so that building an actor
    /// network and a mirror environment from this snapshot cannot panic.
    pub fn validate(&self) -> Result<(), FedError> {
        let fail = |msg: String| Err(FedError::Snapshot(msg));
        if self.client.is_empty() {
            return fail("empty client name".into());
        }
        let d = &self.dims;
        if d.max_vms == 0
            || d.max_vcpus == 0
            || !d.max_mem_gb.is_finite()
            || d.max_mem_gb <= 0.0
            || d.queue_slots == 0
        {
            return fail(format!("degenerate dims {d:?}"));
        }
        let c = &self.env_cfg;
        let wsum: f32 = c.resource_weights.iter().sum();
        if !(0.0..=1.0).contains(&c.rho)
            || (wsum - 1.0).abs() >= 1e-5
            || c.lazy_wait_penalty > 0.0
            || c.max_decisions == 0
        {
            return fail(format!("invalid env config {c:?}"));
        }
        if self.vms.is_empty() || self.vms.len() > d.max_vms {
            return fail(format!("{} VMs for {} slots", self.vms.len(), d.max_vms));
        }
        for (i, v) in self.vms.iter().enumerate() {
            if v.vcpus == 0
                || !v.mem_gb.is_finite()
                || v.mem_gb <= 0.0
                || v.vcpus > d.max_vcpus
                || v.mem_gb > d.max_mem_gb
            {
                return fail(format!("VM {i} ({}, {}) outside dims", v.vcpus, v.mem_gb));
            }
        }
        if self.hidden == 0 {
            return fail("zero hidden width".into());
        }
        if self.actor_params.len() != self.param_count() {
            return fail(format!(
                "{} actor params but shape {:?} needs {}",
                self.actor_params.len(),
                self.sizes(),
                self.param_count()
            ));
        }
        if self.actor_params.iter().any(|p| !p.is_finite()) {
            return fail("non-finite actor parameter".into());
        }
        Ok(())
    }

    /// Serializes to the versioned wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_magic(MAGIC);
        w.str(&self.algorithm);
        w.str(&self.client);
        w.u64(self.version);
        w.usize(self.dims.max_vms);
        w.u32(self.dims.max_vcpus);
        w.f32(self.dims.max_mem_gb);
        w.usize(self.dims.queue_slots);
        w.f32(self.env_cfg.rho);
        w.vec_f32(&self.env_cfg.resource_weights);
        w.f32(self.env_cfg.lazy_wait_penalty);
        w.usize(self.env_cfg.max_decisions);
        w.bool(self.env_cfg.fast_forward);
        w.usize(self.vms.len());
        for v in &self.vms {
            w.u32(v.vcpus);
            w.f32(v.mem_gb);
        }
        w.usize(self.hidden);
        w.bool(self.mask_actions);
        w.vec_f32(&self.actor_params);
        w.finish()
    }

    /// Decodes and validates a snapshot written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FedError> {
        let mut r = Reader::with_magic(bytes, MAGIC).map_err(FedError::snapshot)?;
        let snap = (|| -> std::io::Result<Self> {
            let algorithm = r.str()?;
            let client = r.str()?;
            let version = r.u64()?;
            let dims = EnvDims {
                max_vms: r.usize()?,
                max_vcpus: r.u32()?,
                max_mem_gb: r.f32()?,
                queue_slots: r.usize()?,
            };
            let rho = r.f32()?;
            let weights = r.vec_f32()?;
            let env_cfg = EnvConfig {
                rho,
                resource_weights: weights.try_into().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("expected {RESOURCE_DIMS} resource weights"),
                    )
                })?,
                lazy_wait_penalty: r.f32()?,
                max_decisions: r.usize()?,
                fast_forward: r.bool()?,
            };
            let n_vms = r.usize()?;
            let mut vms = Vec::with_capacity(n_vms.min(64));
            for _ in 0..n_vms {
                vms.push(VmSpec { vcpus: r.u32()?, mem_gb: r.f32()? });
            }
            let hidden = r.usize()?;
            let mask_actions = r.bool()?;
            let actor_params = r.vec_f32()?;
            Ok(Self {
                algorithm,
                client,
                version,
                dims,
                env_cfg,
                vms,
                hidden,
                mask_actions,
                actor_params,
            })
        })()
        .map_err(FedError::snapshot)?;
        r.finish().map_err(FedError::snapshot)?;
        snap.validate()?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> PolicySnapshot {
        let dims = EnvDims::new(2, 8, 64.0, 3);
        let hidden = 4;
        let n = (dims.state_dim() + 1) * hidden + (hidden + 1) * dims.action_dim();
        PolicySnapshot {
            algorithm: "PFRL-DM".into(),
            client: "bank-a".into(),
            version: 12,
            dims,
            env_cfg: EnvConfig::default(),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            hidden,
            mask_actions: false,
            actor_params: (0..n).map(|i| (i as f32 * 0.37).sin()).collect(),
        }
    }

    #[test]
    fn roundtrips_bit_identically() {
        let s = snapshot();
        let back = PolicySnapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage_truncation_and_trailing_bytes() {
        assert!(matches!(
            PolicySnapshot::from_bytes(b"not a snapshot"),
            Err(FedError::Snapshot(_))
        ));
        let bytes = snapshot().to_bytes();
        assert!(PolicySnapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(PolicySnapshot::from_bytes(&extended).is_err());
        // A round checkpoint is a different container: wrong magic.
        let ckpt = Writer::new().finish();
        assert!(PolicySnapshot::from_bytes(&ckpt).is_err());
    }

    #[test]
    fn rejects_inconsistent_shapes() {
        let mut s = snapshot();
        s.actor_params.pop();
        assert!(
            matches!(PolicySnapshot::from_bytes(&s.to_bytes()), Err(FedError::Snapshot(m)) if m.contains("actor params"))
        );
        let mut s = snapshot();
        s.vms.clear();
        assert!(PolicySnapshot::from_bytes(&s.to_bytes()).is_err());
        let mut s = snapshot();
        s.vms[0].vcpus = 1000; // exceeds dims
        assert!(PolicySnapshot::from_bytes(&s.to_bytes()).is_err());
        let mut s = snapshot();
        s.actor_params[0] = f32::NAN;
        assert!(PolicySnapshot::from_bytes(&s.to_bytes()).is_err());
    }

    #[test]
    fn param_count_matches_mlp_shape() {
        let s = snapshot();
        assert_eq!(s.sizes(), [s.dims.state_dim(), 4, s.dims.action_dim()]);
        assert_eq!(s.param_count(), s.actor_params.len());
    }
}
