//! The PFRL-DM federation runner (Algorithm 1): dual-critic clients +
//! multi-head-attention personalization on the server.
//!
//! Per communication round:
//!
//! 1. every client trains `Ω = comm_every` local episodes with its
//!    dual-critic PPO;
//! 2. the server collects the public critics `{ψ_k}` of `K ≤ N` clients
//!    (a seeded random subset each round, modeling the paper's
//!    "aggregate once K uploads arrive");
//! 3. the server computes the multi-head attention weight matrix
//!    `W ∈ R^{K×K}` over the uploaded parameter vectors (Eq. 18) and sends
//!    client `k` its personalized critic `ψ_k' = Σ_j W_{kj}·ψ_j` (Eq. 21);
//! 4. the global critic `ψ_G = (1/K)·Σ_k ψ_k'` (Eq. 22) is stored and sent
//!    to the clients that did not participate this round.
//!
//! Only critic parameters ever travel — the paper's communication-cost
//! advantage over FedAvg, which must ship actor + critic.

use crate::attack::AttackPlan;
use crate::checkpoint::{
    read_client_fault, read_dual_agent, read_matrix, write_client_fault, write_dual_agent,
    write_matrix, Fingerprint, Reader, Writer,
};
use crate::client::Client;
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use crate::error::FedError;
use crate::fault::{
    AbsenceReason, AcceptedUpload, FaultPlan, FaultState, Presence, QuarantinePolicy,
};
use crate::fedavg::param_bytes;
use crate::independent::{agent_seed, curves_of, run_all};
use crate::robust::{reduce_into, screen_uploads, RobustConfig, RobustScratch};
use crate::runner::UploadArena;
use crate::similarity::{attention_weights_into, mean_row_entropy};
use pfrl_nn::params::{apply_mixing_matrix_into, average_params};
use pfrl_nn::{Activation, AttentionScratch, Mlp, MultiHeadConfig};
use pfrl_rl::{DualCriticAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_stats::seeding::SeedStream;
use pfrl_telemetry::Telemetry;
use pfrl_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io;

/// Reusable per-round aggregation buffers: cohort/cursor vectors, the
/// blended uploads, the attention workspace, and the personalized outputs.
/// Pure scratch — never checkpointed; a steady-state round touches the
/// heap only if a buffer has to grow past its warm capacity.
#[derive(Default)]
struct AggWorkspace {
    idx: Vec<usize>,
    presences: Vec<Presence>,
    candidates: Vec<usize>,
    accepted: Vec<AcceptedUpload>,
    survivors: Vec<usize>,
    psis: Vec<Vec<f32>>,
    personalized: Vec<Vec<f32>>,
    attention: AttentionScratch,
    weights: Matrix,
    robust: RobustScratch,
}

/// PFRL-DM federation runner.
pub struct PfrlDmRunner {
    /// Participating clients (dual-critic agents).
    pub clients: Vec<Client<DualCriticAgent>>,
    cfg: FedConfig,
    ppo_cfg: PpoConfig,
    dims: EnvDims,
    env_cfg: EnvConfig,
    attention: MultiHeadConfig,
    /// Server-held global public critic `ψ_G`.
    server_global: Vec<f32>,
    participation_rng: SmallRng,
    /// Attention weight matrices of every aggregation round (for Fig. 11
    /// style inspection).
    pub weight_history: Vec<Matrix>,
    /// Client indices that participated in each round.
    pub participant_history: Vec<Vec<usize>>,
    next_client_index: usize,
    rounds_done: usize,
    fault: FaultState,
    robust: RobustConfig,
    telemetry: Telemetry,
    arena: UploadArena,
    agg: AggWorkspace,
    record_history: bool,
}

impl PfrlDmRunner {
    /// Builds the federation with the default attention configuration.
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        Self::with_attention(setups, dims, env_cfg, ppo_cfg, fed_cfg, MultiHeadConfig::default())
    }

    /// Builds the federation with an explicit attention configuration
    /// (used by the head-count ablation).
    pub fn with_attention(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
        attention: MultiHeadConfig,
    ) -> Self {
        fed_cfg.validate(setups.len());
        let mut clients: Vec<Client<DualCriticAgent>> = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = DualCriticAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect();
        let n = clients.len();

        // ψ_G^{(0)}: a fresh server-seeded critic, broadcast to everyone so
        // the federation starts from a shared public critic (Algorithm 1,
        // lines 4–5).
        let server_seed = SeedStream::new(fed_cfg.seed).child("server").seed();
        let server_net = Mlp::new(
            &[dims.state_dim(), ppo_cfg.hidden, 1],
            Activation::Tanh,
            &mut SmallRng::seed_from_u64(server_seed),
        );
        let server_global = server_net.flat_params();
        for c in &mut clients {
            c.agent.receive_public_critic(&server_global);
        }
        let participation_rng =
            SmallRng::seed_from_u64(SeedStream::new(fed_cfg.seed).child("participation").seed());
        Self {
            clients,
            cfg: fed_cfg,
            ppo_cfg,
            dims,
            env_cfg,
            attention,
            server_global,
            participation_rng,
            weight_history: Vec::new(),
            participant_history: Vec::new(),
            next_client_index: n,
            rounds_done: 0,
            fault: FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), n),
            robust: RobustConfig::default(),
            telemetry: Telemetry::noop(),
            arena: UploadArena::new(),
            agg: AggWorkspace::default(),
            record_history: true,
        }
    }

    /// Toggles per-round weight/participant history recording. Each entry
    /// clones a `K×K` matrix — at federation scale that is the dominant
    /// steady-state allocation, so the scale probe and the zero-alloc gate
    /// turn it off. On by default (Fig. 11 inspection and checkpoint
    /// contents are unchanged).
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
    }

    /// Routes runner, agent, and environment metrics to `telemetry`
    /// (per-round phase timings, bytes on the wire, attention entropy,
    /// public-critic loss before/after personalization).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.fault.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]): the
    /// scheduled dropouts, stragglers, corruptions, and stale uploads are
    /// injected at the client→server boundary of every aggregation. The
    /// round's participant *sampling* is untouched — faults act on the
    /// sampled cohort, so the same training seed explores the same
    /// participation sequence with and without faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let policy = *self.fault.policy();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Overrides the update-quarantine policy (norm limit, eviction
    /// threshold, staleness decay).
    pub fn with_quarantine_policy(mut self, policy: QuarantinePolicy) -> Self {
        let plan = *self.fault.plan();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Installs a deterministic adversarial-upload schedule (see
    /// [`crate::attack`]): members of the seeded coalition poison their
    /// public-critic uploads at the quarantine gate. Composes with fault
    /// plans and churn; an inactive plan is bit-identical to none.
    pub fn with_attack_plan(mut self, plan: AttackPlan) -> Self {
        self.fault.set_attack(plan);
        self
    }

    /// Selects the server-side robust aggregation config (see
    /// [`crate::robust`]): the screens run over the surviving ψ uploads
    /// before attention, and the chosen aggregator replaces the plain mean
    /// that folds the personalized critics into `ψ_G`. The default config
    /// is bit-identical to the undefended path.
    pub fn with_robust_aggregator(mut self, robust: RobustConfig) -> Self {
        robust.validate();
        self.robust = robust;
        self
    }

    /// Installs a deterministic scenario (workload drift + churn, see
    /// [`pfrl_scenario`]): drifting clients regenerate their episode traces
    /// from the plan, and the plan's churn schedule drives which clients
    /// are eligible for the round's `K`-of-`N` cohort (leavers are skipped
    /// by the sampler; re-joiners flow through the staleness re-entry
    /// blend toward `ψ_G`).
    pub fn with_scenario(mut self, binding: &pfrl_scenario::ScenarioBinding) -> Self {
        crate::client::install_scenario(
            &mut self.clients,
            &mut self.fault,
            binding,
            self.cfg.tasks_per_episode,
        );
        self
    }

    /// Switches every client to DAG workflow scheduling: client `i` draws
    /// its episodes from `pools[i]` (seeded windows of `per_episode`
    /// workflows; `None` replays the full pool each episode).
    pub fn with_workflows(
        mut self,
        pools: Vec<Vec<pfrl_workloads::workflow::Workflow>>,
        per_episode: Option<usize>,
    ) -> Self {
        assert_eq!(pools.len(), self.clients.len(), "one workflow pool per client");
        for (c, pool) in self.clients.iter_mut().zip(pools) {
            c.use_workflows(pool, per_episode);
        }
        self
    }

    /// Full training run. Resume-safe: starts from `rounds_done`.
    pub fn train(&mut self) -> TrainingCurves {
        while self.rounds_done < self.cfg.rounds() {
            self.train_round();
        }
        self.finish()
    }

    /// Runs `n` more rounds (used by the Fig. 20 join experiment to drive
    /// rounds manually).
    pub fn train_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.train_round();
        }
    }

    /// Runs any leftover episodes past the last aggregation and returns the
    /// curves. Idempotent: each client is trained up to the episode budget.
    pub fn finish(&mut self) -> TrainingCurves {
        let done = self.clients.first().map_or(0, |c| c.episodes_done());
        if self.cfg.episodes > done {
            run_all(&mut self.clients, self.cfg.episodes - done, self.cfg.parallel);
        }
        curves_of(&self.clients)
    }

    /// `comm_every` local episodes on every client, then one aggregation.
    pub fn train_round(&mut self) {
        let t = self.telemetry.clone();
        let round_span = t.span("fed/round");
        {
            let _local = round_span.child("local_train");
            run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
        }
        self.aggregate();
    }

    /// One personalization aggregation (Algorithm 1, lines 9–14), over the
    /// round's surviving participants:
    ///
    /// * the seeded `K`-of-`N` cohort is sampled as always, then the fault
    ///   layer decides which members are connected and which uploads
    ///   survive the quarantine gate;
    /// * attention (Eqs. 18–22) runs over the surviving uploads only;
    /// * a survivor returning after `s` silent rounds contributes the blend
    ///   `decay^s · ψ + (1 − decay^s) · ψ_G` — its critic drifted alone, so
    ///   its say shrinks with its staleness;
    /// * absent clients keep their last personalized critic; connected
    ///   non-participants receive `ψ_G` as before.
    ///
    /// When every upload of a round is lost the aggregation is skipped
    /// outright (no weight/participant history entry): clients continue on
    /// their current critics.
    pub fn aggregate(&mut self) {
        let round = self.rounds_done;
        let n = self.clients.len();
        self.agg.idx.clear();
        self.agg.idx.extend(0..n);
        self.agg.idx.shuffle(&mut self.participation_rng);

        self.fault.begin_round_into(round, &mut self.agg.presences);
        // Churn shrinks the eligible pool, never the RNG stream: the
        // shuffle above always consumes the same randomness over all `N`
        // clients, then scheduled leavers are filtered out of the ranked
        // order. A churn-free run is therefore bit-identical to one with no
        // churn plan installed.
        let k = self.cfg.participation_k.min(self.fault.enrolled_now());
        self.agg.candidates.clear();
        for &i in &self.agg.idx {
            if self.agg.candidates.len() == k {
                break;
            }
            if self.agg.presences[i] != Presence::Absent(AbsenceReason::NotEnrolled) {
                self.agg.candidates.push(i);
            }
        }

        let upload = self.telemetry.span("fed/round/upload");
        self.agg.accepted.clear();
        for slot in 0..self.agg.candidates.len() {
            let i = self.agg.candidates[slot];
            if !self.agg.presences[i].is_present() {
                self.fault.note_missed(i);
                continue;
            }
            // Uploads flow through the pooled arena: K uploads reuse K
            // warm buffers instead of allocating K fresh ParamVecs.
            let mut streams = self.arena.acquire(1);
            self.clients[i].agent.public_critic_params_into(&mut streams[0]);
            if let Some(up) = self.fault.gate_upload(round, i, streams, self.agg.presences[i]) {
                self.agg.accepted.push(up);
            }
        }
        drop(upload);
        // Byzantine screens run over the gated cohort before any upload
        // influences attention: a rejected ψ never enters the weight matrix.
        screen_uploads(
            &self.robust,
            round,
            &mut self.fault,
            &mut self.agg.accepted,
            &mut self.arena,
            &mut self.agg.robust,
        );
        self.fault.record_participation(self.agg.accepted.len());
        if self.agg.accepted.is_empty() {
            for i in 0..n {
                if !self.agg.candidates.contains(&i) && !self.agg.presences[i].is_present() {
                    self.fault.note_missed(i);
                }
            }
            self.telemetry.counter("fed/rounds", 1);
            self.rounds_done += 1;
            return;
        }
        let agg_start = std::time::Instant::now();
        self.agg.survivors.clear();
        self.agg.survivors.extend(self.agg.accepted.iter().map(|u| u.client));
        // Staleness-weighted re-entry: blend a returning straggler's upload
        // toward the current ψ_G. Fresh uploads pass through untouched.
        let n_acc = self.agg.accepted.len();
        self.agg.psis.truncate(n_acc);
        while self.agg.psis.len() < n_acc {
            self.agg.psis.push(Vec::new());
        }
        for (dst, u) in self.agg.psis.iter_mut().zip(&self.agg.accepted) {
            if u.missed_rounds == 0 {
                dst.clone_from(&u.streams[0]);
            } else {
                let w = self.fault.reentry_weight(u.missed_rounds);
                dst.clear();
                dst.extend(
                    u.streams[0]
                        .iter()
                        .zip(&self.server_global)
                        .map(|(x, g)| w * x + (1.0 - w) * g),
                );
            }
        }
        // The upload buffers are copied out; park them for the next round.
        for up in self.agg.accepted.drain(..) {
            self.arena.release(up.streams);
        }
        // PFRL-DM only ships the surviving public critics.
        self.telemetry.counter("fed/bytes_up", param_bytes(&self.agg.psis));

        let loss_before = self.mean_public_critic_loss();

        let attention = self.telemetry.span("fed/round/attention");
        attention_weights_into(
            &self.agg.psis,
            &self.attention,
            self.cfg.parallel,
            &mut self.agg.attention,
            &mut self.agg.weights,
        );
        drop(attention);
        self.telemetry.observe("fed/attention_entropy", mean_row_entropy(&self.agg.weights));

        let agg = self.telemetry.span("fed/round/aggregate");
        apply_mixing_matrix_into(
            &self.agg.weights,
            &self.agg.psis,
            self.cfg.parallel,
            &mut self.agg.personalized,
        );
        reduce_into(
            self.robust.aggregator,
            &self.agg.personalized,
            &mut self.agg.robust,
            &mut self.server_global,
            &self.telemetry,
        );
        drop(agg);

        let mut global_receivers = 0u64;
        {
            let _broadcast = self.telemetry.span("fed/round/broadcast");
            for (slot, &i) in self.agg.survivors.iter().enumerate() {
                self.clients[i].agent.receive_public_critic(&self.agg.personalized[slot]);
            }
            for i in 0..n {
                if self.agg.survivors.contains(&i) {
                    continue;
                }
                if self.agg.presences[i].is_present() {
                    // Connected non-participants (and participants whose
                    // upload was quarantined with nothing to fall back on)
                    // are refreshed with ψ_G.
                    self.clients[i].agent.receive_public_critic(&self.server_global);
                    self.fault.note_refreshed(i);
                    global_receivers += 1;
                } else if !self.agg.candidates.contains(&i) {
                    // Absent non-candidates keep their last personalized
                    // critic; absent candidates were already counted above.
                    self.fault.note_missed(i);
                }
            }
        }
        self.telemetry.counter(
            "fed/bytes_down",
            param_bytes(&self.agg.personalized)
                + global_receivers * 4 * self.server_global.len() as u64,
        );
        // Wall-clock of the aggregation phase (blend → attention → mixing →
        // broadcast). Excluded from the deterministic telemetry fingerprint
        // like every wall-clock metric.
        self.telemetry.observe("fed/agg_wall_us", agg_start.elapsed().as_secs_f64() * 1e6);
        self.telemetry.gauge("fed/arena_bytes", self.arena.pooled_bytes() as f64);

        if let (Some(b), Some(a)) = (loss_before, self.mean_public_critic_loss()) {
            self.telemetry.observe("fed/critic_loss_before_agg", b);
            self.telemetry.observe("fed/critic_loss_after_agg", a);
        }
        self.telemetry.counter("fed/rounds", 1);
        self.rounds_done += 1;

        if self.record_history {
            self.weight_history.push(self.agg.weights.clone());
            self.participant_history.push(self.agg.survivors.clone());
        }
    }

    /// Mean public-critic MSE (`L_ψ`) across clients with buffered
    /// trajectories; telemetry-only, so skipped entirely when disabled.
    fn mean_public_critic_loss(&self) -> Option<f64> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for c in &self.clients {
            if c.agent.has_trajectories() {
                sum += c.agent.critic_losses().1 as f64;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Pins every client's `α` to a fixed value (ablation of the adaptive
    /// Eq. 15); `None` restores adaptivity.
    pub fn set_fixed_alpha(&mut self, alpha: Option<f32>) {
        for c in &mut self.clients {
            c.agent.set_fixed_alpha(alpha);
        }
    }

    /// The server's current global public critic `ψ_G`.
    pub fn server_global(&self) -> &[f32] {
        &self.server_global
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }

    /// Adds a new client to a running federation (the Fig. 20 scenario):
    /// its public critic is initialized from the server's `ψ_G`, and —
    /// as a one-time onboarding bootstrap — its actor may be seeded from
    /// the average of the existing clients' actors (the paper initializes
    /// the joiner "with the model provided by the server"; since PFRL-DM
    /// servers only store critics, the actor bootstrap is the natural
    /// completion and is documented in DESIGN.md). Returns the new
    /// client's index.
    pub fn add_client(&mut self, setup: ClientSetup, bootstrap_actor: bool) -> usize {
        let i = self.next_client_index;
        self.next_client_index += 1;
        let mut agent = DualCriticAgent::new(
            self.dims.state_dim(),
            self.dims.action_dim(),
            self.ppo_cfg,
            agent_seed(&self.cfg, i),
        );
        agent.receive_public_critic(&self.server_global);
        if bootstrap_actor && !self.clients.is_empty() {
            let actors: Vec<Vec<f32>> =
                self.clients.iter().map(|c| c.agent.actor.flat_params()).collect();
            agent.actor.set_flat_params(&average_params(&actors));
        }
        let mut client = Client::new(setup, agent, self.dims, self.env_cfg, &self.cfg, i);
        client.set_telemetry(self.telemetry.clone());
        self.clients.push(client);
        self.fault.add_client();
        self.clients.len() - 1
    }

    /// Communication rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Bytes of `f32` capacity pooled in the upload arena between rounds.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.pooled_bytes()
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            algo: 3,
            seed: self.cfg.seed,
            episodes: self.cfg.episodes,
            comm_every: self.cfg.comm_every,
            participation_k: self.cfg.participation_k,
            n_clients: self.clients.len(),
        }
    }

    /// Serializes the full training state: server global critic, the
    /// participation RNG cursor, round cursor, weight/participant history,
    /// per-client agent snapshots and reward histories, and fault
    /// bookkeeping. Construction-time configuration (attention config,
    /// fault plan) is *not* stored — restore into a runner built the same
    /// way.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.fingerprint().write(&mut w);
        w.usize(self.rounds_done);
        w.vec_f32(&self.server_global);
        w.rng_state(self.participation_rng.state());
        w.usize(self.next_client_index);
        w.usize(self.weight_history.len());
        for m in &self.weight_history {
            write_matrix(&mut w, m);
        }
        w.usize(self.participant_history.len());
        for p in &self.participant_history {
            w.vec_usize(p);
        }
        for c in &self.clients {
            w.vec_f64(&c.rewards);
            w.usize(c.episodes_done());
            write_dual_agent(&mut w, &c.agent.snapshot());
        }
        for f in self.fault.client_states() {
            write_client_fault(&mut w, f);
        }
        w.finish()
    }

    /// Restores state captured by [`Self::checkpoint_bytes`] into a runner
    /// built with the same configuration; training then resumes to
    /// bit-identical curves.
    ///
    /// Malformed, truncated, or mismatched checkpoints surface as
    /// [`FedError::Checkpoint`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError> {
        self.restore_impl(bytes).map_err(FedError::checkpoint)
    }

    fn restore_impl(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes)?;
        Fingerprint::check(&mut r, &self.fingerprint())?;
        let rounds_done = r.usize()?;
        let server_global = r.vec_f32()?;
        let rng_state = r.rng_state()?;
        let next_client_index = r.usize()?;
        let n_weights = r.usize()?;
        let mut weight_history = Vec::with_capacity(n_weights);
        for _ in 0..n_weights {
            weight_history.push(read_matrix(&mut r)?);
        }
        let n_parts = r.usize()?;
        let mut participant_history = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            participant_history.push(r.vec_usize()?);
        }
        let mut snaps = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            let rewards = r.vec_f64()?;
            let episodes_done = r.usize()?;
            snaps.push((rewards, episodes_done, read_dual_agent(&mut r)?));
        }
        let mut faults = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            faults.push(read_client_fault(&mut r)?);
        }
        r.finish()?;
        self.rounds_done = rounds_done;
        self.server_global = server_global;
        self.participation_rng = SmallRng::from_state(rng_state);
        self.next_client_index = next_client_index;
        self.weight_history = weight_history;
        self.participant_history = participant_history;
        for (c, (rewards, episodes_done, snap)) in self.clients.iter_mut().zip(snaps) {
            c.rewards = rewards;
            c.restore_episode_cursor(episodes_done);
            c.agent.restore(&snap);
        }
        self.fault.restore_client_states(faults);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;

    fn fed(n_clients: usize) -> FedConfig {
        FedConfig {
            episodes: 4,
            comm_every: 2,
            participation_k: (n_clients / 2).max(1),
            tasks_per_episode: Some(12),
            seed: 21,
            parallel: false,
        }
    }

    #[test]
    fn initial_broadcast_synchronizes_public_critics() {
        let (setups, dims, env_cfg) = small_setups(3);
        let r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(3));
        let p0 = r.clients[0].agent.public_critic_params();
        for c in &r.clients {
            assert_eq!(c.agent.public_critic_params(), p0);
        }
        assert_eq!(r.server_global(), &p0[..]);
    }

    #[test]
    fn aggregation_records_row_stochastic_weights() {
        let (setups, dims, env_cfg) = small_setups(4);
        let mut r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(4));
        run_all(&mut r.clients, 1, false);
        r.aggregate();
        assert_eq!(r.weight_history.len(), 1);
        let w = &r.weight_history[0];
        assert_eq!(w.shape(), (2, 2)); // K = 2 of 4
        for row in 0..2 {
            let s: f32 = w.row(row).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        assert_eq!(r.participant_history[0].len(), 2);
    }

    #[test]
    fn participants_get_personalized_models_others_get_global() {
        let (setups, dims, env_cfg) = small_setups(4);
        let mut r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(4));
        run_all(&mut r.clients, 2, false);
        r.aggregate();
        let participants = r.participant_history[0].clone();
        let global = r.server_global().to_vec();
        for i in 0..4 {
            let psi = r.clients[i].agent.public_critic_params();
            if participants.contains(&i) {
                // Personalized: generally different from the global mean
                // (the attention rows are not uniform).
                assert_eq!(psi.len(), global.len());
            } else {
                assert_eq!(psi, global, "non-participant {i} must hold ψ_G");
            }
        }
    }

    #[test]
    fn actors_never_synchronized() {
        // Only critics travel: actors must stay distinct across clients.
        let (setups, dims, env_cfg) = small_setups(3);
        let mut r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(3));
        r.train();
        let a0 = r.clients[0].agent.actor.flat_params();
        let a1 = r.clients[1].agent.actor.flat_params();
        assert_ne!(a0, a1);
    }

    #[test]
    fn full_training_produces_curves_and_history() {
        let (setups, dims, env_cfg) = small_setups(4);
        let mut r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(4));
        let curves = r.train();
        assert_eq!(curves.clients(), 4);
        assert!(curves.per_client.iter().all(|c| c.len() == 4));
        assert_eq!(r.weight_history.len(), 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let (setups, dims, env_cfg) = small_setups(3);
        let run = || {
            let mut r =
                PfrlDmRunner::new(setups.clone(), dims, env_cfg, PpoConfig::default(), fed(3));
            let c = r.train();
            (c, r.server_global().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn new_client_joins_with_server_model() {
        let (mut setups, dims, env_cfg) = small_setups(3);
        let joiner = setups.pop().unwrap();
        let mut r = PfrlDmRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2));
        r.train_rounds(1);
        let idx = r.add_client(joiner, true);
        assert_eq!(idx, 2);
        assert_eq!(r.clients[idx].agent.public_critic_params(), r.server_global().to_vec());
        // The joiner trains along in subsequent rounds.
        r.train_rounds(1);
        assert_eq!(r.clients[idx].rewards.len(), 2);
    }
}
