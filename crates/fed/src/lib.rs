//! Federated reinforcement learning runtime for PFRL-DM (Sec. 4.4–4.5).
//!
//! The crate provides four interchangeable federation runners sharing one
//! client/round machinery:
//!
//! * [`IndependentRunner`] — no communication (the paper's "PPO" baseline);
//! * [`FedAvgRunner`] — classic FedAvg over both actor and critic
//!   parameters (optionally with a custom per-client mixing matrix, used by
//!   the Fig. 10 weighting study);
//! * [`MfpoRunner`] — momentum-based FRL in the spirit of MFPO (server- and
//!   client-side momentum on the aggregated parameter deltas; see DESIGN.md
//!   for the substitution rationale);
//! * [`PfrlDmRunner`] — the paper's contribution: dual-critic clients that
//!   upload only their public critics, personalized on the server by
//!   multi-head attention weights (Algorithm 1).
//!
//! Clients train in parallel (rayon) between communication points; every
//! stochastic stream is seeded per `(experiment, client, episode)`, so runs
//! are bit-for-bit reproducible at any thread count.

pub mod attack;
pub mod checkpoint;
pub mod client;
pub mod config;
pub mod curves;
pub mod error;
pub mod fault;
pub mod fedavg;
pub mod independent;
pub mod mfpo;
pub mod pfrl_dm;
pub mod robust;
pub mod runner;
pub mod secure;
pub mod similarity;
pub mod snapshot;

pub use attack::{AttackModel, AttackPlan};
pub use client::{Client, FedAgent};
pub use config::{ClientSetup, FedConfig};
pub use curves::TrainingCurves;
pub use error::FedError;
pub use fault::{
    AbsenceReason, AcceptedUpload, ClientFault, Corruption, FaultEvent, FaultPlan, FaultState,
    Presence, QuarantinePolicy, RejectReason, UpdateFault,
};
pub use fedavg::{FedAvgRunner, RoundLossProbe};
pub use independent::IndependentRunner;
pub use mfpo::MfpoRunner;
pub use pfrl_dm::PfrlDmRunner;
pub use pfrl_scenario as scenario;
pub use robust::{RobustAggregator, RobustConfig, RobustScratch};
pub use runner::{ClientView, FederatedRunner};
pub use secure::{aggregate_masked, mask_update};
pub use similarity::{attention_weights, cosine_weights, kl_weights};
pub use snapshot::PolicySnapshot;
