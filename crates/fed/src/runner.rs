//! The uniform runner API: one trait over all four federation algorithms.
//!
//! [`FederatedRunner`] is the extension point for new policy families —
//! implement it (train/checkpoint/clients/snapshot export) and everything
//! downstream works unchanged: the `pfrl-core` experiment driver, the
//! resumable checkpoint loop, generalization evaluation, and the
//! `pfrl-serve` snapshot pipeline all dispatch through this trait instead
//! of matching on a per-algorithm enum.
//!
//! Client heterogeneity (PPO clients vs dual-critic clients) is bridged by
//! [`ClientView`], an object-safe view over `Client<A>` exposing exactly
//! what post-training consumers need: identity, reward history, the
//! private task pool, greedy evaluation, and policy export.

use crate::client::{Client, FedAgent};
use crate::config::FedConfig;
use crate::curves::TrainingCurves;
use crate::error::FedError;
use crate::fedavg::FedAvgRunner;
use crate::independent::IndependentRunner;
use crate::mfpo::MfpoRunner;
use crate::pfrl_dm::PfrlDmRunner;
use crate::snapshot::PolicySnapshot;
use pfrl_sim::EpisodeMetrics;
use pfrl_workloads::TaskSpec;
use std::any::Any;

/// Object-safe view of one federated client, independent of its agent type.
pub trait ClientView {
    /// Display name.
    fn name(&self) -> &str;
    /// Episode rewards collected so far.
    fn rewards(&self) -> &[f64];
    /// The client's private training pool.
    fn train_tasks(&self) -> &[TaskSpec];
    /// Training episodes completed.
    fn episodes_done(&self) -> usize;
    /// Greedy evaluation of the current policy on an arbitrary task set.
    fn evaluate_on(&mut self, tasks: &[TaskSpec]) -> EpisodeMetrics;
    /// Inference-only policy export; `algorithm` is the trainer's name.
    fn policy_snapshot(&self, algorithm: &str) -> PolicySnapshot;
}

impl<A: FedAgent> ClientView for Client<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn rewards(&self) -> &[f64] {
        &self.rewards
    }
    fn train_tasks(&self) -> &[TaskSpec] {
        Client::train_tasks(self)
    }
    fn episodes_done(&self) -> usize {
        Client::episodes_done(self)
    }
    fn evaluate_on(&mut self, tasks: &[TaskSpec]) -> EpisodeMetrics {
        Client::evaluate_on(self, tasks)
    }
    fn policy_snapshot(&self, algorithm: &str) -> PolicySnapshot {
        Client::policy_snapshot(self, algorithm)
    }
}

/// Runner-owned pool of upload buffers: one *stream group* (a
/// `Vec<Vec<f32>>`, e.g. `[actor, critic]` for FedAvg or `[ψ]` for
/// PFRL-DM) per in-flight upload. K uploads per round cycle K groups
/// through [`UploadArena::acquire`]/[`UploadArena::release`] instead of
/// allocating K fresh `ParamVec`s; after the first round every buffer has
/// its steady-state capacity and the upload phase stops touching the heap.
///
/// The arena never checkpoints — it is pure capacity, not state.
#[derive(Debug, Default)]
pub struct UploadArena {
    free: Vec<Vec<Vec<f32>>>,
}

impl UploadArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a stream group of exactly `streams` cleared vectors,
    /// reusing pooled capacity when available.
    pub fn acquire(&mut self, streams: usize) -> Vec<Vec<f32>> {
        let mut group = self.free.pop().unwrap_or_default();
        group.truncate(streams);
        for s in &mut group {
            s.clear();
        }
        while group.len() < streams {
            group.push(Vec::new());
        }
        group
    }

    /// Returns a group to the pool for reuse in a later round.
    pub fn release(&mut self, group: Vec<Vec<f32>>) {
        self.free.push(group);
    }

    /// Bytes of `f32` capacity currently parked in the pool (the
    /// `fed/arena_bytes` gauge). Excludes groups checked out by in-flight
    /// uploads, so a steady-state round reports the full pool between
    /// rounds.
    pub fn pooled_bytes(&self) -> u64 {
        self.free
            .iter()
            .flat_map(|g| g.iter())
            .map(|s| (s.capacity() * std::mem::size_of::<f32>()) as u64)
            .sum()
    }
}

/// The uniform federation-runner API implemented by all four algorithms.
///
/// Round-by-round training, checkpoint/restore, client access, and policy
/// export — everything the experiment driver and the serving layer need,
/// with no per-algorithm special cases.
pub trait FederatedRunner: Send {
    /// Paper name of the algorithm (e.g. `"PFRL-DM"`).
    fn algorithm(&self) -> &'static str;
    /// The federation schedule in use.
    fn config(&self) -> &FedConfig;
    /// One round-sized chunk of training (local episodes + aggregation).
    fn train_round(&mut self);
    /// Runs any leftover episodes and returns the reward curves.
    fn finish(&mut self) -> TrainingCurves;
    /// Rounds completed so far.
    fn rounds_done(&self) -> usize;
    /// Serializes the full resumable training state.
    fn checkpoint_bytes(&self) -> Vec<u8>;
    /// Restores state captured by [`Self::checkpoint_bytes`].
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError>;
    /// Views over the clients, in index order.
    fn clients(&self) -> Vec<&dyn ClientView>;
    /// Mutable views over the clients, in index order.
    fn clients_mut(&mut self) -> Vec<&mut dyn ClientView>;
    /// Bytes of upload-buffer capacity pooled in the runner's
    /// [`UploadArena`] (0 for runners that never upload).
    fn arena_bytes(&self) -> u64;
    /// Escape hatch to the concrete runner (e.g. for PFRL-DM's attention
    /// weight history).
    fn as_any(&self) -> &dyn Any;

    /// Trains the remaining schedule to completion. Resume-safe: continues
    /// from [`Self::rounds_done`].
    fn train_to_completion(&mut self) -> TrainingCurves {
        while self.rounds_done() < self.config().rounds() {
            self.train_round();
        }
        self.finish()
    }

    /// Exports one inference-only [`PolicySnapshot`] per client.
    fn policy_snapshots(&self) -> Vec<PolicySnapshot> {
        let algorithm = self.algorithm();
        self.clients().iter().map(|c| c.policy_snapshot(algorithm)).collect()
    }
}

macro_rules! impl_federated_runner {
    ($ty:ty, $name:literal) => {
        impl FederatedRunner for $ty {
            fn algorithm(&self) -> &'static str {
                $name
            }
            fn config(&self) -> &FedConfig {
                <$ty>::config(self)
            }
            fn train_round(&mut self) {
                <$ty>::train_round(self)
            }
            fn finish(&mut self) -> TrainingCurves {
                <$ty>::finish(self)
            }
            fn rounds_done(&self) -> usize {
                <$ty>::rounds_done(self)
            }
            fn checkpoint_bytes(&self) -> Vec<u8> {
                <$ty>::checkpoint_bytes(self)
            }
            fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError> {
                <$ty>::restore_checkpoint(self, bytes)
            }
            fn arena_bytes(&self) -> u64 {
                <$ty>::arena_bytes(self)
            }
            fn clients(&self) -> Vec<&dyn ClientView> {
                self.clients.iter().map(|c| c as &dyn ClientView).collect()
            }
            fn clients_mut(&mut self) -> Vec<&mut dyn ClientView> {
                self.clients.iter_mut().map(|c| c as &mut dyn ClientView).collect()
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
    };
}

impl_federated_runner!(IndependentRunner, "PPO");
impl_federated_runner!(FedAvgRunner, "FedAvg");
impl_federated_runner!(MfpoRunner, "MFPO");
impl_federated_runner!(PfrlDmRunner, "PFRL-DM");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;
    use pfrl_rl::PpoConfig;

    fn tiny_fed() -> FedConfig {
        FedConfig {
            episodes: 2,
            comm_every: 1,
            participation_k: 2,
            tasks_per_episode: Some(8),
            seed: 5,
            parallel: false,
        }
    }

    /// All four runners behind one `Box<dyn FederatedRunner>`: train,
    /// evaluate, export — no enum dispatch anywhere.
    #[test]
    fn all_runners_drive_uniformly_through_the_trait() {
        let (setups, dims, env_cfg) = small_setups(2);
        let ppo = PpoConfig::default();
        let runners: Vec<Box<dyn FederatedRunner>> = vec![
            Box::new(IndependentRunner::new(setups.clone(), dims, env_cfg, ppo, tiny_fed())),
            Box::new(FedAvgRunner::new(setups.clone(), dims, env_cfg, ppo, tiny_fed())),
            Box::new(MfpoRunner::new(setups.clone(), dims, env_cfg, ppo, tiny_fed())),
            Box::new(PfrlDmRunner::new(setups.clone(), dims, env_cfg, ppo, tiny_fed())),
        ];
        let mut names = Vec::new();
        for mut r in runners {
            names.push(r.algorithm());
            let curves = r.train_to_completion();
            assert_eq!(curves.clients(), 2, "{}", r.algorithm());
            assert_eq!(r.clients().len(), 2);
            let eval_tasks = r.clients()[0].train_tasks().to_vec();
            let m = r.clients_mut()[1].evaluate_on(&eval_tasks);
            assert!(m.makespan.is_finite());
            let snaps = r.policy_snapshots();
            assert_eq!(snaps.len(), 2);
            for s in &snaps {
                assert_eq!(s.algorithm, r.algorithm());
                s.validate().expect("exported snapshot must validate");
            }
        }
        assert_eq!(names, ["PPO", "FedAvg", "MFPO", "PFRL-DM"]);
    }

    #[test]
    fn trait_checkpoint_roundtrips_and_rejects_garbage() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r: Box<dyn FederatedRunner> = Box::new(FedAvgRunner::new(
            setups.clone(),
            dims,
            env_cfg,
            PpoConfig::default(),
            tiny_fed(),
        ));
        r.train_round();
        let bytes = r.checkpoint_bytes();
        let mut fresh: Box<dyn FederatedRunner> =
            Box::new(FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), tiny_fed()));
        fresh.restore_checkpoint(&bytes).expect("restore through the trait");
        assert_eq!(fresh.rounds_done(), 1);
        assert!(matches!(fresh.restore_checkpoint(b"garbage"), Err(FedError::Checkpoint(_))));
        assert!(fresh.as_any().downcast_ref::<FedAvgRunner>().is_some());
        assert!(fresh.as_any().downcast_ref::<MfpoRunner>().is_none());
    }
}
