//! Federation configuration and per-client environment setup.

use pfrl_sim::VmSpec;
use pfrl_workloads::TaskSpec;

/// Everything needed to instantiate one client's environment.
#[derive(Debug, Clone)]
pub struct ClientSetup {
    /// Display name (e.g. the dataset the client's workload comes from).
    pub name: String,
    /// The client's VM fleet (Tables 2–3).
    pub vms: Vec<VmSpec>,
    /// The client's training task pool.
    pub train_tasks: Vec<TaskSpec>,
}

/// Federation-wide training schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedConfig {
    /// Total training episodes per client (paper: 300 exploratory / 500
    /// evaluation).
    pub episodes: usize,
    /// Communication frequency: local episodes between aggregations
    /// (paper: 15 exploratory / 25 evaluation).
    pub comm_every: usize,
    /// Clients aggregated per round, `K ≤ N` (paper: `K = N/2` for
    /// PFRL-DM; FedAvg/MFPO use all clients).
    pub participation_k: usize,
    /// Tasks drawn per training episode: a random contiguous window of the
    /// client's pool (`None` = the whole pool every episode).
    pub tasks_per_episode: Option<usize>,
    /// Root seed; all client/episode streams derive from it.
    pub seed: u64,
    /// Train clients in parallel with rayon (results are identical either
    /// way; parallelism only changes wall-clock).
    pub parallel: bool,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            episodes: 300,
            comm_every: 15,
            participation_k: 2,
            tasks_per_episode: Some(120),
            seed: 0,
            parallel: true,
        }
    }
}

impl FedConfig {
    /// Validates the schedule against a client count.
    pub fn validate(&self, n_clients: usize) {
        assert!(n_clients >= 1, "need at least one client");
        assert!(self.episodes >= 1, "need at least one episode");
        assert!(self.comm_every >= 1, "comm_every must be >= 1");
        assert!(
            self.participation_k >= 1 && self.participation_k <= n_clients,
            "participation K={} out of 1..={n_clients}",
            self.participation_k
        );
        if let Some(t) = self.tasks_per_episode {
            assert!(t >= 1, "tasks_per_episode must be >= 1");
        }
    }

    /// Number of communication rounds implied by the schedule.
    pub fn rounds(&self) -> usize {
        self.episodes / self.comm_every
    }
}

/// Shared fixtures for the runner tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use pfrl_sim::{EnvConfig, EnvDims};
    use pfrl_workloads::DatasetId;

    /// `n` tiny heterogeneous clients plus shared dims/env config.
    pub(crate) fn small_setups(n: usize) -> (Vec<ClientSetup>, EnvDims, EnvConfig) {
        let dims = EnvDims::new(2, 8, 64.0, 3);
        let datasets = [DatasetId::K8s, DatasetId::Google, DatasetId::Alibaba2017];
        let setups = (0..n)
            .map(|i| ClientSetup {
                name: format!("c{i}"),
                vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
                train_tasks: datasets[i % datasets.len()].model().sample(60, 10 + i as u64),
            })
            .collect();
        (setups, dims, EnvConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_exploratory_schedule() {
        let c = FedConfig::default();
        assert_eq!(c.episodes, 300);
        assert_eq!(c.comm_every, 15);
        assert_eq!(c.rounds(), 20);
    }

    #[test]
    fn validation_accepts_sane_config() {
        FedConfig::default().validate(4);
    }

    #[test]
    #[should_panic(expected = "participation")]
    fn k_larger_than_n_rejected() {
        FedConfig { participation_k: 5, ..Default::default() }.validate(4);
    }

    #[test]
    #[should_panic(expected = "comm_every")]
    fn zero_comm_rejected() {
        FedConfig { comm_every: 0, ..Default::default() }.validate(4);
    }
}
