//! Classic FedAvg over actor *and* critic parameters (McMahan et al.),
//! the paper's traditional-FRL baseline — optionally with a fixed
//! per-client mixing matrix for the Fig. 10 similarity-weighting study.

use crate::attack::AttackPlan;
use crate::checkpoint::{
    read_client_fault, read_ppo_agent, write_client_fault, write_ppo_agent, Fingerprint, Reader,
    Writer,
};
use crate::client::Client;
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use crate::error::FedError;
use crate::fault::{AcceptedUpload, FaultPlan, FaultState, Presence, QuarantinePolicy};
use crate::independent::{agent_seed, curves_of, run_all};
use crate::robust::{reduce_into, screen_uploads, RobustConfig, RobustScratch};
use crate::runner::UploadArena;
use pfrl_nn::params::apply_mixing_matrix_into;
use pfrl_rl::{PpoAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_telemetry::Telemetry;
use pfrl_tensor::Matrix;
use std::io;

/// Wire size of a flat `f32` parameter vector, for bytes-on-wire counters.
pub(crate) fn param_bytes(params: &[Vec<f32>]) -> u64 {
    params.iter().map(|p| p.len() as u64 * 4).sum()
}

/// Restricts an `N × N` mixing matrix to the participating subset: rows and
/// columns of the survivors, with each row renormalized to sum 1 (uniform
/// fallback when a row has no mass on the survivors). The full matrix is
/// returned untouched when everyone participates, so fault-free runs stay
/// bit-identical.
pub(crate) fn restrict_mixing(mix: &Matrix, survivors: &[usize], n: usize) -> Matrix {
    if survivors.len() == n {
        return mix.clone();
    }
    let k = survivors.len();
    let mut out = Matrix::zeros(k, k);
    for (a, &i) in survivors.iter().enumerate() {
        let row = mix.row(i);
        let mass: f32 = survivors.iter().map(|&j| row[j]).sum();
        for (b, &j) in survivors.iter().enumerate() {
            out[(a, b)] = if mass > 1e-12 { row[j] / mass } else { 1.0 / k as f32 };
        }
    }
    out
}

/// Mean critic loss across clients immediately before and after one
/// aggregation (the Fig. 9 probe: heterogeneity makes the aggregated critic
/// evaluate local trajectories worse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundLossProbe {
    /// Communication round index.
    pub round: usize,
    /// Mean critic MSE on each client's own last episode, before loading
    /// the aggregate.
    pub loss_before: f64,
    /// Same, after loading the aggregate.
    pub loss_after: f64,
}

/// Reusable per-round aggregation buffers: cleared and refilled every
/// round so the steady-state aggregate path stays off the heap.
#[derive(Default)]
struct AggWorkspace {
    presences: Vec<Presence>,
    accepted: Vec<AcceptedUpload>,
    survivors: Vec<usize>,
    actors: Vec<Vec<f32>>,
    critics: Vec<Vec<f32>>,
    actor_out: Vec<Vec<f32>>,
    critic_out: Vec<Vec<f32>>,
    robust: RobustScratch,
}

/// FedAvg federation runner.
pub struct FedAvgRunner {
    /// Participating clients.
    pub clients: Vec<Client<PpoAgent>>,
    cfg: FedConfig,
    /// Optional `N × N` row-stochastic mixing matrix; row `k` is client
    /// `k`'s personal averaging weights (uniform FedAvg when `None`).
    mixing: Option<Matrix>,
    /// When true, uniform aggregation goes through pairwise-masked secure
    /// aggregation (Sec. 3.4 threat model): the server never sees raw
    /// client updates, yet the average is exact up to float round-off.
    secure: bool,
    rounds_done: usize,
    /// Critic-loss probes collected at every aggregation.
    pub loss_probes: Vec<RoundLossProbe>,
    fault: FaultState,
    robust: RobustConfig,
    telemetry: Telemetry,
    arena: UploadArena,
    agg: AggWorkspace,
}

impl FedAvgRunner {
    /// Builds a uniform-averaging FedAvg federation. As in standard FedAvg,
    /// the server initializes one model and broadcasts it, so all clients
    /// share the initial parameters (averaging unrelated random
    /// initializations would be meaningless — networks are only comparable
    /// in parameter space when they share ancestry).
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        fed_cfg.validate(setups.len());
        let mut clients: Vec<Client<PpoAgent>> = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = PpoAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect();
        let actor0 = clients[0].agent.actor_params();
        let critic0 = clients[0].agent.critic_params();
        for c in &mut clients[1..] {
            c.agent.set_actor_params(&actor0);
            c.agent.set_critic_params(&critic0);
        }
        let n = clients.len();
        Self {
            clients,
            cfg: fed_cfg,
            mixing: None,
            secure: false,
            rounds_done: 0,
            loss_probes: Vec::new(),
            fault: FaultState::new(FaultPlan::none(), QuarantinePolicy::default(), n),
            robust: RobustConfig::default(),
            telemetry: Telemetry::noop(),
            arena: UploadArena::new(),
            agg: AggWorkspace::default(),
        }
    }

    /// Routes runner, agent, and environment metrics to `telemetry`
    /// (per-round phase timings, bytes on the wire, critic-loss probes).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.fault.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]): the
    /// scheduled dropouts, stragglers, corruptions, and stale uploads are
    /// injected at the client→server boundary of every aggregation.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let policy = *self.fault.policy();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Overrides the update-quarantine policy (norm limit, eviction
    /// threshold, staleness decay).
    pub fn with_quarantine_policy(mut self, policy: QuarantinePolicy) -> Self {
        let plan = *self.fault.plan();
        let churn = self.fault.churn().clone();
        let attack = *self.fault.attack();
        let mut fault = FaultState::new(plan, policy, self.clients.len());
        fault.set_telemetry(self.telemetry.clone());
        fault.set_churn(churn);
        fault.set_attack(attack);
        self.fault = fault;
        self
    }

    /// Installs a deterministic Byzantine attack schedule (see
    /// [`crate::attack`]): coalition members' uploads are replaced with
    /// crafted poison at the same client→server boundary the fault layer
    /// uses.
    pub fn with_attack_plan(mut self, plan: AttackPlan) -> Self {
        self.fault.set_attack(plan);
        self
    }

    /// Installs the Byzantine-robust aggregation config (see
    /// [`crate::robust`]): cohort-relative screens run over the gated
    /// uploads, and the configured reduction replaces the plain mean of
    /// the uniform-averaging path. The default ([`RobustConfig::default`])
    /// is bit-identical to a runner without the layer. Screens also guard
    /// the mixing-matrix and secure paths, but those keep their own
    /// reductions (personalized mixing is not a mean; secure aggregation
    /// never reveals individual updates to reduce robustly).
    pub fn with_robust_aggregator(mut self, robust: RobustConfig) -> Self {
        robust.validate();
        self.robust = robust;
        self
    }

    /// Installs a deterministic scenario (workload drift + churn, see
    /// [`pfrl_scenario`]): drifting clients regenerate their episode traces
    /// from the plan, and the plan's churn schedule drives which clients are
    /// in the cohort each round (leavers sit out aggregation; re-joiners
    /// flow through the staleness re-entry blend).
    pub fn with_scenario(mut self, binding: &pfrl_scenario::ScenarioBinding) -> Self {
        crate::client::install_scenario(
            &mut self.clients,
            &mut self.fault,
            binding,
            self.cfg.tasks_per_episode,
        );
        self
    }

    /// Switches every client to DAG workflow scheduling: client `i` draws
    /// its episodes from `pools[i]` (seeded windows of `per_episode`
    /// workflows; `None` replays the full pool each episode).
    pub fn with_workflows(
        mut self,
        pools: Vec<Vec<pfrl_workloads::workflow::Workflow>>,
        per_episode: Option<usize>,
    ) -> Self {
        assert_eq!(pools.len(), self.clients.len(), "one workflow pool per client");
        for (c, pool) in self.clients.iter_mut().zip(pools) {
            c.use_workflows(pool, per_episode);
        }
        self
    }

    /// Enables pairwise-masked secure aggregation for uniform averaging
    /// (ignored when a mixing matrix is installed — personalized weights
    /// require the server to see individual updates).
    pub fn with_secure_aggregation(mut self, secure: bool) -> Self {
        self.secure = secure;
        self
    }

    /// Installs a fixed `N × N` mixing matrix (rows ≈ sum to 1): client `k`
    /// receives `Σ_j W[k][j]·θ_j` instead of the uniform average. Used by
    /// the Fig. 10 `Fed-*-weight` configurations.
    ///
    /// # Panics
    /// If the shape is not `N × N`.
    pub fn with_mixing(mut self, mixing: Matrix) -> Self {
        assert_eq!(
            mixing.shape(),
            (self.clients.len(), self.clients.len()),
            "mixing matrix must be N x N"
        );
        self.mixing = Some(mixing);
        self
    }

    /// Full training run: `comm_every` local episodes, aggregate, repeat.
    /// Resume-safe: starts from `rounds_done`, so a restored runner
    /// continues the remaining schedule.
    pub fn train(&mut self) -> TrainingCurves {
        while self.rounds_done < self.cfg.rounds() {
            self.train_round();
        }
        self.finish()
    }

    /// One communication round: `comm_every` local episodes on every client
    /// (faulted clients keep training locally — only their communication
    /// fails), then an aggregation.
    pub fn train_round(&mut self) {
        let t = self.telemetry.clone();
        let round_span = t.span("fed/round");
        {
            let _local = round_span.child("local_train");
            run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
        }
        let round = self.rounds_done;
        self.aggregate(round);
    }

    /// Runs any leftover episodes past the last aggregation and returns the
    /// curves. Idempotent: each client is trained up to the episode budget.
    pub fn finish(&mut self) -> TrainingCurves {
        let done = self.clients.first().map_or(0, |c| c.episodes_done());
        if self.cfg.episodes > done {
            run_all(&mut self.clients, self.cfg.episodes - done, self.cfg.parallel);
        }
        curves_of(&self.clients)
    }

    /// One aggregation over the round's surviving subset: collect uploads
    /// from connected clients, gate them through the fault/quarantine
    /// layer, average (or mix) actors and critics of the survivors, and
    /// broadcast back to connected clients only. Records the critic-loss
    /// probe.
    pub fn aggregate(&mut self, round: usize) {
        let n = self.clients.len();
        self.fault.begin_round_into(round, &mut self.agg.presences);

        let upload = self.telemetry.span("fed/round/upload");
        self.agg.accepted.clear();
        for i in 0..n {
            let p = self.agg.presences[i];
            if !p.is_present() {
                self.fault.note_missed(i);
                continue;
            }
            // Uploads flow through the pooled arena: one warm
            // `[actor, critic]` buffer pair per client instead of two
            // fresh allocations.
            let mut streams = self.arena.acquire(2);
            self.clients[i].agent.actor_params_into(&mut streams[0]);
            self.clients[i].agent.critic_params_into(&mut streams[1]);
            if let Some(up) = self.fault.gate_upload(round, i, streams, p) {
                self.agg.accepted.push(up);
            }
        }
        drop(upload);
        // Cohort-relative robust screens (no-ops on the default config):
        // outliers among the gated uploads are ejected before any float
        // touches the aggregate, and their buffers return to the arena.
        screen_uploads(
            &self.robust,
            round,
            &mut self.fault,
            &mut self.agg.accepted,
            &mut self.arena,
            &mut self.agg.robust,
        );
        self.fault.record_participation(self.agg.accepted.len());
        if self.agg.accepted.is_empty() {
            // Nothing survived the gate: skip the aggregation entirely;
            // clients keep training on their current parameters.
            self.telemetry.counter("fed/rounds", 1);
            self.rounds_done += 1;
            return;
        }
        let agg_start = std::time::Instant::now();
        let k = self.agg.accepted.len();
        self.agg.survivors.clear();
        self.agg.survivors.extend(self.agg.accepted.iter().map(|u| u.client));
        self.agg.actors.truncate(k);
        self.agg.critics.truncate(k);
        while self.agg.actors.len() < k {
            self.agg.actors.push(Vec::new());
        }
        while self.agg.critics.len() < k {
            self.agg.critics.push(Vec::new());
        }
        for (dst, u) in self.agg.actors.iter_mut().zip(&self.agg.accepted) {
            dst.clone_from(&u.streams[0]);
        }
        for (dst, u) in self.agg.critics.iter_mut().zip(&self.agg.accepted) {
            dst.clone_from(&u.streams[1]);
        }
        // The upload buffers are copied out; park them for the next round.
        for up in self.agg.accepted.drain(..) {
            self.arena.release(up.streams);
        }
        // FedAvg ships both networks client → server.
        self.telemetry.counter(
            "fed/bytes_up",
            param_bytes(&self.agg.actors) + param_bytes(&self.agg.critics),
        );

        let loss_before = self.mean_critic_loss();

        // Averaging (or mixing) first, then the broadcast back to clients,
        // so the two phases time separately.
        let aggregate_span = self.telemetry.span("fed/round/aggregate");
        // Uniform FedAvg computes one shared average (`shared == true`,
        // held in `*_out[0]` — the old `vec![avg; k]` broadcast list is
        // never materialized); a mixing matrix yields one model per
        // survivor slot.
        let shared: bool = match &self.mixing {
            None => {
                self.agg.actor_out.truncate(1);
                self.agg.critic_out.truncate(1);
                if self.agg.actor_out.is_empty() {
                    self.agg.actor_out.push(Vec::new());
                }
                if self.agg.critic_out.is_empty() {
                    self.agg.critic_out.push(Vec::new());
                }
                if self.secure {
                    let round_seed =
                        self.cfg.seed ^ (0x5EC0_0000_0000_0000 | self.rounds_done as u64);
                    // The masking cohort is the surviving subset (fixed
                    // before masks are generated, so cancellation is
                    // exact); slots re-base the pair indices.
                    let mask_all = |ups: &[Vec<f32>]| -> Vec<f32> {
                        let masked: Vec<Vec<f32>> = ups
                            .iter()
                            .enumerate()
                            .map(|(slot, u)| crate::secure::mask_update(u, slot, k, round_seed))
                            .collect();
                        crate::secure::aggregate_masked(&masked, k)
                            .expect("cohort fixed at masking time")
                    };
                    self.agg.actor_out[0] = mask_all(&self.agg.actors);
                    self.agg.critic_out[0] = mask_all(&self.agg.critics);
                } else {
                    reduce_into(
                        self.robust.aggregator,
                        &self.agg.actors,
                        &mut self.agg.robust,
                        &mut self.agg.actor_out[0],
                        &self.telemetry,
                    );
                    reduce_into(
                        self.robust.aggregator,
                        &self.agg.critics,
                        &mut self.agg.robust,
                        &mut self.agg.critic_out[0],
                        &self.telemetry,
                    );
                }
                true
            }
            Some(mix) => {
                let sub = restrict_mixing(mix, &self.agg.survivors, n);
                apply_mixing_matrix_into(
                    &sub,
                    &self.agg.actors,
                    self.cfg.parallel,
                    &mut self.agg.actor_out,
                );
                apply_mixing_matrix_into(
                    &sub,
                    &self.agg.critics,
                    self.cfg.parallel,
                    &mut self.agg.critic_out,
                );
                false
            }
        };
        drop(aggregate_span);

        {
            let _broadcast = self.telemetry.span("fed/round/broadcast");
            for slot in 0..k {
                let i = self.agg.survivors[slot];
                let src = if shared { 0 } else { slot };
                self.clients[i].agent.set_actor_params(&self.agg.actor_out[src]);
                self.clients[i].agent.set_critic_params(&self.agg.critic_out[src]);
            }
            if shared {
                // Connected clients whose uploads were quarantined away
                // still receive the round's uniform average.
                for i in 0..n {
                    if self.agg.presences[i].is_present() && !self.agg.survivors.contains(&i) {
                        self.clients[i].agent.set_actor_params(&self.agg.actor_out[0]);
                        self.clients[i].agent.set_critic_params(&self.agg.critic_out[0]);
                        self.fault.note_refreshed(i);
                    }
                }
            }
        }
        // Same accounting as materializing one model per survivor slot
        // (the uniform arm broadcasts the identical average k times).
        let per_model = (self.agg.actor_out[0].len() + self.agg.critic_out[0].len()) as u64 * 4;
        self.telemetry.counter("fed/bytes_down", k as u64 * per_model);
        self.telemetry.observe("fed/agg_wall_us", agg_start.elapsed().as_secs_f64() * 1e6);
        self.telemetry.gauge("fed/arena_bytes", self.arena.pooled_bytes() as f64);

        let loss_after = self.mean_critic_loss();
        if let (Some(b), Some(a)) = (loss_before, loss_after) {
            self.telemetry.observe("fed/critic_loss_before_agg", b);
            self.telemetry.observe("fed/critic_loss_after_agg", a);
            self.loss_probes.push(RoundLossProbe { round, loss_before: b, loss_after: a });
        }
        self.telemetry.counter("fed/rounds", 1);
        self.rounds_done += 1;
    }

    /// Mean critic loss across clients on their own last episodes, `None`
    /// before any training happened.
    fn mean_critic_loss(&self) -> Option<f64> {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for c in &self.clients {
            if let Some(l) = c.agent.critic_loss_on_last_episode() {
                sum += l as f64;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }

    /// Communication rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Bytes of `f32` capacity pooled in the upload arena between rounds.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.pooled_bytes()
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            algo: 1,
            seed: self.cfg.seed,
            episodes: self.cfg.episodes,
            comm_every: self.cfg.comm_every,
            participation_k: self.cfg.participation_k,
            n_clients: self.clients.len(),
        }
    }

    /// Serializes the full training state (round cursor, loss probes,
    /// per-client agent snapshots and reward histories, fault bookkeeping)
    /// into a standalone checkpoint. Construction-time configuration
    /// (mixing matrix, secure flag, fault plan) is *not* stored — restore
    /// into a runner built the same way.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.fingerprint().write(&mut w);
        w.usize(self.rounds_done);
        w.usize(self.loss_probes.len());
        for p in &self.loss_probes {
            w.usize(p.round);
            w.f64(p.loss_before);
            w.f64(p.loss_after);
        }
        for c in &self.clients {
            w.vec_f64(&c.rewards);
            w.usize(c.episodes_done());
            write_ppo_agent(&mut w, &c.agent.snapshot());
        }
        for f in self.fault.client_states() {
            write_client_fault(&mut w, f);
        }
        w.finish()
    }

    /// Restores state captured by [`Self::checkpoint_bytes`] into a runner
    /// built with the same configuration.
    ///
    /// Malformed, truncated, or mismatched checkpoints surface as
    /// [`FedError::Checkpoint`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), FedError> {
        self.restore_impl(bytes).map_err(FedError::checkpoint)
    }

    fn restore_impl(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes)?;
        Fingerprint::check(&mut r, &self.fingerprint())?;
        let rounds_done = r.usize()?;
        let n_probes = r.usize()?;
        let mut probes = Vec::with_capacity(n_probes);
        for _ in 0..n_probes {
            probes.push(RoundLossProbe {
                round: r.usize()?,
                loss_before: r.f64()?,
                loss_after: r.f64()?,
            });
        }
        let mut snaps = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            let rewards = r.vec_f64()?;
            let episodes_done = r.usize()?;
            snaps.push((rewards, episodes_done, read_ppo_agent(&mut r)?));
        }
        let mut faults = Vec::with_capacity(self.clients.len());
        for _ in 0..self.clients.len() {
            faults.push(read_client_fault(&mut r)?);
        }
        r.finish()?;
        self.rounds_done = rounds_done;
        self.loss_probes = probes;
        for (c, (rewards, episodes_done, snap)) in self.clients.iter_mut().zip(snaps) {
            c.rewards = rewards;
            c.restore_episode_cursor(episodes_done);
            c.agent.restore(&snap);
        }
        self.fault.restore_client_states(faults);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;
    use pfrl_nn::params::average_params;

    fn fed(episodes: usize) -> FedConfig {
        FedConfig {
            episodes,
            comm_every: 2,
            participation_k: 1,
            tasks_per_episode: Some(12),
            seed: 5,
            parallel: false,
        }
    }

    #[test]
    fn aggregation_synchronizes_all_clients() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(4));
        r.train();
        // After the final aggregation + leftover-free schedule, all actors
        // equal (4 episodes = 2 rounds exactly).
        let p0 = r.clients[0].agent.actor_params();
        for c in &r.clients[1..] {
            assert_eq!(c.agent.actor_params(), p0);
        }
        assert_eq!(r.loss_probes.len(), 2);
    }

    #[test]
    fn average_preserves_parameter_mean() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2));
        run_all(&mut r.clients, 2, false);
        let before: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        let mean = average_params(&before);
        r.aggregate(0);
        let after = r.clients[0].agent.actor_params();
        for (a, m) in after.iter().zip(&mean) {
            assert!((a - m).abs() < 1e-6);
        }
    }

    #[test]
    fn identity_mixing_matrix_leaves_clients_independent() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_mixing(Matrix::identity(2));
        run_all(&mut r.clients, 1, false);
        let before: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        r.aggregate(0);
        for (c, b) in r.clients.iter().zip(&before) {
            assert_eq!(&c.agent.actor_params(), b);
        }
    }

    #[test]
    fn loss_probe_records_before_and_after() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2));
        run_all(&mut r.clients, 2, false);
        r.aggregate(0);
        assert_eq!(r.loss_probes.len(), 1);
        let p = r.loss_probes[0];
        assert!(p.loss_before.is_finite() && p.loss_after.is_finite());
        assert!(p.loss_before >= 0.0 && p.loss_after >= 0.0);
    }

    #[test]
    fn secure_aggregation_matches_plain_average() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mut plain =
            FedAvgRunner::new(setups.clone(), dims, env_cfg, PpoConfig::default(), fed(2));
        let mut secure = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_secure_aggregation(true);
        run_all(&mut plain.clients, 2, false);
        run_all(&mut secure.clients, 2, false);
        plain.aggregate(0);
        secure.aggregate(0);
        let a = plain.clients[0].agent.actor_params();
        let b = secure.clients[0].agent.actor_params();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "N x N")]
    fn wrong_mixing_shape_rejected() {
        let (setups, dims, env_cfg) = small_setups(2);
        let _ = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_mixing(Matrix::identity(3));
    }
}
