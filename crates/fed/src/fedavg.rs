//! Classic FedAvg over actor *and* critic parameters (McMahan et al.),
//! the paper's traditional-FRL baseline — optionally with a fixed
//! per-client mixing matrix for the Fig. 10 similarity-weighting study.

use crate::client::Client;
use crate::config::{ClientSetup, FedConfig};
use crate::curves::TrainingCurves;
use crate::independent::{agent_seed, curves_of, run_all};
use pfrl_nn::params::{apply_mixing_matrix, average_params};
use pfrl_rl::{PpoAgent, PpoConfig};
use pfrl_sim::{EnvConfig, EnvDims};
use pfrl_telemetry::Telemetry;
use pfrl_tensor::Matrix;

/// Wire size of a flat `f32` parameter vector, for bytes-on-wire counters.
pub(crate) fn param_bytes(params: &[Vec<f32>]) -> u64 {
    params.iter().map(|p| p.len() as u64 * 4).sum()
}

/// Mean critic loss across clients immediately before and after one
/// aggregation (the Fig. 9 probe: heterogeneity makes the aggregated critic
/// evaluate local trajectories worse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundLossProbe {
    /// Communication round index.
    pub round: usize,
    /// Mean critic MSE on each client's own last episode, before loading
    /// the aggregate.
    pub loss_before: f64,
    /// Same, after loading the aggregate.
    pub loss_after: f64,
}

/// FedAvg federation runner.
pub struct FedAvgRunner {
    /// Participating clients.
    pub clients: Vec<Client<PpoAgent>>,
    cfg: FedConfig,
    /// Optional `N × N` row-stochastic mixing matrix; row `k` is client
    /// `k`'s personal averaging weights (uniform FedAvg when `None`).
    mixing: Option<Matrix>,
    /// When true, uniform aggregation goes through pairwise-masked secure
    /// aggregation (Sec. 3.4 threat model): the server never sees raw
    /// client updates, yet the average is exact up to float round-off.
    secure: bool,
    rounds_done: usize,
    /// Critic-loss probes collected at every aggregation.
    pub loss_probes: Vec<RoundLossProbe>,
    telemetry: Telemetry,
}

impl FedAvgRunner {
    /// Builds a uniform-averaging FedAvg federation. As in standard FedAvg,
    /// the server initializes one model and broadcasts it, so all clients
    /// share the initial parameters (averaging unrelated random
    /// initializations would be meaningless — networks are only comparable
    /// in parameter space when they share ancestry).
    pub fn new(
        setups: Vec<ClientSetup>,
        dims: EnvDims,
        env_cfg: EnvConfig,
        ppo_cfg: PpoConfig,
        fed_cfg: FedConfig,
    ) -> Self {
        fed_cfg.validate(setups.len());
        let mut clients: Vec<Client<PpoAgent>> = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let agent = PpoAgent::new(
                    dims.state_dim(),
                    dims.action_dim(),
                    ppo_cfg,
                    agent_seed(&fed_cfg, i),
                );
                Client::new(s, agent, dims, env_cfg, &fed_cfg, i)
            })
            .collect();
        let actor0 = clients[0].agent.actor_params();
        let critic0 = clients[0].agent.critic_params();
        for c in &mut clients[1..] {
            c.agent.set_actor_params(&actor0);
            c.agent.set_critic_params(&critic0);
        }
        Self {
            clients,
            cfg: fed_cfg,
            mixing: None,
            secure: false,
            rounds_done: 0,
            loss_probes: Vec::new(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Routes runner, agent, and environment metrics to `telemetry`
    /// (per-round phase timings, bytes on the wire, critic-loss probes).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        for c in &mut self.clients {
            c.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
        self
    }

    /// Enables pairwise-masked secure aggregation for uniform averaging
    /// (ignored when a mixing matrix is installed — personalized weights
    /// require the server to see individual updates).
    pub fn with_secure_aggregation(mut self, secure: bool) -> Self {
        self.secure = secure;
        self
    }

    /// Installs a fixed `N × N` mixing matrix (rows ≈ sum to 1): client `k`
    /// receives `Σ_j W[k][j]·θ_j` instead of the uniform average. Used by
    /// the Fig. 10 `Fed-*-weight` configurations.
    ///
    /// # Panics
    /// If the shape is not `N × N`.
    pub fn with_mixing(mut self, mixing: Matrix) -> Self {
        assert_eq!(
            mixing.shape(),
            (self.clients.len(), self.clients.len()),
            "mixing matrix must be N x N"
        );
        self.mixing = Some(mixing);
        self
    }

    /// Full training run: `comm_every` local episodes, aggregate, repeat.
    pub fn train(&mut self) -> TrainingCurves {
        let rounds = self.cfg.rounds();
        for round in 0..rounds {
            let t = self.telemetry.clone();
            let round_span = t.span("fed/round");
            {
                let _local = round_span.child("local_train");
                run_all(&mut self.clients, self.cfg.comm_every, self.cfg.parallel);
            }
            self.aggregate(round);
        }
        let leftover = self.cfg.episodes - rounds * self.cfg.comm_every;
        if leftover > 0 {
            run_all(&mut self.clients, leftover, self.cfg.parallel);
        }
        curves_of(&self.clients)
    }

    /// One aggregation: average (or mix) actor and critic parameters and
    /// broadcast, recording the critic-loss probe.
    pub fn aggregate(&mut self, round: usize) {
        let upload = self.telemetry.span("fed/round/upload");
        let actors: Vec<Vec<f32>> = self.clients.iter().map(|c| c.agent.actor_params()).collect();
        let critics: Vec<Vec<f32>> = self.clients.iter().map(|c| c.agent.critic_params()).collect();
        drop(upload);
        // FedAvg ships both networks client → server.
        self.telemetry.counter("fed/bytes_up", param_bytes(&actors) + param_bytes(&critics));

        let loss_before = self.mean_critic_loss();

        // Averaging (or mixing) first, then the broadcast back to clients,
        // so the two phases time separately.
        let aggregate_span = self.telemetry.span("fed/round/aggregate");
        let (actor_out, critic_out): (Vec<Vec<f32>>, Vec<Vec<f32>>) = match &self.mixing {
            None => {
                let (actor_avg, critic_avg) = if self.secure {
                    let n = self.clients.len();
                    let round_seed =
                        self.cfg.seed ^ (0x5EC0_0000_0000_0000 | self.rounds_done as u64);
                    let mask_all = |ups: &[Vec<f32>]| -> Vec<f32> {
                        let masked: Vec<Vec<f32>> = ups
                            .iter()
                            .enumerate()
                            .map(|(i, u)| crate::secure::mask_update(u, i, n, round_seed))
                            .collect();
                        crate::secure::aggregate_masked(&masked)
                    };
                    (mask_all(&actors), mask_all(&critics))
                } else {
                    (average_params(&actors), average_params(&critics))
                };
                let n = self.clients.len();
                (vec![actor_avg; n], vec![critic_avg; n])
            }
            Some(mix) => (apply_mixing_matrix(mix, &actors), apply_mixing_matrix(mix, &critics)),
        };
        drop(aggregate_span);

        {
            let _broadcast = self.telemetry.span("fed/round/broadcast");
            for (c, (a, v)) in self.clients.iter_mut().zip(actor_out.iter().zip(&critic_out)) {
                c.agent.set_actor_params(a);
                c.agent.set_critic_params(v);
            }
        }
        self.telemetry
            .counter("fed/bytes_down", param_bytes(&actor_out) + param_bytes(&critic_out));

        let loss_after = self.mean_critic_loss();
        if let (Some(b), Some(a)) = (loss_before, loss_after) {
            self.telemetry.observe("fed/critic_loss_before_agg", b);
            self.telemetry.observe("fed/critic_loss_after_agg", a);
            self.loss_probes.push(RoundLossProbe { round, loss_before: b, loss_after: a });
        }
        self.telemetry.counter("fed/rounds", 1);
        self.rounds_done += 1;
    }

    /// Mean critic loss across clients on their own last episodes, `None`
    /// before any training happened.
    fn mean_critic_loss(&self) -> Option<f64> {
        let losses: Vec<f64> = self
            .clients
            .iter()
            .filter_map(|c| c.agent.critic_loss_on_last_episode().map(|l| l as f64))
            .collect();
        if losses.is_empty() {
            None
        } else {
            Some(losses.iter().sum::<f64>() / losses.len() as f64)
        }
    }

    /// The schedule in use.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::small_setups;

    fn fed(episodes: usize) -> FedConfig {
        FedConfig {
            episodes,
            comm_every: 2,
            participation_k: 1,
            tasks_per_episode: Some(12),
            seed: 5,
            parallel: false,
        }
    }

    #[test]
    fn aggregation_synchronizes_all_clients() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(4));
        r.train();
        // After the final aggregation + leftover-free schedule, all actors
        // equal (4 episodes = 2 rounds exactly).
        let p0 = r.clients[0].agent.actor_params();
        for c in &r.clients[1..] {
            assert_eq!(c.agent.actor_params(), p0);
        }
        assert_eq!(r.loss_probes.len(), 2);
    }

    #[test]
    fn average_preserves_parameter_mean() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2));
        run_all(&mut r.clients, 2, false);
        let before: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        let mean = average_params(&before);
        r.aggregate(0);
        let after = r.clients[0].agent.actor_params();
        for (a, m) in after.iter().zip(&mean) {
            assert!((a - m).abs() < 1e-6);
        }
    }

    #[test]
    fn identity_mixing_matrix_leaves_clients_independent() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_mixing(Matrix::identity(2));
        run_all(&mut r.clients, 1, false);
        let before: Vec<Vec<f32>> = r.clients.iter().map(|c| c.agent.actor_params()).collect();
        r.aggregate(0);
        for (c, b) in r.clients.iter().zip(&before) {
            assert_eq!(&c.agent.actor_params(), b);
        }
    }

    #[test]
    fn loss_probe_records_before_and_after() {
        let (setups, dims, env_cfg) = small_setups(2);
        let mut r = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2));
        run_all(&mut r.clients, 2, false);
        r.aggregate(0);
        assert_eq!(r.loss_probes.len(), 1);
        let p = r.loss_probes[0];
        assert!(p.loss_before.is_finite() && p.loss_after.is_finite());
        assert!(p.loss_before >= 0.0 && p.loss_after >= 0.0);
    }

    #[test]
    fn secure_aggregation_matches_plain_average() {
        let (setups, dims, env_cfg) = small_setups(3);
        let mut plain =
            FedAvgRunner::new(setups.clone(), dims, env_cfg, PpoConfig::default(), fed(2));
        let mut secure = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_secure_aggregation(true);
        run_all(&mut plain.clients, 2, false);
        run_all(&mut secure.clients, 2, false);
        plain.aggregate(0);
        secure.aggregate(0);
        let a = plain.clients[0].agent.actor_params();
        let b = secure.clients[0].agent.actor_params();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "N x N")]
    fn wrong_mixing_shape_rejected() {
        let (setups, dims, env_cfg) = small_setups(2);
        let _ = FedAvgRunner::new(setups, dims, env_cfg, PpoConfig::default(), fed(2))
            .with_mixing(Matrix::identity(3));
    }
}
