//! Deterministic Byzantine attack schedules — the adversarial counterpart
//! of [`crate::fault::FaultPlan`].
//!
//! PR 3's quarantine gate rejects *syntactically* broken uploads (NaN/Inf,
//! absolute norm blow-up). A Byzantine client is nastier: it ships
//! well-formed parameter vectors crafted to poison the aggregate. This
//! module makes that adversary first-class and bit-reproducible:
//!
//! * [`AttackPlan`] — a seeded, purely functional schedule. Coalition
//!   membership is a pure function of `(seed, client)` and every crafted
//!   vector is a pure function of `(seed, round, client)`, so attack runs
//!   replay identically at any thread count and need no checkpoint state
//!   (the same contract as `FaultPlan` / `ScenarioPlan`).
//! * Four upload models, each tuned to slip past the absolute quarantine
//!   gate and stress a different aggregator weakness:
//!   - [`AttackModel::SignFlip`] — the classic gradient-reversal attack:
//!     the honest update negated and scaled by λ. Same norm at λ = 1, so
//!     the absolute gate passes it; a plain mean is dragged backwards.
//!   - [`AttackModel::GaussianNoise`] — i.i.d. Gaussian noise re-scaled to
//!     the honest upload's L2 norm, so both the absolute gate and a
//!     relative-norm band pass it. Defeats nothing by itself but erases
//!     the client's signal and inflates variance.
//!   - [`AttackModel::Collude`] — every coalition member uploads the
//!     *identical* crafted vector (a seeded random direction at a fixed
//!     norm). Against similarity-weighted aggregation (PFRL-DM attention)
//!     the replicas reinforce each other and capture attention mass.
//!   - [`AttackModel::StealthScale`] — slow multiplicative drift,
//!     `(1 + rate)^t` after `t` attacked rounds: each individual upload
//!     stays far below the quarantine norm limit while the aggregate walks
//!     off over time.
//!
//! Injection happens at the same client→server boundary as fault
//! injection — [`crate::fault::FaultState::gate_upload`] — so the
//! adversary composes with dropouts, stragglers, corruption, staleness,
//! and churn. Local replicas keep training honestly; only the *upload* is
//! adversarial, which keeps reward curves rectangular and local streams
//! independent of the attack schedule.

use pfrl_stats::seeding::SeedStream;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// How an adversarial client crafts its upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackModel {
    /// Upload `-λ · θ` instead of the honest `θ`.
    SignFlip {
        /// Scale of the negated update (λ = 1 preserves the honest norm).
        lambda: f32,
    },
    /// Upload i.i.d. Gaussian noise re-scaled to the honest upload's L2
    /// norm — passes both the absolute gate and a relative-norm band.
    GaussianNoise,
    /// The whole coalition uploads one identical seeded random direction
    /// scaled to `norm` (chosen near honest-vector norms to evade band
    /// screens while the replicas capture similarity/attention mass).
    Collude {
        /// L2 norm of the crafted vector.
        norm: f32,
    },
    /// Multiplicative drift: the honest upload scaled by
    /// `(1 + rate)^(t + 1)` after `t` attacked rounds — each round's norm
    /// stays below the quarantine limit while the walk compounds.
    StealthScale {
        /// Per-round growth rate (e.g. 0.05 = 5% per round).
        rate: f32,
    },
}

impl AttackModel {
    /// Short stable label for telemetry, reports, and manifests.
    pub fn name(&self) -> &'static str {
        match self {
            AttackModel::SignFlip { .. } => "sign_flip",
            AttackModel::GaussianNoise => "gaussian_noise",
            AttackModel::Collude { .. } => "collude",
            AttackModel::StealthScale { .. } => "stealth_scale",
        }
    }
}

/// A deterministic, seeded Byzantine attack schedule.
///
/// Pure function of `(seed, round, client)` throughout: coalition
/// membership derives from `(seed, client)`, crafted vectors from
/// `(seed, round, client)` (or `(seed, round)` for colluders, which is
/// what makes their replicas identical). Construction-time config, like
/// `FaultPlan`: never checkpointed — a restored runner replays the same
/// schedule by pure derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPlan {
    /// Root seed of the attack schedule (independent of the training seed).
    pub seed: u64,
    /// Fraction of clients in the adversarial coalition. Membership is a
    /// per-client Bernoulli draw, so the realized coalition size is the
    /// binomial mean only in expectation.
    pub fraction: f64,
    /// The upload model every coalition member follows.
    pub model: AttackModel,
    /// First round the coalition attacks (earlier rounds are honest).
    pub start_round: usize,
}

impl AttackPlan {
    /// The no-attack plan: every client is honest and no RNG is ever
    /// drawn, so runs are bit-identical to a runner without the layer.
    pub fn none() -> Self {
        Self {
            seed: 0,
            fraction: 0.0,
            model: AttackModel::SignFlip { lambda: 1.0 },
            start_round: 0,
        }
    }

    /// An inactive plan carrying a seed, for builder-style composition.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::none() }
    }

    /// Builder: a sign-flip coalition of the given fraction and scale.
    pub fn with_sign_flip(mut self, fraction: f64, lambda: f32) -> Self {
        self.fraction = fraction;
        self.model = AttackModel::SignFlip { lambda };
        self
    }

    /// Builder: a norm-matched Gaussian-noise coalition.
    pub fn with_gaussian_noise(mut self, fraction: f64) -> Self {
        self.fraction = fraction;
        self.model = AttackModel::GaussianNoise;
        self
    }

    /// Builder: a colluding coalition uploading identical vectors of the
    /// given norm.
    pub fn with_collusion(mut self, fraction: f64, norm: f32) -> Self {
        self.fraction = fraction;
        self.model = AttackModel::Collude { norm };
        self
    }

    /// Builder: a stealth-scaling coalition drifting at `rate` per round.
    pub fn with_stealth_scale(mut self, fraction: f64, rate: f32) -> Self {
        self.fraction = fraction;
        self.model = AttackModel::StealthScale { rate };
        self
    }

    /// Builder: delays the campaign until `round`.
    pub fn starting_at(mut self, round: usize) -> Self {
        self.start_round = round;
        self
    }

    /// Whether any client can ever attack.
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Panics on fractions outside `[0, 1]` or degenerate model params.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "attack fraction {} outside [0, 1]",
            self.fraction
        );
        match self.model {
            AttackModel::SignFlip { lambda } => {
                assert!(lambda.is_finite() && lambda > 0.0, "sign-flip lambda {lambda} invalid")
            }
            AttackModel::GaussianNoise => {}
            AttackModel::Collude { norm } => {
                assert!(norm.is_finite() && norm > 0.0, "collusion norm {norm} invalid")
            }
            AttackModel::StealthScale { rate } => {
                assert!(rate.is_finite() && rate > 0.0, "stealth-scale rate {rate} invalid")
            }
        }
    }

    /// Whether `client` belongs to the coalition. Pure in
    /// `(seed, client)`: membership is fixed for the whole run, which is
    /// what lets colluders and stealth-scalers act coherently across
    /// rounds without shared state.
    pub fn is_adversary(&self, client: usize) -> bool {
        if !self.is_active() {
            return false;
        }
        let seed = SeedStream::new(self.seed).child("attacker").index(client as u64).seed();
        let mut rng = SmallRng::seed_from_u64(seed);
        rng.gen_range(0.0..1.0) < self.fraction
    }

    /// Realized coalition size among the first `n` clients.
    pub fn coalition_size(&self, n: usize) -> usize {
        (0..n).filter(|&k| self.is_adversary(k)).count()
    }

    /// Whether the coalition attacks at `round` (campaign has started).
    pub fn fires_at(&self, round: usize) -> bool {
        self.is_active() && round >= self.start_round
    }

    /// Replaces `streams` (the honest upload) with the crafted adversarial
    /// upload for `(round, client)`. The caller must have checked
    /// [`Self::is_adversary`] and [`Self::fires_at`]; this method is pure
    /// and in-place, so pooled arena buffers are reused without fresh
    /// allocation at steady state.
    pub fn poison(&self, round: usize, client: usize, streams: &mut [Vec<f32>]) {
        match self.model {
            AttackModel::SignFlip { lambda } => {
                for s in streams.iter_mut() {
                    for v in s.iter_mut() {
                        *v *= -lambda;
                    }
                }
            }
            AttackModel::GaussianNoise => {
                for (si, s) in streams.iter_mut().enumerate() {
                    let target = l2_norm(s);
                    let seed = SeedStream::new(self.seed)
                        .child("noise")
                        .index(round as u64)
                        .index(client as u64)
                        .index(si as u64)
                        .seed();
                    let mut rng = SmallRng::seed_from_u64(seed);
                    for v in s.iter_mut() {
                        *v = standard_normal(&mut rng);
                    }
                    rescale(s, target);
                }
            }
            AttackModel::Collude { norm } => {
                // No client index in the derivation: every coalition
                // member crafts the *same* vector for this round.
                for (si, s) in streams.iter_mut().enumerate() {
                    let seed = SeedStream::new(self.seed)
                        .child("collude")
                        .index(round as u64)
                        .index(si as u64)
                        .seed();
                    let mut rng = SmallRng::seed_from_u64(seed);
                    for v in s.iter_mut() {
                        *v = standard_normal(&mut rng);
                    }
                    rescale(s, norm);
                }
            }
            AttackModel::StealthScale { rate } => {
                let t = (round - self.start_round) as i32;
                let scale = (1.0 + rate).powi(t + 1);
                for s in streams.iter_mut() {
                    for v in s.iter_mut() {
                        *v *= scale;
                    }
                }
            }
        }
    }
}

/// L2 norm of a flat vector (same accumulation order as the quarantine
/// gate's check, so crafted norms and gate measurements agree bitwise).
fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Scales `v` in place to L2 norm `target` (no-op on zero vectors).
fn rescale(v: &mut [f32], target: f32) {
    let norm = l2_norm(v);
    if norm > 0.0 && target.is_finite() {
        let k = target / norm;
        for x in v.iter_mut() {
            *x *= k;
        }
    }
}

/// One standard-normal draw via Box–Muller (the offline `rand` shim has no
/// normal distribution, and hand-rolling keeps the byte stream pinned).
fn standard_normal(rng: &mut SmallRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_and_has_no_adversaries() {
        let p = AttackPlan::none();
        assert!(!p.is_active());
        assert!(!p.fires_at(0));
        assert_eq!(p.coalition_size(64), 0);
    }

    #[test]
    fn membership_is_deterministic_and_seed_sensitive() {
        let a = AttackPlan::new(9).with_sign_flip(0.3, 1.0);
        let b = AttackPlan::new(9).with_sign_flip(0.3, 1.0);
        let c = AttackPlan::new(10).with_sign_flip(0.3, 1.0);
        let members = |p: &AttackPlan| (0..64).map(|k| p.is_adversary(k)).collect::<Vec<_>>();
        assert_eq!(members(&a), members(&b));
        assert_ne!(members(&a), members(&c));
    }

    #[test]
    fn coalition_size_roughly_matches_fraction() {
        let p = AttackPlan::new(3).with_sign_flip(0.25, 1.0);
        let frac = p.coalition_size(4000) as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "coalition fraction {frac}");
    }

    #[test]
    fn sign_flip_negates_and_scales() {
        let p = AttackPlan::new(1).with_sign_flip(1.0, 2.0);
        let mut up = vec![vec![1.0f32, -3.0], vec![0.5]];
        p.poison(0, 0, &mut up);
        assert_eq!(up, vec![vec![-2.0f32, 6.0], vec![-1.0]]);
    }

    #[test]
    fn gaussian_noise_is_norm_matched_and_finite() {
        let p = AttackPlan::new(1).with_gaussian_noise(1.0);
        let honest = vec![vec![3.0f32, 4.0, 0.0, 0.0]];
        let mut up = honest.clone();
        p.poison(2, 5, &mut up);
        assert_ne!(up, honest);
        assert!(up[0].iter().all(|v| v.is_finite()));
        let norm = up[0].iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 5.0).abs() < 1e-3, "norm {norm} not matched to honest 5.0");
    }

    #[test]
    fn colluders_upload_identical_vectors() {
        let p = AttackPlan::new(4).with_collusion(1.0, 10.0);
        let mut a = vec![vec![1.0f32; 32]];
        let mut b = vec![vec![-7.5f32; 32]];
        p.poison(3, 0, &mut a);
        p.poison(3, 9, &mut b);
        assert_eq!(a, b, "coalition members must replicate the same vector");
        let norm = a[0].iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 10.0).abs() < 1e-3);
        // A different round crafts a different vector.
        let mut c = vec![vec![1.0f32; 32]];
        p.poison(4, 0, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn stealth_scale_compounds_but_stays_below_quarantine_limit() {
        let p = AttackPlan::new(2).with_stealth_scale(1.0, 0.05);
        let mut prev_norm = 0.0f32;
        for round in 0..100 {
            let mut up = vec![vec![3.0f32, 4.0]];
            p.poison(round, 0, &mut up);
            let norm = up[0].iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm > prev_norm, "drift must compound");
            assert!(norm < 1e4, "round {round} norm {norm} tripped the absolute gate");
            prev_norm = norm;
        }
    }

    #[test]
    fn poison_is_deterministic() {
        let p = AttackPlan::new(8).with_gaussian_noise(1.0);
        let mut a = vec![vec![1.0f32; 16]];
        let mut b = vec![vec![1.0f32; 16]];
        p.poison(7, 3, &mut a);
        p.poison(7, 3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_fraction_rejected() {
        AttackPlan::new(0).with_sign_flip(1.5, 1.0).validate();
    }
}
