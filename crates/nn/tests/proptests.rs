//! Property-based tests of the neural-network stack.

use pfrl_nn::params::{
    apply_mixing_matrix, average_params, coordinate_median_into, trimmed_mean_into,
    weighted_combination,
};
use pfrl_nn::{
    multi_head_attention_weights, multi_head_attention_weights_into, Activation, Adam,
    AttentionScratch, Mlp, MultiHeadConfig,
};
use pfrl_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mlp_strategy() -> impl Strategy<Value = Mlp> {
    (1usize..6, 1usize..8, 1usize..4, 0u64..1000).prop_map(|(i, h, o, seed)| {
        Mlp::new(&[i, h, o], Activation::Tanh, &mut SmallRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// flat_params → set_flat_params is the identity on behavior.
    #[test]
    fn param_roundtrip_identity(net in mlp_strategy(), x in proptest::collection::vec(-2.0f32..2.0, 1..6)) {
        prop_assume!(x.len() == net.in_dim());
        let before = net.forward_one(&x);
        let mut copy = net.clone();
        let p = net.flat_params();
        copy.set_flat_params(&p);
        let after = copy.forward_one(&x);
        prop_assert_eq!(before, after);
        prop_assert_eq!(p.len(), net.param_count());
    }

    /// tanh MLP outputs stay finite for bounded inputs.
    #[test]
    fn outputs_finite(net in mlp_strategy(), x in proptest::collection::vec(-10.0f32..10.0, 1..6)) {
        prop_assume!(x.len() == net.in_dim());
        let y = net.forward_one(&x);
        prop_assert!(y.iter().all(|v| v.is_finite()));
        prop_assert_eq!(y.len(), net.out_dim());
    }

    /// Average of identical parameter vectors is the vector itself;
    /// average is permutation-invariant.
    #[test]
    fn average_params_properties(
        v in proptest::collection::vec(-5.0f32..5.0, 1..40),
        n in 1usize..6,
    ) {
        let stack = vec![v.clone(); n];
        let avg = average_params(&stack);
        for (a, b) in avg.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// A weighted combination with a one-hot weight vector selects that
    /// client's parameters exactly.
    #[test]
    fn one_hot_combination_selects(
        params in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 8), 2..5),
        pick_raw in 0usize..5,
    ) {
        let pick = pick_raw % params.len();
        let mut w = vec![0.0f32; params.len()];
        w[pick] = 1.0;
        let got = weighted_combination(&w, &params);
        prop_assert_eq!(got, params[pick].clone());
    }

    /// Identity mixing is a no-op for any parameter stack.
    #[test]
    fn identity_mixing_noop(
        params in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 6), 1..5),
    ) {
        let out = apply_mixing_matrix(&Matrix::identity(params.len()), &params);
        prop_assert_eq!(out, params);
    }

    /// Attention weights are always a row-stochastic matrix, for any
    /// client parameters (including degenerate all-equal ones).
    #[test]
    fn attention_always_row_stochastic(
        params in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 16), 1..6),
        heads in 1usize..5,
    ) {
        let cfg = MultiHeadConfig { heads, ..Default::default() };
        let w = multi_head_attention_weights(&params, &cfg);
        prop_assert_eq!(w.shape(), (params.len(), params.len()));
        for r in 0..w.rows() {
            let sum: f32 = w.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "row {} sums to {}", r, sum);
            prop_assert!(w.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// A top-k cutoff at least as large as the cohort is a no-op: the
    /// sparse path must reproduce the dense mixing weights bit for bit.
    #[test]
    fn top_k_geq_cohort_is_bitwise_dense(
        params in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 16), 1..6),
        extra in 0usize..4,
    ) {
        let dense = MultiHeadConfig::default();
        let sparse = MultiHeadConfig { top_k: Some(params.len() + extra), ..dense };
        let wd = multi_head_attention_weights(&params, &dense);
        let ws = multi_head_attention_weights(&params, &sparse);
        prop_assert_eq!(wd.as_slice(), ws.as_slice());
    }

    /// The workspace (`_into`) attention form is bit-identical to the
    /// allocating form, dense and top-k alike, including when the scratch
    /// is reused across differently-shaped calls.
    #[test]
    fn attention_into_bitwise_equals_allocating(
        params in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 16), 1..8),
        top_k in 1usize..10,
        use_top_k in 0usize..2,
    ) {
        let cfg = MultiHeadConfig {
            top_k: (use_top_k == 1).then_some(top_k),
            ..Default::default()
        };
        let fresh = multi_head_attention_weights(&params, &cfg);
        let mut ws = AttentionScratch::new();
        let mut out = Matrix::default();
        // Dirty the scratch with a different shape first: reuse must not
        // leak state between cohorts.
        multi_head_attention_weights_into(&[vec![1.0; 4], vec![2.0; 4]], &cfg, false, &mut ws, &mut out);
        multi_head_attention_weights_into(&params, &cfg, false, &mut ws, &mut out);
        prop_assert_eq!(out.as_slice(), fresh.as_slice());
    }

    /// Top-k masking keeps every row a distribution: entries in [0, 1],
    /// rows summing to 1, and — since each head keeps at most k scores —
    /// at most `heads · k` nonzeros per row after head averaging.
    #[test]
    fn top_k_rows_stay_stochastic(
        params in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 16), 2..8),
        top_k in 1usize..6,
    ) {
        let cfg = MultiHeadConfig { top_k: Some(top_k), ..Default::default() };
        let w = multi_head_attention_weights(&params, &cfg);
        for r in 0..w.rows() {
            let sum: f32 = w.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "row {} sums to {}", r, sum);
            prop_assert!(w.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
            let nonzero = w.row(r).iter().filter(|&&v| v > 0.0).count();
            prop_assert!(nonzero <= (cfg.heads * top_k).min(params.len()),
                "row {} has {} nonzeros with top_k={}", r, nonzero, top_k);
        }
    }

    /// The robust reductions are permutation-invariant: shuffling the
    /// cohort order changes neither the coordinate median nor the trimmed
    /// mean, bit for bit (both kernels sort each coordinate column).
    #[test]
    fn robust_reductions_permutation_invariant(
        params in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 6), 2..7),
        beta in 0.0f32..0.49,
        seed in 0u64..500,
    ) {
        let mut shuffled = params.clone();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut SmallRng::seed_from_u64(seed));

        let mut scratch = Vec::new();
        let (mut m1, mut m2) = (Vec::new(), Vec::new());
        coordinate_median_into(&params, &mut scratch, &mut m1);
        coordinate_median_into(&shuffled, &mut scratch, &mut m2);
        prop_assert_eq!(&m1, &m2);

        let (mut t1, mut t2) = (Vec::new(), Vec::new());
        trimmed_mean_into(&params, beta, &mut scratch, &mut t1);
        trimmed_mean_into(&shuffled, beta, &mut scratch, &mut t2);
        prop_assert_eq!(&t1, &t2);
    }

    /// A trimmed mean at β = 0 trims nothing: it equals the plain mean up
    /// to summation-order rounding (the kernel sums sorted columns).
    #[test]
    fn trimmed_mean_beta_zero_is_the_mean(
        params in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 6), 1..7),
    ) {
        let mean = average_params(&params);
        let mut scratch = Vec::new();
        let mut trimmed = Vec::new();
        trimmed_mean_into(&params, 0.0, &mut scratch, &mut trimmed);
        for (t, m) in trimmed.iter().zip(&mean) {
            prop_assert!((t - m).abs() < 1e-4, "trimmed {} vs mean {}", t, m);
        }
    }

    /// Breakdown under a minority of coordinate outliers: the coordinate
    /// median of an honest majority plus strictly fewer corrupted vectors
    /// stays within the honest value range, no matter how extreme the
    /// corruption — while the plain mean is dragged out of it.
    #[test]
    fn median_resists_minority_outliers(
        honest_value in -5.0f32..5.0,
        n_honest in 3usize..7,
        magnitude in 100.0f32..1e6,
    ) {
        let n_bad = n_honest - 1; // strict minority
        let mut params = vec![vec![honest_value; 4]; n_honest];
        params.extend(vec![vec![magnitude; 4]; n_bad]);
        let mut scratch = Vec::new();
        let mut median = Vec::new();
        coordinate_median_into(&params, &mut scratch, &mut median);
        for &v in &median {
            prop_assert!(
                v >= honest_value - 1e-3 && v <= magnitude,
                "median {} escaped [{}, {}]", v, honest_value, magnitude
            );
            // With a strict minority corrupted, the median index lands on
            // an honest entry (or the midpoint touching one).
            prop_assert!(
                (v - honest_value).abs() < (magnitude - honest_value) / 2.0 + 1e-3,
                "median {} dragged toward the outliers", v
            );
        }
        let mean = average_params(&params);
        prop_assert!(
            mean[0] > honest_value + (magnitude - honest_value) * 0.2,
            "the plain mean should have been dragged (got {})", mean[0]
        );
    }

    /// Adam with zero gradients never moves parameters, at any step count.
    #[test]
    fn adam_zero_grad_fixed_point(
        mut p in proptest::collection::vec(-5.0f32..5.0, 1..16),
        steps in 1usize..10,
    ) {
        let orig = p.clone();
        let mut opt = Adam::new(p.len(), 0.1);
        let zeros = vec![0.0f32; p.len()];
        for _ in 0..steps {
            opt.step(&mut p, &zeros);
        }
        prop_assert_eq!(p, orig);
    }
}

// --- `_into` path equivalence ---------------------------------------------
//
// The workspace-reusing forward/backward variants must be bit-for-bit equal
// to the allocating originals, including when the output buffer starts out
// dirty and wrong-shaped (the steady-state training situation).

fn batch_for(net: &Mlp, rows: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * net.in_dim()).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Matrix::from_vec(rows, net.in_dim(), data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_forward_into_bitwise_equals(net in mlp_strategy(), rows in 1usize..6, seed in 0u64..500) {
        let layer = &net.layers()[0];
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<f32> =
            (0..rows * layer.in_dim()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let x = Matrix::from_vec(rows, layer.in_dim(), data);
        let fresh = layer.forward(&x);
        let mut out = Matrix::filled(3, 7, f32::NAN);
        layer.forward_into(&x, &mut out);
        prop_assert_eq!(out.shape(), fresh.shape());
        prop_assert_eq!(out.as_slice(), fresh.as_slice());
        // Row form matches the matching matrix row exactly.
        let mut row_out = vec![f32::NAN; 9];
        layer.forward_row_into(x.row(0), &mut row_out);
        prop_assert_eq!(row_out.as_slice(), fresh.row(0));
    }

    #[test]
    fn mlp_forward_into_bitwise_equals(net in mlp_strategy(), rows in 1usize..6, seed in 0u64..500) {
        let mut net = net;
        let x = batch_for(&net, rows, seed);
        let fresh = net.forward(&x);
        let mut out = Matrix::filled(2, 5, f32::NAN);
        net.forward_into(&x, &mut out);
        prop_assert_eq!(out.shape(), fresh.shape());
        prop_assert_eq!(out.as_slice(), fresh.as_slice());
    }

    #[test]
    fn mlp_forward_one_into_bitwise_equals(net in mlp_strategy(), seed in 0u64..500) {
        let mut net = net;
        let x = batch_for(&net, 1, seed);
        let fresh = net.forward_one(x.row(0));
        let mut out = vec![f32::NAN; 11];
        net.forward_one_into(x.row(0), &mut out);
        prop_assert_eq!(&out, &fresh);
    }

    #[test]
    fn mlp_forward_train_into_bitwise_equals(net in mlp_strategy(), rows in 1usize..6, seed in 0u64..500) {
        let mut a = net.clone();
        let mut b = net;
        let x = batch_for(&a, rows, seed);
        let fresh = a.forward_train(&x);
        let mut out = Matrix::filled(1, 4, f32::NAN);
        b.forward_train_into(&x, &mut out);
        prop_assert_eq!(out.shape(), fresh.shape());
        prop_assert_eq!(out.as_slice(), fresh.as_slice());
    }

    #[test]
    fn mlp_backward_into_bitwise_equals(net in mlp_strategy(), rows in 1usize..6, seed in 0u64..500) {
        let mut a = net.clone();
        let mut b = net;
        let x = batch_for(&a, rows, seed);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
        let grad_data: Vec<f32> =
            (0..rows * a.out_dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d_out = Matrix::from_vec(rows, a.out_dim(), grad_data);

        let ya = a.forward_train(&x);
        a.zero_grad();
        let dx_a = a.backward(&d_out);

        let mut yb = Matrix::filled(2, 2, f32::NAN);
        b.forward_train_into(&x, &mut yb);
        b.zero_grad();
        let mut dx_b = Matrix::filled(5, 1, f32::NAN);
        b.backward_into(&d_out, &mut dx_b);

        prop_assert_eq!(yb.as_slice(), ya.as_slice());
        prop_assert_eq!(dx_b.shape(), dx_a.shape());
        prop_assert_eq!(dx_b.as_slice(), dx_a.as_slice());
        let (mut ga, mut gb) = (Vec::new(), Vec::new());
        a.flat_grads_into(&mut ga);
        b.flat_grads_into(&mut gb);
        prop_assert_eq!(ga, gb);
    }
}
