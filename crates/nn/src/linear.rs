//! Fully-connected layer with cached input and accumulated gradients.

use pfrl_tensor::{init, ops, Matrix};
use rand::Rng;

/// A dense layer `y = x · W + b` with `W: in×out`, `b: out`.
///
/// `forward_train` caches the input so a subsequent [`Linear::backward`] can
/// compute `dW = xᵀ · dy`, `db = Σ_rows dy`, and `dx = dy · Wᵀ`. Gradients
/// accumulate across calls until [`Linear::zero_grad`].
///
/// The `_into` variants reuse caller-owned output buffers plus two private
/// scratch matrices, so a layer cycled through same-shaped batches stops
/// allocating after the first pass. The allocating methods are wrappers
/// over them — both forms produce bitwise-identical results.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias vector, length `out_dim`.
    pub b: Vec<f32>,
    /// Accumulated weight gradient, same shape as `w`.
    pub dw: Matrix,
    /// Accumulated bias gradient, same length as `b`.
    pub db: Vec<f32>,
    cached_input: Option<Matrix>,
    /// Scratch for the per-call `xᵀ·dy` before accumulation into `dw`.
    dw_scratch: Matrix,
    /// Scratch holding `Wᵀ` for the `dx = dy · Wᵀ` kernel.
    wt_scratch: Matrix,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: init::xavier_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            dw: Matrix::zeros(in_dim, out_dim),
            db: vec![0.0; out_dim],
            cached_input: None,
            dw_scratch: Matrix::zeros(0, 0),
            wt_scratch: Matrix::zeros(0, 0),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable scalars (`in·out + out`).
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass without caching (inference).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    /// Fused forward pass into a reusable buffer: matmul and bias add in a
    /// single sweep over each output row (one pass over `out` instead of
    /// two). Per element the operation sequence is unchanged — all `x·W`
    /// terms accumulate in inner-index order, then the bias is added last —
    /// so results are bitwise identical to `matmul` + `add_row_bias`.
    /// Routed through [`ops::matmul_bias_into`], which dispatches to the
    /// register-blocked AVX2 GEMM when available (bit-identical).
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "Linear::forward: input dim {} vs layer {}",
            x.cols(),
            self.in_dim()
        );
        ops::matmul_bias_into(x, &self.w, &self.b, out);
    }

    /// Single-row fused forward (`matvec` + bias) for per-decision
    /// inference. Bitwise identical to [`Linear::forward`] on a `1×k`
    /// matrix.
    pub fn forward_row_into(&self, x: &[f32], out: &mut Vec<f32>) {
        ops::matvec_bias_into(x, &self.w, &self.b, out);
    }

    /// Forward pass that caches `x` for the backward pass.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_train_into(x, &mut y);
        y
    }

    /// [`Linear::forward_train`] into a reusable buffer; the cached input
    /// is copied into a retained allocation instead of freshly cloned.
    pub fn forward_train_into(&mut self, x: &Matrix, out: &mut Matrix) {
        match &mut self.cached_input {
            Some(c) => c.copy_from(x),
            None => self.cached_input = Some(x.clone()),
        }
        self.forward_into(x, out);
    }

    /// Backward pass: accumulates `dw`/`db` and returns `dx`.
    ///
    /// # Panics
    /// If called without a preceding [`Linear::forward_train`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(dy, &mut dx);
        dx
    }

    /// [`Linear::backward`] writing `dx` into a reusable buffer. The
    /// per-call `xᵀ·dy` product still lands in a scratch matrix and is then
    /// accumulated into `dw` — folding it directly into `dw` would change
    /// the addition order and thus the low bits.
    pub fn backward_into(&mut self, dy: &Matrix, dx: &mut Matrix) {
        let Linear { w, dw, db, cached_input, dw_scratch, wt_scratch, .. } = self;
        let x = cached_input.as_ref().expect("Linear::backward called without forward_train");
        assert_eq!(dy.rows(), x.rows(), "backward batch size mismatch");
        assert_eq!(dy.cols(), w.cols(), "backward output dim mismatch");
        // dW += xᵀ · dy
        ops::matmul_transpose_a_into(x, dy, dw_scratch);
        ops::add_assign(dw, dw_scratch);
        // db += column sums of dy
        for r in 0..dy.rows() {
            ops::axpy(1.0, dy.row(r), db);
        }
        // dx = dy · Wᵀ
        ops::matmul_transpose_b_into(dy, w, dx, wt_scratch);
    }

    /// Clears accumulated gradients (keeps the cached input).
    pub fn zero_grad(&mut self) {
        self.dw.fill_zero();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies `W` then `b` into `out` (row-major), advancing the cursor.
    pub(crate) fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Reads `W` then `b` from `src`, returning the rest of the slice.
    pub(crate) fn read_params<'a>(&mut self, src: &'a [f32]) -> &'a [f32] {
        let nw = self.w.len();
        let nb = self.b.len();
        assert!(src.len() >= nw + nb, "parameter slice too short");
        self.w.as_mut_slice().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..nw + nb]);
        &src[nw + nb..]
    }

    /// Copies `dW` then `db` into `out`.
    pub(crate) fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dw.as_slice());
        out.extend_from_slice(&self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixed_layer() -> Linear {
        let mut l = Linear::new(2, 3, &mut SmallRng::seed_from_u64(0));
        l.w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        l.b = vec![0.1, 0.2, 0.3];
        l
    }

    #[test]
    fn forward_hand_example() {
        let l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[5.1, 7.2, 9.3]);
    }

    #[test]
    fn backward_gradients_hand_example() {
        let mut l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let _ = l.forward_train(&x);
        let dy = Matrix::from_rows(&[&[1.0, 0.0, -1.0]]);
        let dx = l.backward(&dy);
        // dW = xᵀ · dy
        assert_eq!(l.dw, Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 0.0, -2.0]]));
        assert_eq!(l.db, vec![1.0, 0.0, -1.0]);
        // dx = dy · Wᵀ = [1*1 + 0*2 + (-1)*3, 1*4 + 0*5 + (-1)*6]
        assert_eq!(dx.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 0.0]]);
        let dy = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let _ = l.forward_train(&x);
        let _ = l.backward(&dy);
        let _ = l.forward_train(&x);
        let _ = l.backward(&dy);
        assert_eq!(l.db, vec![2.0, 2.0, 2.0]);
        l.zero_grad();
        assert_eq!(l.db, vec![0.0, 0.0, 0.0]);
        assert!(l.dw.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "without forward_train")]
    fn backward_requires_forward_train() {
        let mut l = fixed_layer();
        let dy = Matrix::zeros(1, 3);
        let _ = l.backward(&dy);
    }

    #[test]
    fn param_roundtrip() {
        let mut a = fixed_layer();
        let b = Linear::new(2, 3, &mut SmallRng::seed_from_u64(99));
        let mut buf = Vec::new();
        b.write_params(&mut buf);
        let rest = a.read_params(&buf);
        assert!(rest.is_empty());
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn batch_forward_is_rowwise() {
        let l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let y = l.forward(&x);
        assert_eq!(y.row(0), &[5.1, 7.2, 9.3]);
        assert_eq!(y.row(1), &[0.1, 0.2, 0.3]);
    }
}
