//! Multilayer perceptron with exact backpropagation.

use crate::{Activation, Linear};
use pfrl_tensor::Matrix;
use rand::Rng;

/// A feed-forward network: `Linear → act → … → Linear` (no activation on the
/// output layer, as required for both value heads and policy logits).
///
/// Training protocol: `forward_train` caches per-layer activations, then
/// `backward` accumulates gradients, then an optimizer consumes
/// `flat_grads()` / mutates via `set_flat_params`.
///
/// The `_into` methods take `&mut self` and route all intermediate tensors
/// through a private workspace (two ping-pong matrices for batch
/// activations/gradients, two row vectors for single-state inference), so
/// steady-state training and inference stop allocating after the first
/// same-shaped call. The classic `&self` methods stay as allocating
/// wrappers for cold paths; both produce bitwise-identical results.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    /// Post-activation outputs of each hidden layer from the last
    /// `forward_train`, used by `backward`. Buffers are reused across
    /// calls via `Matrix::copy_from`-style overwrites.
    hidden_outputs: Vec<Matrix>,
    /// Ping-pong workspace matrices for `forward_into` activations and
    /// `backward` inter-layer gradients (never live at the same time).
    ws_a: Matrix,
    ws_b: Matrix,
    /// Row-vector workspace for `forward_one_into`.
    row_a: Vec<f32>,
    row_b: Vec<f32>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[538, 64, 9]` for the
    /// paper's single-hidden-layer scheduler networks.
    ///
    /// # Panics
    /// If fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "Mlp needs at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self {
            layers,
            activation,
            hidden_outputs: Vec::new(),
            ws_a: Matrix::zeros(0, 0),
            ws_b: Matrix::zeros(0, 0),
            row_a: Vec::new(),
            row_b: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Layer sizes `[in, hidden…, out]`.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.layers.iter().map(Linear::in_dim).collect();
        s.push(self.out_dim());
        s
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Inference forward pass (no caching). Allocates; cold paths only —
    /// the hot path is [`Mlp::forward_into`].
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                self.activation.forward_inplace(&mut h);
            }
        }
        h
    }

    /// Inference forward pass into a reusable output buffer, routing
    /// intermediate activations through the internal workspace
    /// (allocation-free after warmup; bitwise identical to
    /// [`Mlp::forward`]).
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix) {
        let last = self.layers.len() - 1;
        let Mlp { layers, activation, ws_a, ws_b, .. } = self;
        for (i, layer) in layers.iter().enumerate() {
            let src: &Matrix = if i == 0 { x } else { ws_a };
            if i == last {
                layer.forward_into(src, out);
            } else {
                layer.forward_into(src, ws_b);
                activation.forward_inplace(ws_b);
                std::mem::swap(ws_a, ws_b);
            }
        }
    }

    /// Convenience: forward pass on a single input vector (allocates).
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        let m = Matrix::from_vec(1, x.len(), x.to_vec());
        self.forward(&m).into_vec()
    }

    /// Per-decision fast path: single-vector forward through the fused
    /// `matvec` + bias kernel into a reusable output vector, with no
    /// `Matrix` wrapping. Bitwise identical to [`Mlp::forward_one`].
    pub fn forward_one_into(&mut self, x: &[f32], out: &mut Vec<f32>) {
        let last = self.layers.len() - 1;
        let Mlp { layers, activation, row_a, row_b, .. } = self;
        for (i, layer) in layers.iter().enumerate() {
            let src: &[f32] = if i == 0 { x } else { row_a };
            if i == last {
                layer.forward_row_into(src, out);
            } else {
                layer.forward_row_into(src, row_b);
                activation.forward_slice_inplace(row_b);
                std::mem::swap(row_a, row_b);
            }
        }
    }

    /// Training forward pass: caches intermediate activations for `backward`.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_train_into(x, &mut out);
        out
    }

    /// [`Mlp::forward_train`] into a reusable output buffer. The cached
    /// hidden activations overwrite the buffers retained from the previous
    /// call instead of being freshly cloned.
    pub fn forward_train_into(&mut self, x: &Matrix, out: &mut Matrix) {
        let last = self.layers.len() - 1;
        while self.hidden_outputs.len() < last {
            self.hidden_outputs.push(Matrix::zeros(0, 0));
        }
        self.hidden_outputs.truncate(last);
        let Mlp { layers, activation, hidden_outputs, .. } = self;
        for i in 0..layers.len() {
            if i == last {
                let src = if i == 0 { x } else { &hidden_outputs[i - 1] };
                layers[i].forward_train_into(src, out);
            } else {
                let (prev, rest) = hidden_outputs.split_at_mut(i);
                let src = if i == 0 { x } else { &prev[i - 1] };
                let dst = &mut rest[0];
                layers[i].forward_train_into(src, dst);
                activation.forward_inplace(dst);
            }
        }
    }

    /// Backward pass from the gradient of the loss w.r.t. the network output.
    /// Accumulates gradients into every layer and returns the gradient
    /// w.r.t. the input batch.
    ///
    /// # Panics
    /// If no `forward_train` preceded it.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(d_out, &mut dx);
        dx
    }

    /// [`Mlp::backward`] writing the input gradient into a reusable buffer;
    /// inter-layer gradients ping-pong through the internal workspace
    /// (which is free during the backward pass).
    pub fn backward_into(&mut self, d_out: &Matrix, dx: &mut Matrix) {
        let last = self.layers.len() - 1;
        let Mlp { layers, activation, hidden_outputs, ws_a, ws_b, .. } = self;
        if last == 0 {
            layers[0].backward_into(d_out, dx);
            return;
        }
        layers[last].backward_into(d_out, ws_a);
        for i in (0..last).rev() {
            activation.backward_inplace(&hidden_outputs[i], ws_a);
            if i == 0 {
                layers[0].backward_into(ws_a, dx);
            } else {
                layers[i].backward_into(ws_a, ws_b);
                std::mem::swap(ws_a, ws_b);
            }
        }
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Flattens all parameters (layer by layer, `W` then `b`) into one vector.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flat_params_into(&mut out);
        out
    }

    /// [`Mlp::flat_params`] into a reusable vector (cleared first; retains
    /// capacity across calls).
    pub fn flat_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            l.write_params(out);
        }
    }

    /// Loads parameters from a flat vector produced by [`Mlp::flat_params`]
    /// on an identically-shaped network.
    ///
    /// # Panics
    /// If the length does not exactly match [`Mlp::param_count`].
    pub fn set_flat_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "set_flat_params: expected {} scalars, got {}",
            self.param_count(),
            params.len()
        );
        debug_assert!(
            crate::params::validate_params(params).is_ok(),
            "set_flat_params: non-finite parameter — corruption at the source"
        );
        let mut rest = params;
        for l in &mut self.layers {
            rest = l.read_params(rest);
        }
        debug_assert!(rest.is_empty());
    }

    /// Flattens all accumulated gradients in the same order as
    /// [`Mlp::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flat_grads_into(&mut out);
        out
    }

    /// [`Mlp::flat_grads`] into a reusable vector (cleared first; retains
    /// capacity across calls).
    pub fn flat_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            l.write_grads(out);
        }
    }

    /// Direct access to the layers (used by tests and diagnostics).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mlp(sizes: &[usize], seed: u64) -> Mlp {
        Mlp::new(sizes, Activation::Tanh, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn shapes_and_param_count() {
        let net = mlp(&[5, 8, 3], 1);
        assert_eq!(net.in_dim(), 5);
        assert_eq!(net.out_dim(), 3);
        assert_eq!(net.param_count(), 5 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.sizes(), vec![5, 8, 3]);
        let y = net.forward(&Matrix::zeros(4, 5));
        assert_eq!(y.shape(), (4, 3));
    }

    #[test]
    fn forward_one_matches_batch_forward() {
        let net = mlp(&[3, 6, 2], 2);
        let x = [0.5, -0.25, 1.0];
        let single = net.forward_one(&x);
        let batch = net.forward(&Matrix::from_vec(1, 3, x.to_vec()));
        assert_eq!(single, batch.into_vec());
    }

    #[test]
    fn forward_train_equals_forward() {
        let mut net = mlp(&[4, 7, 7, 2], 3);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4], &[-1.0, 0.0, 1.0, 2.0]]);
        let a = net.forward(&x);
        let b = net.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_roundtrip_preserves_outputs() {
        let net = mlp(&[6, 10, 4], 4);
        let mut other = mlp(&[6, 10, 4], 99);
        let x = Matrix::from_rows(&[&[0.1; 6]]);
        assert_ne!(net.forward(&x), other.forward(&x));
        other.set_flat_params(&net.flat_params());
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_flat_params_rejects_wrong_length() {
        let mut net = mlp(&[2, 2], 0);
        net.set_flat_params(&[0.0; 3]);
    }

    /// The load-bearing test: analytic gradients vs central finite
    /// differences for a scalar loss `L = Σ out²/2` over a small batch.
    #[test]
    fn backward_matches_finite_differences() {
        let mut net = mlp(&[3, 5, 2], 7);
        let x = Matrix::from_rows(&[&[0.3, -0.6, 0.9], &[1.2, 0.4, -0.8]]);

        let loss = |net: &Mlp| -> f64 {
            let out = net.forward(&x);
            out.as_slice().iter().map(|&v| (v as f64) * (v as f64) / 2.0).sum()
        };

        // Analytic: dL/d_out = out.
        let out = net.forward_train(&x);
        net.zero_grad();
        net.backward(&out);
        let analytic = net.flat_grads();

        let base = net.flat_params();
        let eps = 1e-3f32;
        for idx in (0..base.len()).step_by(7) {
            let mut p = base.clone();
            p[idx] += eps;
            net.set_flat_params(&p);
            let plus = loss(&net);
            p[idx] -= 2.0 * eps;
            net.set_flat_params(&p);
            let minus = loss(&net);
            let fd = ((plus - minus) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {}",
                analytic[idx],
                fd
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut net = mlp(&[3, 4, 1], 11);
        let x0 = [0.2f32, -0.4, 0.6];
        let loss = |net: &Mlp, x: &[f32]| net.forward_one(x)[0];

        let out = net.forward_train(&Matrix::from_vec(1, 3, x0.to_vec()));
        net.zero_grad();
        let mut ones = Matrix::filled(1, 1, 1.0);
        ones[(0, 0)] = 1.0;
        let dx = net.backward(&ones);
        let _ = out;

        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x0;
            xp[i] += eps;
            let plus = loss(&net, &xp);
            xp[i] -= 2.0 * eps;
            let minus = loss(&net, &xp);
            let fd = (plus - minus) / (2.0 * eps);
            assert!((dx[(0, i)] - fd).abs() < 1e-2, "input {i}: {} vs {}", dx[(0, i)], fd);
        }
    }

    #[test]
    fn adam_training_solves_xor() {
        let mut net = mlp(&[2, 16, 1], 21);
        let mut opt = crate::Adam::new(net.param_count(), 0.05);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let targets = [0.0f32, 1.0, 1.0, 0.0]; // XOR
        let mse = |net: &Mlp| -> f32 {
            let out = net.forward(&x);
            (0..4).map(|i| (out[(i, 0)] - targets[i]).powi(2)).sum::<f32>() / 4.0
        };
        let before = mse(&net);
        for _ in 0..1000 {
            let out = net.forward_train(&x);
            let mut d = Matrix::zeros(4, 1);
            for i in 0..4 {
                d[(i, 0)] = 2.0 * (out[(i, 0)] - targets[i]) / 4.0;
            }
            net.zero_grad();
            net.backward(&d);
            opt.step_mlp(&mut net);
        }
        let after = mse(&net);
        assert!(after < 0.01 && after < before, "XOR mse {before} -> {after}");
    }
}
