//! Multilayer perceptron with exact backpropagation.

use crate::{Activation, Linear};
use pfrl_tensor::Matrix;
use rand::Rng;

/// A feed-forward network: `Linear → act → … → Linear` (no activation on the
/// output layer, as required for both value heads and policy logits).
///
/// Training protocol: `forward_train` caches per-layer activations, then
/// `backward` accumulates gradients, then an optimizer consumes
/// `flat_grads()` / mutates via `set_flat_params`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    /// Post-activation outputs of each hidden layer from the last
    /// `forward_train`, used by `backward`.
    hidden_outputs: Vec<Matrix>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[538, 64, 9]` for the
    /// paper's single-hidden-layer scheduler networks.
    ///
    /// # Panics
    /// If fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "Mlp needs at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self { layers, activation, hidden_outputs: Vec::new() }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Layer sizes `[in, hidden…, out]`.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.layers.iter().map(Linear::in_dim).collect();
        s.push(self.out_dim());
        s
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Inference forward pass (no caching).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                self.activation.forward_inplace(&mut h);
            }
        }
        h
    }

    /// Convenience: forward pass on a single input vector.
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        let m = Matrix::from_vec(1, x.len(), x.to_vec());
        self.forward(&m).into_vec()
    }

    /// Training forward pass: caches intermediate activations for `backward`.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        self.hidden_outputs.clear();
        let mut h = x.clone();
        for i in 0..self.layers.len() {
            h = self.layers[i].forward_train(&h);
            if i != last {
                self.activation.forward_inplace(&mut h);
                self.hidden_outputs.push(h.clone());
            }
        }
        h
    }

    /// Backward pass from the gradient of the loss w.r.t. the network output.
    /// Accumulates gradients into every layer and returns the gradient
    /// w.r.t. the input batch.
    ///
    /// # Panics
    /// If no `forward_train` preceded it.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut grad = self.layers[last].backward(d_out);
        for i in (0..last).rev() {
            self.activation.backward_inplace(&self.hidden_outputs[i], &mut grad);
            grad = self.layers[i].backward(&grad);
        }
        grad
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Flattens all parameters (layer by layer, `W` then `b`) into one vector.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            l.write_params(&mut out);
        }
        out
    }

    /// Loads parameters from a flat vector produced by [`Mlp::flat_params`]
    /// on an identically-shaped network.
    ///
    /// # Panics
    /// If the length does not exactly match [`Mlp::param_count`].
    pub fn set_flat_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "set_flat_params: expected {} scalars, got {}",
            self.param_count(),
            params.len()
        );
        let mut rest = params;
        for l in &mut self.layers {
            rest = l.read_params(rest);
        }
        debug_assert!(rest.is_empty());
    }

    /// Flattens all accumulated gradients in the same order as
    /// [`Mlp::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            l.write_grads(&mut out);
        }
        out
    }

    /// Direct access to the layers (used by tests and diagnostics).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mlp(sizes: &[usize], seed: u64) -> Mlp {
        Mlp::new(sizes, Activation::Tanh, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn shapes_and_param_count() {
        let net = mlp(&[5, 8, 3], 1);
        assert_eq!(net.in_dim(), 5);
        assert_eq!(net.out_dim(), 3);
        assert_eq!(net.param_count(), 5 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.sizes(), vec![5, 8, 3]);
        let y = net.forward(&Matrix::zeros(4, 5));
        assert_eq!(y.shape(), (4, 3));
    }

    #[test]
    fn forward_one_matches_batch_forward() {
        let net = mlp(&[3, 6, 2], 2);
        let x = [0.5, -0.25, 1.0];
        let single = net.forward_one(&x);
        let batch = net.forward(&Matrix::from_vec(1, 3, x.to_vec()));
        assert_eq!(single, batch.into_vec());
    }

    #[test]
    fn forward_train_equals_forward() {
        let mut net = mlp(&[4, 7, 7, 2], 3);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4], &[-1.0, 0.0, 1.0, 2.0]]);
        let a = net.forward(&x);
        let b = net.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_roundtrip_preserves_outputs() {
        let net = mlp(&[6, 10, 4], 4);
        let mut other = mlp(&[6, 10, 4], 99);
        let x = Matrix::from_rows(&[&[0.1; 6]]);
        assert_ne!(net.forward(&x), other.forward(&x));
        other.set_flat_params(&net.flat_params());
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_flat_params_rejects_wrong_length() {
        let mut net = mlp(&[2, 2], 0);
        net.set_flat_params(&[0.0; 3]);
    }

    /// The load-bearing test: analytic gradients vs central finite
    /// differences for a scalar loss `L = Σ out²/2` over a small batch.
    #[test]
    fn backward_matches_finite_differences() {
        let mut net = mlp(&[3, 5, 2], 7);
        let x = Matrix::from_rows(&[&[0.3, -0.6, 0.9], &[1.2, 0.4, -0.8]]);

        let loss = |net: &Mlp| -> f64 {
            let out = net.forward(&x);
            out.as_slice().iter().map(|&v| (v as f64) * (v as f64) / 2.0).sum()
        };

        // Analytic: dL/d_out = out.
        let out = net.forward_train(&x);
        net.zero_grad();
        net.backward(&out);
        let analytic = net.flat_grads();

        let base = net.flat_params();
        let eps = 1e-3f32;
        for idx in (0..base.len()).step_by(7) {
            let mut p = base.clone();
            p[idx] += eps;
            net.set_flat_params(&p);
            let plus = loss(&net);
            p[idx] -= 2.0 * eps;
            net.set_flat_params(&p);
            let minus = loss(&net);
            let fd = ((plus - minus) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {}",
                analytic[idx],
                fd
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut net = mlp(&[3, 4, 1], 11);
        let x0 = [0.2f32, -0.4, 0.6];
        let loss = |net: &Mlp, x: &[f32]| net.forward_one(x)[0];

        let out = net.forward_train(&Matrix::from_vec(1, 3, x0.to_vec()));
        net.zero_grad();
        let mut ones = Matrix::filled(1, 1, 1.0);
        ones[(0, 0)] = 1.0;
        let dx = net.backward(&ones);
        let _ = out;

        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x0;
            xp[i] += eps;
            let plus = loss(&net, &xp);
            xp[i] -= 2.0 * eps;
            let minus = loss(&net, &xp);
            let fd = (plus - minus) / (2.0 * eps);
            assert!((dx[(0, i)] - fd).abs() < 1e-2, "input {i}: {} vs {}", dx[(0, i)], fd);
        }
    }

    #[test]
    fn adam_training_solves_xor() {
        let mut net = mlp(&[2, 16, 1], 21);
        let mut opt = crate::Adam::new(net.param_count(), 0.05);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let targets = [0.0f32, 1.0, 1.0, 0.0]; // XOR
        let mse = |net: &Mlp| -> f32 {
            let out = net.forward(&x);
            (0..4).map(|i| (out[(i, 0)] - targets[i]).powi(2)).sum::<f32>() / 4.0
        };
        let before = mse(&net);
        for _ in 0..1000 {
            let out = net.forward_train(&x);
            let mut d = Matrix::zeros(4, 1);
            for i in 0..4 {
                d[(i, 0)] = 2.0 * (out[(i, 0)] - targets[i]) / 4.0;
            }
            net.zero_grad();
            net.backward(&d);
            opt.step_mlp(&mut net);
        }
        let after = mse(&net);
        assert!(after < 0.01 && after < before, "XOR mse {before} -> {after}");
    }
}
