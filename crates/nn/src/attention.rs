//! Scaled-dot-product and multi-head attention (Eqs. 18–20 of the paper),
//! specialized for the server-side personalization aggregator.
//!
//! The aggregator treats the `K` uploaded public-critic parameter vectors as
//! a `K × P` token matrix. Each head projects the (standardized) tokens into
//! a `d_k`-dimensional subspace with seeded random projections — the
//! federated analogue of frozen `W^Q/W^K` matrices shared by server
//! configuration rather than trained, so that every round measures model
//! similarity in the *same* subspaces and the mixing weights are stable and
//! reproducible. Head outputs (the `K × K` row-stochastic score matrices)
//! are averaged, mirroring how the paper derives a single weight vector
//! `w_k` per client from the concatenated heads.

use pfrl_tensor::{init, ops, Matrix};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of the multi-head attention weight generator.
#[derive(Debug, Clone)]
pub struct MultiHeadConfig {
    /// Number of attention heads (paper default: 4).
    pub heads: usize,
    /// Per-head projection dimension `d_k`.
    pub d_k: usize,
    /// Seed for the frozen per-head projection matrices; all federation
    /// rounds of one experiment share it.
    pub seed: u64,
    /// Inverse-softmax-temperature applied to scores: larger sharpens the
    /// weight distribution toward the most similar clients.
    pub temperature: f32,
}

impl Default for MultiHeadConfig {
    fn default() -> Self {
        Self { heads: 4, d_k: 16, seed: 0x5EED_A77E, temperature: 4.0 }
    }
}

/// Plain scaled-dot-product attention (Eq. 18):
/// `softmax(Q·Kᵀ / sqrt(d_k)) · V`. Returns `(output, weights)`.
///
/// # Panics
/// If `q.cols() != k.cols()` or `k.rows() != v.rows()`.
pub fn scaled_dot_product_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, Matrix) {
    let mut ws = AttentionWorkspace::default();
    scaled_dot_product_attention_into(q, k, v, &mut ws);
    let AttentionWorkspace { context, scores, .. } = ws;
    (context, scores)
}

/// Reusable buffers for [`scaled_dot_product_attention_into`]: the scores
/// and context matrices plus the transpose scratch of the `Q·Kᵀ` kernel.
/// One workspace cycled through same-shaped calls stops allocating after
/// the first.
#[derive(Debug, Clone, Default)]
pub struct AttentionWorkspace {
    /// Row-stochastic attention weights from the last call.
    pub scores: Matrix,
    /// Attention output (`scores · V`) from the last call.
    pub context: Matrix,
    kt_scratch: Matrix,
}

impl AttentionWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`scaled_dot_product_attention`] into a reusable workspace; results land
/// in `ws.context` / `ws.scores` and are bitwise identical to the
/// allocating form.
pub fn scaled_dot_product_attention_into(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    ws: &mut AttentionWorkspace,
) {
    assert_eq!(q.cols(), k.cols(), "attention: Q/K feature dims differ");
    assert_eq!(k.rows(), v.rows(), "attention: K/V token counts differ");
    ops::matmul_transpose_b_into(q, k, &mut ws.scores, &mut ws.kt_scratch);
    ops::scale(&mut ws.scores, 1.0 / (k.cols() as f32).sqrt());
    ops::softmax_rows(&mut ws.scores);
    ops::matmul_into(&ws.scores, v, &mut ws.context);
}

/// Standardizes each row to zero mean and unit L2 norm.
///
/// Raw parameter vectors share a common initialization offset that dominates
/// dot products; removing the per-row mean and scale makes the attention
/// scores reflect the *direction* in which each critic has moved — i.e.
/// what its environment taught it.
fn standardize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let mean = ops::mean(row);
        row.iter_mut().for_each(|v| *v -= mean);
        let norm = ops::dot(row, row).sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            row.iter_mut().for_each(|v| *v *= inv);
        }
    }
    out
}

/// Generates the `K × K` row-stochastic attention weight matrix
/// `W^{(m)} = (w_1, …, w_K)` from `K` flat client parameter vectors
/// (Algorithm 1, line 11).
///
/// Row `k` of the result are the mixing weights for client `k`'s
/// personalized model.
///
/// # Panics
/// If `client_params` is empty or lengths disagree.
pub fn multi_head_attention_weights(client_params: &[Vec<f32>], cfg: &MultiHeadConfig) -> Matrix {
    let k = client_params.len();
    assert!(k > 0, "attention weights need at least one client");
    let p = client_params[0].len();
    let mut tokens = Matrix::zeros(k, p);
    for (i, cp) in client_params.iter().enumerate() {
        assert_eq!(cp.len(), p, "client {i} parameter length mismatch");
        tokens.row_mut(i).copy_from_slice(cp);
    }
    let tokens = standardize_rows(&tokens);

    let mut accum = Matrix::zeros(k, k);
    // Per-head projection/score buffers, reused across heads.
    let mut q = Matrix::default();
    let mut scores = Matrix::default();
    let mut qt_scratch = Matrix::default();
    for h in 0..cfg.heads.max(1) {
        // Frozen random projection, re-derived per head from the seed. The
        // Q and K projections are tied (W^Q_h = W^K_h): with independent
        // projections the expected score between any two tokens is zero and
        // carries no similarity signal; with tied Gaussian projections of
        // variance σ² the expected raw score is `d_k·σ²·cos(tᵢ, tⱼ)`, so
        // each head measures cosine similarity in its own random subspace.
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(h as u64));
        let sigma = 1.0 / (p as f32).sqrt();
        let wq = init::sample_gaussian(p, cfg.d_k, sigma, &mut rng);
        ops::matmul_into(&tokens, &wq, &mut q);
        ops::matmul_transpose_b_into(&q, &q, &mut scores, &mut qt_scratch);
        // Undo the d_k·σ² expectation factor, then apply the temperature.
        ops::scale(&mut scores, cfg.temperature / (cfg.d_k as f32 * sigma * sigma));
        ops::softmax_rows(&mut scores);
        ops::add_assign(&mut accum, &scores);
    }
    ops::scale(&mut accum, 1.0 / cfg.heads.max(1) as f32);
    accum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_sums(m: &Matrix) -> Vec<f32> {
        (0..m.rows()).map(|r| m.row(r).iter().sum()).collect()
    }

    #[test]
    fn sdpa_uniform_when_scores_equal() {
        let q = Matrix::filled(2, 4, 1.0);
        let k = Matrix::filled(3, 4, 1.0);
        let v = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let (out, w) = scaled_dot_product_attention(&q, &k, &v);
        for r in 0..2 {
            for c in 0..3 {
                assert!((w[(r, c)] - 1.0 / 3.0).abs() < 1e-5);
            }
            assert!((out[(r, 0)] - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sdpa_selects_matching_key() {
        // Query aligned with key 0 and orthogonal to key 1, large magnitude
        // so the softmax saturates.
        let q = Matrix::from_rows(&[&[10.0, 0.0]]);
        let k = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]);
        let v = Matrix::from_rows(&[&[1.0], &[-1.0]]);
        let (out, w) = scaled_dot_product_attention(&q, &k, &v);
        assert!(w[(0, 0)] > 0.99, "weights {:?}", w);
        assert!(out[(0, 0)] > 0.98);
    }

    #[test]
    fn weights_are_row_stochastic() {
        let params: Vec<Vec<f32>> =
            (0..5).map(|i| (0..64).map(|j| ((i * 64 + j) as f32 * 0.37).sin()).collect()).collect();
        let w = multi_head_attention_weights(&params, &MultiHeadConfig::default());
        assert_eq!(w.shape(), (5, 5));
        for s in row_sums(&w) {
            assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
        assert!(w.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The Fig. 11 property: twin clients (same environment ⇒ near-identical
    /// critics) attend to each other more than to dissimilar clients.
    #[test]
    fn twins_attend_to_each_other() {
        let mut rng = SmallRng::seed_from_u64(3);
        let base: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let mut twin = base.clone();
        // Small perturbation: same environment, different rollout noise.
        for v in twin.iter_mut() {
            *v += 0.01;
        }
        let other1: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let other2: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let w = multi_head_attention_weights(
            &[base, twin, other1, other2],
            &MultiHeadConfig::default(),
        );
        // Client 0's weight on its twin (1) exceeds its weights on 2 and 3.
        assert!(w[(0, 1)] > w[(0, 2)], "{:?}", w);
        assert!(w[(0, 1)] > w[(0, 3)], "{:?}", w);
        assert!(w[(1, 0)] > w[(1, 2)] && w[(1, 0)] > w[(1, 3)], "{:?}", w);
    }

    #[test]
    fn deterministic_given_seed() {
        let params: Vec<Vec<f32>> =
            (0..3).map(|i| (0..32).map(|j| (i + j) as f32 * 0.1).collect()).collect();
        let cfg = MultiHeadConfig::default();
        let a = multi_head_attention_weights(&params, &cfg);
        let b = multi_head_attention_weights(&params, &cfg);
        assert_eq!(a, b);
        let other = MultiHeadConfig { seed: 7, ..cfg };
        let c = multi_head_attention_weights(&params, &other);
        assert_ne!(a, c);
    }

    #[test]
    fn single_head_single_client_degenerates_to_one() {
        let w = multi_head_attention_weights(
            &[vec![0.5; 16]],
            &MultiHeadConfig { heads: 1, ..Default::default() },
        );
        assert_eq!(w.shape(), (1, 1));
        assert!((w[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_clients_panic() {
        let _ = multi_head_attention_weights(&[], &MultiHeadConfig::default());
    }
}
