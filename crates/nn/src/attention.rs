//! Scaled-dot-product and multi-head attention (Eqs. 18–20 of the paper),
//! specialized for the server-side personalization aggregator.
//!
//! The aggregator treats the `K` uploaded public-critic parameter vectors as
//! a `K × P` token matrix. Each head projects the (standardized) tokens into
//! a `d_k`-dimensional subspace with seeded random projections — the
//! federated analogue of frozen `W^Q/W^K` matrices shared by server
//! configuration rather than trained, so that every round measures model
//! similarity in the *same* subspaces and the mixing weights are stable and
//! reproducible. Head outputs (the `K × K` row-stochastic score matrices)
//! are averaged, mirroring how the paper derives a single weight vector
//! `w_k` per client from the concatenated heads.

use pfrl_tensor::{init, ops, Matrix};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration of the multi-head attention weight generator.
#[derive(Debug, Clone)]
pub struct MultiHeadConfig {
    /// Number of attention heads (paper default: 4).
    pub heads: usize,
    /// Per-head projection dimension `d_k`.
    pub d_k: usize,
    /// Seed for the frozen per-head projection matrices; all federation
    /// rounds of one experiment share it.
    pub seed: u64,
    /// Inverse-softmax-temperature applied to scores: larger sharpens the
    /// weight distribution toward the most similar clients.
    pub temperature: f32,
    /// Per-row score sparsification: keep only the `k` largest scores in
    /// each client's row (per head, before the softmax) and mask the rest
    /// to `-inf`, so every client mixes with at most `k` peers and the
    /// downstream mixing drops from O(K²·P) to O(K·k·P). `None` keeps the
    /// dense path. Any `k >= K` reproduces the dense weights bit-for-bit
    /// (the mask pass is skipped entirely).
    pub top_k: Option<usize>,
}

impl MultiHeadConfig {
    /// Default sparsity for large federations: each client row keeps its 8
    /// strongest peers — wide enough that the Fig. 11 twin structure (a
    /// handful of same-environment clients) survives masking, small enough
    /// that mixing cost grows linearly in K.
    pub const PAPER_TOP_K: usize = 8;
}

impl Default for MultiHeadConfig {
    fn default() -> Self {
        Self { heads: 4, d_k: 16, seed: 0x5EED_A77E, temperature: 4.0, top_k: None }
    }
}

/// Plain scaled-dot-product attention (Eq. 18):
/// `softmax(Q·Kᵀ / sqrt(d_k)) · V`. Returns `(output, weights)`.
///
/// # Panics
/// If `q.cols() != k.cols()` or `k.rows() != v.rows()`.
pub fn scaled_dot_product_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> (Matrix, Matrix) {
    let mut ws = AttentionWorkspace::default();
    scaled_dot_product_attention_into(q, k, v, &mut ws);
    let AttentionWorkspace { context, scores, .. } = ws;
    (context, scores)
}

/// Reusable buffers for [`scaled_dot_product_attention_into`]: the scores
/// and context matrices plus the transpose scratch of the `Q·Kᵀ` kernel.
/// One workspace cycled through same-shaped calls stops allocating after
/// the first.
#[derive(Debug, Clone, Default)]
pub struct AttentionWorkspace {
    /// Row-stochastic attention weights from the last call.
    pub scores: Matrix,
    /// Attention output (`scores · V`) from the last call.
    pub context: Matrix,
    kt_scratch: Matrix,
}

impl AttentionWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`scaled_dot_product_attention`] into a reusable workspace; results land
/// in `ws.context` / `ws.scores` and are bitwise identical to the
/// allocating form.
pub fn scaled_dot_product_attention_into(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    ws: &mut AttentionWorkspace,
) {
    assert_eq!(q.cols(), k.cols(), "attention: Q/K feature dims differ");
    assert_eq!(k.rows(), v.rows(), "attention: K/V token counts differ");
    ops::matmul_transpose_b_into(q, k, &mut ws.scores, &mut ws.kt_scratch);
    ops::scale(&mut ws.scores, 1.0 / (k.cols() as f32).sqrt());
    ops::softmax_rows(&mut ws.scores);
    ops::matmul_into(&ws.scores, v, &mut ws.context);
}

/// Standardizes one row to zero mean and unit L2 norm, in place.
///
/// Raw parameter vectors share a common initialization offset that dominates
/// dot products; removing the per-row mean and scale makes the attention
/// scores reflect the *direction* in which each critic has moved — i.e.
/// what its environment taught it.
fn standardize_row(row: &mut [f32]) {
    let mean = ops::mean(row);
    row.iter_mut().for_each(|v| *v -= mean);
    let norm = ops::dot(row, row).sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        row.iter_mut().for_each(|v| *v *= inv);
    }
}

/// Masks every entry of `row` except its `keep` largest to `-inf`, so the
/// following softmax assigns them exactly `0.0` weight. Selection is a
/// linear-time partition (`select_nth_unstable_by`) on a reusable
/// `(score, column)` scratch; ties break toward the lower column index so
/// the kept set is a deterministic function of the scores alone.
fn mask_all_but_top_k(row: &mut [f32], keep: usize, sel: &mut Vec<(f32, usize)>) {
    debug_assert!(keep >= 1 && keep < row.len());
    sel.clear();
    sel.extend(row.iter().enumerate().map(|(i, &v)| (v, i)));
    sel.select_nth_unstable_by(keep - 1, |a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &sel[keep..] {
        row[i] = f32::NEG_INFINITY;
    }
}

/// Per-head reusable buffers of [`AttentionScratch`]: the cached frozen
/// projection plus the projection/score/transpose/top-k scratch. Each head
/// owns its buffers so heads can run on the rayon pool without sharing
/// mutable state.
#[derive(Debug, Clone, Default)]
struct HeadScratch {
    wq: Matrix,
    q: Matrix,
    scores: Matrix,
    qt_scratch: Matrix,
    sel: Vec<(f32, usize)>,
}

/// Reusable workspace for [`multi_head_attention_weights_into`]: the token
/// matrix, one buffer set per head, and the cached frozen projections
/// (which depend only on `(seed, P, d_k)`, so steady-state rounds skip the
/// Gaussian sampling entirely). One workspace cycled through same-shaped
/// rounds stops allocating after the first.
#[derive(Debug, Clone, Default)]
pub struct AttentionScratch {
    tokens: Matrix,
    heads: Vec<HeadScratch>,
    proj_key: Option<(u64, usize, usize)>,
}

impl AttentionScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generates the `K × K` row-stochastic attention weight matrix
/// `W^{(m)} = (w_1, …, w_K)` from `K` flat client parameter vectors
/// (Algorithm 1, line 11).
///
/// Row `k` of the result are the mixing weights for client `k`'s
/// personalized model.
///
/// # Panics
/// If `client_params` is empty or lengths disagree.
pub fn multi_head_attention_weights(client_params: &[Vec<f32>], cfg: &MultiHeadConfig) -> Matrix {
    let mut ws = AttentionScratch::default();
    let mut out = Matrix::default();
    multi_head_attention_weights_into(client_params, cfg, false, &mut ws, &mut out);
    out
}

/// [`multi_head_attention_weights`] into a reusable workspace; the weight
/// matrix lands in `out`, bitwise identical to the allocating form at any
/// `parallel` setting.
///
/// The parallel path is bit-identical to the sequential one by
/// construction: row standardization is elementwise-independent and
/// in-place; each head computes into its own [`HeadScratch`] with the same
/// sequential kernels either way; and head outputs are reduced into `out`
/// in fixed head order only after every head has finished. Thread count
/// therefore never changes any float operation or its order.
pub fn multi_head_attention_weights_into(
    client_params: &[Vec<f32>],
    cfg: &MultiHeadConfig,
    parallel: bool,
    ws: &mut AttentionScratch,
    out: &mut Matrix,
) {
    let k = client_params.len();
    assert!(k > 0, "attention weights need at least one client");
    if let Some(kk) = cfg.top_k {
        assert!(kk >= 1, "top_k must keep at least one score per row");
    }
    let p = client_params[0].len();
    ws.tokens.resize(k, p);
    for (i, cp) in client_params.iter().enumerate() {
        assert_eq!(cp.len(), p, "client {i} parameter length mismatch");
        ws.tokens.row_mut(i).copy_from_slice(cp);
    }
    if parallel && p > 0 {
        ws.tokens.as_mut_slice().par_chunks_mut(p).for_each(standardize_row);
    } else {
        for r in 0..k {
            standardize_row(ws.tokens.row_mut(r));
        }
    }

    let heads = cfg.heads.max(1);
    let sigma = 1.0 / (p as f32).sqrt();
    // Frozen random projections, derived per head from the seed and cached
    // across rounds. The Q and K projections are tied (W^Q_h = W^K_h): with
    // independent projections the expected score between any two tokens is
    // zero and carries no similarity signal; with tied Gaussian projections
    // of variance σ² the expected raw score is `d_k·σ²·cos(tᵢ, tⱼ)`, so
    // each head measures cosine similarity in its own random subspace.
    let proj_key = (cfg.seed, p, cfg.d_k);
    if ws.proj_key != Some(proj_key) {
        ws.heads.clear();
        ws.proj_key = Some(proj_key);
    }
    while ws.heads.len() < heads {
        let h = ws.heads.len();
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(h as u64));
        let wq = init::sample_gaussian(p, cfg.d_k, sigma, &mut rng);
        ws.heads.push(HeadScratch { wq, ..HeadScratch::default() });
    }

    let tokens = &ws.tokens;
    // Undo the d_k·σ² expectation factor, then apply the temperature.
    let score_scale = cfg.temperature / (cfg.d_k as f32 * sigma * sigma);
    let run_head = |hs: &mut HeadScratch| {
        ops::matmul_into(tokens, &hs.wq, &mut hs.q);
        ops::matmul_transpose_b_into(&hs.q, &hs.q, &mut hs.scores, &mut hs.qt_scratch);
        ops::scale(&mut hs.scores, score_scale);
        if let Some(keep) = cfg.top_k {
            if keep < k {
                for r in 0..k {
                    mask_all_but_top_k(hs.scores.row_mut(r), keep, &mut hs.sel);
                }
            }
        }
        // Masked entries become exp(-inf) = exact 0.0 under the max-shifted
        // softmax, so a kept entry's weight never depends on masked columns.
        ops::softmax_rows(&mut hs.scores);
    };
    if parallel {
        ws.heads[..heads].par_iter_mut().for_each(run_head);
    } else {
        ws.heads[..heads].iter_mut().for_each(run_head);
    }

    out.resize(k, k);
    out.fill_zero();
    for hs in &ws.heads[..heads] {
        ops::add_assign(out, &hs.scores);
    }
    ops::scale(out, 1.0 / heads as f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_sums(m: &Matrix) -> Vec<f32> {
        (0..m.rows()).map(|r| m.row(r).iter().sum()).collect()
    }

    #[test]
    fn sdpa_uniform_when_scores_equal() {
        let q = Matrix::filled(2, 4, 1.0);
        let k = Matrix::filled(3, 4, 1.0);
        let v = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let (out, w) = scaled_dot_product_attention(&q, &k, &v);
        for r in 0..2 {
            for c in 0..3 {
                assert!((w[(r, c)] - 1.0 / 3.0).abs() < 1e-5);
            }
            assert!((out[(r, 0)] - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sdpa_selects_matching_key() {
        // Query aligned with key 0 and orthogonal to key 1, large magnitude
        // so the softmax saturates.
        let q = Matrix::from_rows(&[&[10.0, 0.0]]);
        let k = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]);
        let v = Matrix::from_rows(&[&[1.0], &[-1.0]]);
        let (out, w) = scaled_dot_product_attention(&q, &k, &v);
        assert!(w[(0, 0)] > 0.99, "weights {:?}", w);
        assert!(out[(0, 0)] > 0.98);
    }

    #[test]
    fn weights_are_row_stochastic() {
        let params: Vec<Vec<f32>> =
            (0..5).map(|i| (0..64).map(|j| ((i * 64 + j) as f32 * 0.37).sin()).collect()).collect();
        let w = multi_head_attention_weights(&params, &MultiHeadConfig::default());
        assert_eq!(w.shape(), (5, 5));
        for s in row_sums(&w) {
            assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
        }
        assert!(w.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The Fig. 11 property: twin clients (same environment ⇒ near-identical
    /// critics) attend to each other more than to dissimilar clients.
    #[test]
    fn twins_attend_to_each_other() {
        let mut rng = SmallRng::seed_from_u64(3);
        let base: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let mut twin = base.clone();
        // Small perturbation: same environment, different rollout noise.
        for v in twin.iter_mut() {
            *v += 0.01;
        }
        let other1: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let other2: Vec<f32> = (0..128)
            .map(|_| init::sample_uniform(1, 1, -1.0, 1.0, &mut rng).as_slice()[0])
            .collect();
        let w = multi_head_attention_weights(
            &[base, twin, other1, other2],
            &MultiHeadConfig::default(),
        );
        // Client 0's weight on its twin (1) exceeds its weights on 2 and 3.
        assert!(w[(0, 1)] > w[(0, 2)], "{:?}", w);
        assert!(w[(0, 1)] > w[(0, 3)], "{:?}", w);
        assert!(w[(1, 0)] > w[(1, 2)] && w[(1, 0)] > w[(1, 3)], "{:?}", w);
    }

    #[test]
    fn deterministic_given_seed() {
        let params: Vec<Vec<f32>> =
            (0..3).map(|i| (0..32).map(|j| (i + j) as f32 * 0.1).collect()).collect();
        let cfg = MultiHeadConfig::default();
        let a = multi_head_attention_weights(&params, &cfg);
        let b = multi_head_attention_weights(&params, &cfg);
        assert_eq!(a, b);
        let other = MultiHeadConfig { seed: 7, ..cfg };
        let c = multi_head_attention_weights(&params, &other);
        assert_ne!(a, c);
    }

    #[test]
    fn single_head_single_client_degenerates_to_one() {
        let w = multi_head_attention_weights(
            &[vec![0.5; 16]],
            &MultiHeadConfig { heads: 1, ..Default::default() },
        );
        assert_eq!(w.shape(), (1, 1));
        assert!((w[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_clients_panic() {
        let _ = multi_head_attention_weights(&[], &MultiHeadConfig::default());
    }

    fn varied_params(k: usize, p: usize) -> Vec<Vec<f32>> {
        (0..k).map(|i| (0..p).map(|j| ((i * p + j) as f32 * 0.29).sin()).collect()).collect()
    }

    #[test]
    fn top_k_at_least_cohort_size_is_bitwise_dense() {
        let params = varied_params(6, 48);
        let dense = multi_head_attention_weights(&params, &MultiHeadConfig::default());
        for kk in [6, 7, 100] {
            let sparse = multi_head_attention_weights(
                &params,
                &MultiHeadConfig { top_k: Some(kk), ..Default::default() },
            );
            assert_eq!(sparse, dense, "top_k={kk} diverged from dense");
        }
    }

    #[test]
    fn top_k_rows_stay_stochastic_with_exact_zeros_elsewhere() {
        let params = varied_params(8, 48);
        let cfg = MultiHeadConfig { top_k: Some(2), ..Default::default() };
        let w = multi_head_attention_weights(&params, &cfg);
        for r in 0..8 {
            let row = w.row(r);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sum {sum}");
            // Each head keeps 2 columns; the head-average can light up at
            // most heads*2 columns, and every masked column is exact 0.0.
            let nonzero = row.iter().filter(|&&v| v != 0.0).count();
            assert!(nonzero <= cfg.heads * 2, "row {r}: {nonzero} nonzero");
            assert!(nonzero >= 1);
        }
    }

    #[test]
    fn into_form_matches_allocating_form_and_reuses_scratch() {
        let mut ws = AttentionScratch::new();
        let mut out = Matrix::filled(3, 7, f32::NAN);
        // Cycle the same workspace through different cohort sizes and both
        // sparsities; every call must match the fresh allocating result.
        for (k, top_k) in [(5, None), (3, Some(2)), (7, Some(2)), (7, None)] {
            let params = varied_params(k, 32);
            let cfg = MultiHeadConfig { top_k, ..Default::default() };
            multi_head_attention_weights_into(&params, &cfg, false, &mut ws, &mut out);
            assert_eq!(out, multi_head_attention_weights(&params, &cfg), "k={k} {top_k:?}");
        }
    }

    #[test]
    fn parallel_path_is_bitwise_sequential() {
        let params = varied_params(16, 64);
        for top_k in [None, Some(3)] {
            let cfg = MultiHeadConfig { top_k, ..Default::default() };
            let mut seq = Matrix::default();
            let mut par = Matrix::default();
            multi_head_attention_weights_into(
                &params,
                &cfg,
                false,
                &mut AttentionScratch::new(),
                &mut seq,
            );
            multi_head_attention_weights_into(
                &params,
                &cfg,
                true,
                &mut AttentionScratch::new(),
                &mut par,
            );
            assert_eq!(seq, par, "{top_k:?}: parallel attention diverged");
        }
    }

    #[test]
    fn top_k_selection_breaks_ties_toward_lower_index() {
        let mut row = [1.0, 5.0, 5.0, 5.0, 0.0];
        let mut sel = Vec::new();
        mask_all_but_top_k(&mut row, 2, &mut sel);
        assert_eq!(row, [f32::NEG_INFINITY, 5.0, 5.0, f32::NEG_INFINITY, f32::NEG_INFINITY]);
    }
}
