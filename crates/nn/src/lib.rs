//! A tiny neural-network stack sufficient for the PFRL-DM paper: multilayer
//! perceptrons with exact hand-derived backpropagation, the Adam optimizer,
//! parameter flattening for federated exchange, and scaled-dot-product
//! multi-head attention for the server-side aggregator.
//!
//! Everything is deterministic given a seed and verified against finite
//! differences in the test suite, which is what makes the federated
//! experiments bit-for-bit reproducible (the paper's PyTorch stack cannot
//! promise that across GPUs).
//!
//! # Example
//!
//! ```
//! use pfrl_nn::{Activation, Adam, Mlp};
//! use pfrl_tensor::Matrix;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Fit y = 2x on a few points with a 1-hidden-layer tanh MLP.
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
//! let mut opt = Adam::new(net.param_count(), 1e-2);
//! let x = Matrix::from_rows(&[&[0.0], &[0.25], &[0.5], &[0.75]]);
//! let y = [0.0f32, 0.5, 1.0, 1.5];
//! for _ in 0..500 {
//!     let out = net.forward_train(&x);
//!     let mut grad = Matrix::zeros(4, 1);
//!     for i in 0..4 {
//!         grad[(i, 0)] = 2.0 * (out[(i, 0)] - y[i]) / 4.0;
//!     }
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step_mlp(&mut net);
//! }
//! let pred = net.forward(&Matrix::from_rows(&[&[0.5]]));
//! assert!((pred[(0, 0)] - 1.0).abs() < 0.05);
//! ```

pub mod activation;
pub mod adam;
pub mod attention;
pub mod checkpoint;
pub mod linear;
pub mod mlp;
pub mod params;

pub use activation::Activation;
pub use adam::{Adam, AdamState};
pub use attention::{
    multi_head_attention_weights, multi_head_attention_weights_into, scaled_dot_product_attention,
    AttentionScratch, MultiHeadConfig,
};
pub use linear::Linear;
pub use mlp::Mlp;
pub use params::{
    apply_mixing_matrix_into, average_params, average_params_into, coordinate_median_into, l2_norm,
    norm_clipped_mean_into, trimmed_mean_into, validate_params, validate_params_in_band,
    weighted_combination, weighted_combination_into, ParamFault,
};
