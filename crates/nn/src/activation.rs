//! Element-wise activation functions with exact derivatives.

use pfrl_tensor::Matrix;

/// Activation applied after each hidden linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent — the paper's hidden-layer activation.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// No activation (used implicitly on output layers).
    Identity,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward_inplace(self, x: &mut Matrix) {
        self.forward_slice_inplace(x.as_mut_slice());
    }

    /// Slice form of [`Activation::forward_inplace`] — the per-decision
    /// inference path works on plain row vectors.
    ///
    /// Tanh is evaluated by the shared `pfrl-tensor` polynomial kernel
    /// (`ops::tanh_slice_inplace`), so the scalar and SIMD tiers are
    /// bit-identical and training and serving share one activation
    /// definition (~1e-7 absolute difference from libm `tanhf`).
    pub fn forward_slice_inplace(self, x: &mut [f32]) {
        match self {
            Activation::Tanh => pfrl_tensor::ops::tanh_slice_inplace(x),
            Activation::Relu => x.iter_mut().for_each(|v| *v = v.max(0.0)),
            Activation::Identity => {}
        }
    }

    /// Multiplies `grad` in place by the derivative of the activation,
    /// evaluated from the *post-activation* output `y` (both tanh and ReLU
    /// derivatives are expressible from their outputs, avoiding a second
    /// cached tensor).
    pub fn backward_inplace(self, y: &Matrix, grad: &mut Matrix) {
        assert_eq!(y.shape(), grad.shape(), "activation backward shape mismatch");
        match self {
            Activation::Tanh => {
                for (g, &out) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= 1.0 - out * out;
                }
            }
            Activation::Relu => {
                for (g, &out) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if out <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_forward_hand_values() {
        let mut x = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]);
        Activation::Tanh.forward_inplace(&mut x);
        assert!((x[(0, 0)]).abs() < 1e-7);
        assert!((x[(0, 1)] - 0.761_594_2).abs() < 1e-6);
        assert!((x[(0, 2)] + 0.761_594_2).abs() < 1e-6);
    }

    #[test]
    fn relu_clips_negatives() {
        let mut x = Matrix::from_rows(&[&[-2.0, 0.0, 3.0]]);
        Activation::Relu.forward_inplace(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn identity_is_noop() {
        let mut x = Matrix::from_rows(&[&[-2.0, 3.0]]);
        Activation::Identity.forward_inplace(&mut x);
        assert_eq!(x.as_slice(), &[-2.0, 3.0]);
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        for &v in &[-1.5f32, -0.2, 0.0, 0.7, 2.0] {
            let mut y = Matrix::from_rows(&[&[v]]);
            Activation::Tanh.forward_inplace(&mut y);
            let mut g = Matrix::filled(1, 1, 1.0);
            Activation::Tanh.backward_inplace(&y, &mut g);
            let eps = 1e-3;
            let fd = ((v + eps).tanh() - (v - eps).tanh()) / (2.0 * eps);
            assert!((g[(0, 0)] - fd).abs() < 1e-3, "at {v}: {} vs {}", g[(0, 0)], fd);
        }
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let y = Matrix::from_rows(&[&[0.0, 2.0]]); // post-activation
        let mut g = Matrix::from_rows(&[&[5.0, 5.0]]);
        Activation::Relu.backward_inplace(&y, &mut g);
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }
}
