//! The Adam optimizer (Kingma & Ba, 2015), operating on flat parameter and
//! gradient vectors so the same optimizer serves actor, critic, and public
//! critic networks.

use crate::params::validate_params;
use crate::Mlp;
use pfrl_tensor::ops;

/// Optimizer moments captured mid-run, for checkpoint/resume of a training
/// stream (hyperparameters are reconstructed from config, not stored here).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First-moment estimates.
    pub m: Vec<f32>,
    /// Second-moment estimates.
    pub v: Vec<f32>,
    /// Steps taken.
    pub t: u64,
}

/// Adam state for a fixed-size parameter vector.
///
/// The paper trains the actor at learning rate `3e-4` and critics at `1e-4`
/// (Sec. 3.1); these are constructor arguments here.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Optional global-norm gradient clipping (disabled when `None`).
    pub max_grad_norm: Option<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Workspace: clipped-gradient copy, flat params, flat grads. Retained
    /// across steps so [`Adam::step`]/[`Adam::step_mlp`] stop allocating
    /// after the first call.
    clip_buf: Vec<f32>,
    flat_p: Vec<f32>,
    flat_g: Vec<f32>,
}

impl Adam {
    /// Creates Adam with PyTorch-default betas `(0.9, 0.999)` and `eps 1e-8`.
    pub fn new(param_count: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: Some(5.0),
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
            t: 0,
            clip_buf: Vec::new(),
            flat_p: Vec::new(),
            flat_g: Vec::new(),
        }
    }

    /// Builder-style override of the momentum coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Builder-style override of the gradient-norm clip (None disables).
    pub fn with_max_grad_norm(mut self, max: Option<f32>) -> Self {
        self.max_grad_norm = max;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules / ablations).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Resets first/second-moment state (used when a client receives a brand
    /// new aggregated model and stale momentum would point the wrong way).
    pub fn reset_state(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    /// Captures the optimizer's moment state for checkpointing.
    pub fn snapshot_state(&self) -> AdamState {
        AdamState { m: self.m.clone(), v: self.v.clone(), t: self.t }
    }

    /// Restores moment state captured by [`Self::snapshot_state`].
    ///
    /// # Panics
    /// If the state's vector lengths disagree with this optimizer's.
    pub fn restore_state(&mut self, state: &AdamState) {
        assert_eq!(state.m.len(), self.m.len(), "Adam: restored m length mismatch");
        assert_eq!(state.v.len(), self.v.len(), "Adam: restored v length mismatch");
        self.m.copy_from_slice(&state.m);
        self.v.copy_from_slice(&state.v);
        self.t = state.t;
    }

    /// One Adam update of `params` given `grads`.
    ///
    /// # Panics
    /// If the vector lengths disagree with the optimizer's state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "Adam: params length changed");
        assert_eq!(grads.len(), self.m.len(), "Adam: grads length mismatch");
        debug_assert!(
            validate_params(grads).is_ok(),
            "Adam: non-finite gradient — corruption upstream of the optimizer"
        );
        let grads = if let Some(max) = self.max_grad_norm {
            self.clip_buf.clear();
            self.clip_buf.extend_from_slice(grads);
            ops::clip_l2_norm(&mut self.clip_buf, max);
            &self.clip_buf[..]
        } else {
            grads
        };
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        debug_assert!(
            validate_params(params).is_ok(),
            "Adam: non-finite parameter after step — corrupted update"
        );
    }

    /// Convenience: one Adam step on an [`Mlp`]'s accumulated gradients.
    ///
    /// The flat parameter/gradient vectors live in the optimizer's
    /// workspace and are reused across steps (allocation-free after the
    /// first call).
    pub fn step_mlp(&mut self, net: &mut Mlp) {
        // Temporarily move the buffers out so `step` can borrow `self`.
        let mut params = std::mem::take(&mut self.flat_p);
        let mut grads = std::mem::take(&mut self.flat_g);
        net.flat_grads_into(&mut grads);
        net.flat_params_into(&mut params);
        self.step(&mut params, &grads);
        net.set_flat_params(&params);
        self.flat_p = params;
        self.flat_g = grads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_matches_hand_computation() {
        // With zero state, one step moves each param by exactly
        // -lr * g/(|g| + eps) ≈ -lr * sign(g) after bias correction.
        let mut opt = Adam::new(2, 0.1).with_max_grad_norm(None);
        let mut p = vec![1.0f32, -1.0];
        opt.step(&mut p, &[0.5, -0.25]);
        assert!((p[0] - 0.9).abs() < 1e-4, "{}", p[0]);
        assert!((p[1] + 0.9).abs() < 1e-4, "{}", p[1]);
    }

    #[test]
    fn zero_gradient_is_fixed_point() {
        let mut opt = Adam::new(3, 0.1);
        let mut p = vec![1.0f32, 2.0, 3.0];
        let orig = p.clone();
        opt.step(&mut p, &[0.0, 0.0, 0.0]);
        assert_eq!(p, orig);
    }

    #[test]
    fn converges_on_quadratic() {
        // minimize f(x) = (x - 3)²
        let mut opt = Adam::new(1, 0.1).with_max_grad_norm(None);
        let mut p = vec![-5.0f32];
        for _ in 0..2000 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "converged to {}", p[0]);
    }

    #[test]
    fn grad_clipping_bounds_update() {
        let mut clipped = Adam::new(1, 1.0).with_max_grad_norm(Some(1.0));
        let mut unclipped = Adam::new(1, 1.0).with_max_grad_norm(None);
        let mut p1 = vec![0.0f32];
        let mut p2 = vec![0.0f32];
        clipped.step(&mut p1, &[1e6]);
        unclipped.step(&mut p2, &[1e6]);
        // Adam normalizes by sqrt(v) so single-step sizes coincide, but the
        // clipped moments stay bounded.
        assert!(clipped.m[0].abs() <= 0.11, "clipped m: {}", clipped.m[0]);
        assert!(unclipped.m[0].abs() > 1e4);
        let _ = (p1, p2);
    }

    #[test]
    fn reset_state_clears_momentum() {
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        assert!(opt.steps() == 1 && opt.m[0] != 0.0);
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
        assert_eq!(opt.m[0], 0.0);
        assert_eq!(opt.v[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0f32, 0.0];
        opt.step(&mut p, &[1.0]);
    }
}
