//! Flat-parameter-vector arithmetic used by the federated aggregators.

use pfrl_tensor::Matrix;
use rayon::prelude::*;

/// Why a parameter vector failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamFault {
    /// A NaN at the given flat index.
    Nan(usize),
    /// An infinity at the given flat index.
    Infinite(usize),
    /// The vector's L2 norm fell outside the cohort-relative band
    /// `[median / band, median · band]` — well-formed, but an outlier
    /// against the rest of the cohort (see [`validate_params_in_band`]).
    NormOutOfBand {
        /// The measured norm.
        norm: f32,
        /// The cohort median norm the band is centered on.
        median: f32,
        /// The configured band factor (> 1).
        band: f32,
    },
}

impl std::fmt::Display for ParamFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamFault::Nan(i) => write!(f, "NaN at flat index {i}"),
            ParamFault::Infinite(i) => write!(f, "infinite value at flat index {i}"),
            ParamFault::NormOutOfBand { norm, median, band } => write!(
                f,
                "norm {norm} outside the cohort band [{:.4}, {:.4}] (median {median}, band {band})",
                median / band,
                median * band
            ),
        }
    }
}

/// Checks every element of a flat parameter (or gradient) vector is finite,
/// reporting the first offender. Used as a debug assertion on the Adam and
/// flat-param hot paths and as the first stage of the federation's
/// update-quarantine gate.
pub fn validate_params(params: &[f32]) -> Result<(), ParamFault> {
    for (i, &p) in params.iter().enumerate() {
        if p.is_nan() {
            return Err(ParamFault::Nan(i));
        }
        if p.is_infinite() {
            return Err(ParamFault::Infinite(i));
        }
    }
    Ok(())
}

/// L2 norm of a flat parameter vector. Same accumulation order as the
/// federation's quarantine gate, so both sides of the band agree bitwise.
pub fn l2_norm(params: &[f32]) -> f32 {
    params.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// The cohort-relative half of the quarantine gate: accepts a vector only
/// if [`validate_params`] passes *and* its L2 norm lies inside
/// `[median / band, median · band]` around the cohort median norm. Catches
/// well-formed outliers (stealth scaling, deflated uploads) that the
/// absolute norm limit misses. A non-positive `median` disables the band
/// (degenerate cohorts cannot define one).
///
/// # Panics
/// If `band <= 1` (the band would reject the median itself).
pub fn validate_params_in_band(params: &[f32], median: f32, band: f32) -> Result<(), ParamFault> {
    assert!(band > 1.0, "norm band factor {band} must exceed 1");
    validate_params(params)?;
    if median <= 0.0 {
        return Ok(());
    }
    let norm = l2_norm(params);
    if norm > median * band || norm * band < median {
        return Err(ParamFault::NormOutOfBand { norm, median, band });
    }
    Ok(())
}

/// Element-wise average of equally-long parameter vectors (FedAvg, Eq. 22).
///
/// # Panics
/// If `params` is empty or lengths disagree.
pub fn average_params(params: &[Vec<f32>]) -> Vec<f32> {
    assert!(!params.is_empty(), "average_params: no clients");
    let n = params[0].len();
    let mut out = vec![0.0f32; n];
    for (k, p) in params.iter().enumerate() {
        assert_eq!(p.len(), n, "average_params: client {k} has mismatched length");
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    let inv = 1.0 / params.len() as f32;
    out.iter_mut().for_each(|v| *v *= inv);
    out
}

/// [`average_params`] into a reusable output vector: allocation-free once
/// `out`'s capacity suffices, and bitwise identical to the allocating form
/// (same client-order accumulation, same final scale).
pub fn average_params_into(params: &[Vec<f32>], out: &mut Vec<f32>) {
    assert!(!params.is_empty(), "average_params: no clients");
    let n = params[0].len();
    out.clear();
    out.resize(n, 0.0);
    for (k, p) in params.iter().enumerate() {
        assert_eq!(p.len(), n, "average_params: client {k} has mismatched length");
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    let inv = 1.0 / params.len() as f32;
    out.iter_mut().for_each(|v| *v *= inv);
}

/// Asserts `params` is a non-empty, non-ragged cohort and returns the
/// common vector length.
fn cohort_len(params: &[Vec<f32>], what: &str) -> usize {
    assert!(!params.is_empty(), "{what}: no clients");
    let n = params[0].len();
    for (k, p) in params.iter().enumerate() {
        assert_eq!(p.len(), n, "{what}: client {k} has mismatched length");
    }
    n
}

/// Coordinate-wise median of equally-long parameter vectors — the
/// classic Byzantine-robust reduction (breakdown point 1/2: any minority
/// of arbitrary uploads moves each coordinate at most to an honest
/// client's value). Even cohorts take the midpoint of the two central
/// order statistics. `scratch` is a reusable K-length sort buffer;
/// allocation-free once `scratch` and `out` capacities suffice. Sorting
/// makes the result exactly permutation-invariant, unlike a mean.
///
/// # Panics
/// If `params` is empty or lengths disagree.
pub fn coordinate_median_into(params: &[Vec<f32>], scratch: &mut Vec<f32>, out: &mut Vec<f32>) {
    let n = cohort_len(params, "coordinate_median");
    let k = params.len();
    out.clear();
    out.resize(n, 0.0);
    for (j, o) in out.iter_mut().enumerate() {
        scratch.clear();
        scratch.extend(params.iter().map(|p| p[j]));
        scratch.sort_unstable_by(f32::total_cmp);
        *o = if k % 2 == 1 { scratch[k / 2] } else { 0.5 * (scratch[k / 2 - 1] + scratch[k / 2]) };
    }
}

/// Coordinate-wise β-trimmed mean: per coordinate, drop the
/// `floor(β · K)` smallest and largest values, average the rest. β = 0
/// degenerates to the plain mean (over sorted values — equal up to
/// floating-point reassociation); β < 0.5 is required so at least one
/// value survives. Robust to any coalition smaller than the trim count.
/// `scratch` is a reusable K-length sort buffer.
///
/// # Panics
/// If `params` is empty, lengths disagree, or β outside `[0, 0.5)`.
pub fn trimmed_mean_into(
    params: &[Vec<f32>],
    beta: f32,
    scratch: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    assert!((0.0..0.5).contains(&beta), "trim fraction {beta} outside [0, 0.5)");
    let n = cohort_len(params, "trimmed_mean");
    let k = params.len();
    let trim = ((beta * k as f32).floor() as usize).min((k - 1) / 2);
    let kept = k - 2 * trim;
    let inv = 1.0 / kept as f32;
    out.clear();
    out.resize(n, 0.0);
    for (j, o) in out.iter_mut().enumerate() {
        scratch.clear();
        scratch.extend(params.iter().map(|p| p[j]));
        scratch.sort_unstable_by(f32::total_cmp);
        *o = scratch[trim..k - trim].iter().sum::<f32>() * inv;
    }
}

/// Norm-clipped mean: every upload is scaled down to L2 norm ≤ τ before
/// the plain mean, bounding any single client's pull to τ/K. Returns the
/// number of clipped uploads (the `fed/clipped` counter). `scales` is a
/// reusable K-length buffer of per-client factors.
///
/// # Panics
/// If `params` is empty, lengths disagree, or `tau` is not positive.
pub fn norm_clipped_mean_into(
    params: &[Vec<f32>],
    tau: f32,
    scales: &mut Vec<f32>,
    out: &mut Vec<f32>,
) -> usize {
    assert!(tau > 0.0, "clip threshold {tau} must be positive");
    let n = cohort_len(params, "norm_clipped_mean");
    let mut clipped = 0usize;
    scales.clear();
    scales.extend(params.iter().map(|p| {
        let norm = l2_norm(p);
        if norm > tau {
            clipped += 1;
            tau / norm
        } else {
            1.0
        }
    }));
    out.clear();
    out.resize(n, 0.0);
    for (p, &s) in params.iter().zip(scales.iter()) {
        for (o, v) in out.iter_mut().zip(p) {
            *o += s * v;
        }
    }
    let inv = 1.0 / params.len() as f32;
    out.iter_mut().for_each(|v| *v *= inv);
    clipped
}

/// Weighted combination `Σ_k w_k · θ_k` (one personalized model, Eq. 21).
///
/// # Panics
/// If lengths disagree or `weights.len() != params.len()`.
pub fn weighted_combination(weights: &[f32], params: &[Vec<f32>]) -> Vec<f32> {
    assert_eq!(weights.len(), params.len(), "weights/params count mismatch");
    assert!(!params.is_empty(), "weighted_combination: no clients");
    let n = params[0].len();
    let mut out = vec![0.0f32; n];
    for (w, p) in weights.iter().zip(params) {
        assert_eq!(p.len(), n, "weighted_combination: mismatched length");
        for (o, v) in out.iter_mut().zip(p) {
            *o += w * v;
        }
    }
    out
}

/// [`weighted_combination`] into a reusable output vector, skipping clients
/// whose weight is exactly `0.0` — the representation the top-k attention
/// mask produces (masked scores become exp(-inf) = exact zero after the
/// softmax), so a sparse `K`-row costs O(k·P) instead of O(K·P).
///
/// For finite parameter vectors the skip is exact: `x + 0.0·v` rounds to
/// `x` for every finite `x` the accumulator can hold (it starts at `+0.0`
/// and a round-to-nearest sum never produces `-0.0` from a `+0.0` start),
/// so dense weights — which a softmax never makes exactly zero — give
/// results bitwise identical to [`weighted_combination`].
pub fn weighted_combination_into(weights: &[f32], params: &[Vec<f32>], out: &mut Vec<f32>) {
    assert_eq!(weights.len(), params.len(), "weights/params count mismatch");
    assert!(!params.is_empty(), "weighted_combination: no clients");
    let n = params[0].len();
    out.clear();
    out.resize(n, 0.0);
    for (w, p) in weights.iter().zip(params) {
        assert_eq!(p.len(), n, "weighted_combination: mismatched length");
        if *w == 0.0 {
            continue;
        }
        for (o, v) in out.iter_mut().zip(p) {
            *o += w * v;
        }
    }
}

/// Applies a `K×K` mixing matrix to `K` parameter vectors, producing `K`
/// personalized vectors: `out_k = Σ_j W[k][j] · θ_j` — the server step of
/// Algorithm 1, line 12.
///
/// # Panics
/// If the matrix is not `K×K` for `K = params.len()`.
pub fn apply_mixing_matrix(mix: &Matrix, params: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let k = params.len();
    assert_eq!(mix.shape(), (k, k), "mixing matrix must be {k}x{k}");
    (0..k).map(|i| weighted_combination(mix.row(i), params)).collect()
}

/// [`apply_mixing_matrix`] into a reusable vector-of-vectors via the
/// zero-skipping [`weighted_combination_into`]; allocation-free once every
/// row's capacity suffices. Output rows are independent, so `parallel`
/// fans them over the rayon pool without changing a single float op —
/// bit-identity at any thread count.
pub fn apply_mixing_matrix_into(
    mix: &Matrix,
    params: &[Vec<f32>],
    parallel: bool,
    out: &mut Vec<Vec<f32>>,
) {
    let k = params.len();
    assert_eq!(mix.shape(), (k, k), "mixing matrix must be {k}x{k}");
    out.truncate(k);
    while out.len() < k {
        out.push(Vec::new());
    }
    if parallel {
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, row)| weighted_combination_into(mix.row(i), params, row));
    } else {
        for (i, row) in out.iter_mut().enumerate() {
            weighted_combination_into(mix.row(i), params, row);
        }
    }
}

/// Squared L2 distance between two parameter vectors (diagnostics).
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_identical_is_identity() {
        let p = vec![vec![1.0, 2.0, 3.0]; 4];
        assert_eq!(average_params(&p), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn average_hand_example() {
        let p = vec![vec![0.0, 2.0], vec![4.0, 6.0]];
        assert_eq!(average_params(&p), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn average_empty_panics() {
        let _ = average_params(&[]);
    }

    #[test]
    fn weighted_combination_hand_example() {
        let p = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let c = weighted_combination(&[0.25, 0.75], &p);
        assert_eq!(c, vec![0.25, 0.75]);
    }

    #[test]
    fn uniform_weights_equal_average() {
        let p = vec![vec![1.0, 5.0], vec![3.0, 7.0], vec![5.0, 9.0]];
        let w = vec![1.0 / 3.0; 3];
        let avg = average_params(&p);
        let comb = weighted_combination(&w, &p);
        for (a, b) in avg.iter().zip(&comb) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn identity_mixing_matrix_is_noop() {
        let p = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let out = apply_mixing_matrix(&Matrix::identity(3), &p);
        assert_eq!(out, p);
    }

    #[test]
    fn uniform_mixing_matrix_averages() {
        let p = vec![vec![0.0, 0.0], vec![6.0, 12.0]];
        let mix = Matrix::filled(2, 2, 0.5);
        let out = apply_mixing_matrix(&mix, &p);
        assert_eq!(out[0], vec![3.0, 6.0]);
        assert_eq!(out[1], vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "mixing matrix")]
    fn wrong_mixing_shape_panics() {
        let p = vec![vec![1.0], vec![2.0]];
        let _ = apply_mixing_matrix(&Matrix::zeros(3, 3), &p);
    }

    #[test]
    fn into_forms_match_allocating_forms() {
        let p = vec![vec![1.0, 5.0, -2.0], vec![3.0, 7.0, 0.5], vec![5.0, 9.0, -1.25]];
        let mut avg = vec![f32::NAN; 1];
        average_params_into(&p, &mut avg);
        assert_eq!(avg, average_params(&p));
        let w = [0.1, 0.0, 0.9];
        let mut comb = vec![f32::NAN; 7];
        weighted_combination_into(&w, &p, &mut comb);
        assert_eq!(comb, weighted_combination(&w, &p));
        let mix = Matrix::from_rows(&[&[0.2, 0.8, 0.0], &[0.0, 1.0, 0.0], &[0.5, 0.0, 0.5]]);
        for parallel in [false, true] {
            let mut out = vec![vec![f32::NAN; 2]; 5];
            apply_mixing_matrix_into(&mix, &p, parallel, &mut out);
            assert_eq!(out, apply_mixing_matrix(&mix, &p), "parallel={parallel}");
        }
    }

    #[test]
    fn zero_skip_is_exact_on_identity_mixing() {
        let p = vec![vec![1.0, -2.0], vec![3.0, 4.0], vec![-5.0, 6.0]];
        let mut out = Vec::new();
        apply_mixing_matrix_into(&Matrix::identity(3), &p, false, &mut out);
        assert_eq!(out, p);
    }

    #[test]
    fn coordinate_median_hand_examples() {
        // Odd cohort: the middle order statistic, per coordinate.
        let p = vec![vec![1.0, -5.0], vec![3.0, 100.0], vec![2.0, -6.0]];
        let (mut ws, mut out) = (Vec::new(), Vec::new());
        coordinate_median_into(&p, &mut ws, &mut out);
        assert_eq!(out, vec![2.0, -5.0]);
        // Even cohort: midpoint of the two central values.
        let p = vec![vec![1.0], vec![2.0], vec![10.0], vec![4.0]];
        coordinate_median_into(&p, &mut ws, &mut out);
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn median_ignores_a_minority_outlier() {
        let honest = vec![vec![1.0, 2.0], vec![1.1, 2.1], vec![0.9, 1.9]];
        let mut poisoned = honest.clone();
        poisoned.push(vec![1e9, -1e9]);
        poisoned.push(vec![0.95, 2.05]);
        let (mut ws, mut out) = (Vec::new(), Vec::new());
        coordinate_median_into(&poisoned, &mut ws, &mut out);
        for (j, v) in out.iter().enumerate() {
            assert!(v.abs() < 10.0, "coordinate {j} dragged to {v}");
        }
    }

    #[test]
    fn trimmed_mean_drops_extremes_and_degenerates_to_mean() {
        let p = vec![vec![1.0], vec![2.0], vec![3.0], vec![1e6], vec![-1e6]];
        let (mut ws, mut out) = (Vec::new(), Vec::new());
        trimmed_mean_into(&p, 0.2, &mut ws, &mut out);
        assert_eq!(out, vec![2.0]);
        // beta = 0 is the plain mean (up to summation order).
        trimmed_mean_into(&p, 0.0, &mut ws, &mut out);
        let mean = average_params(&p);
        assert!((out[0] - mean[0]).abs() <= 1.0, "{} vs {}", out[0], mean[0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 0.5)")]
    fn trim_fraction_half_rejected() {
        let p = vec![vec![1.0], vec![2.0]];
        trimmed_mean_into(&p, 0.5, &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    fn norm_clip_bounds_outliers_and_counts_them() {
        let p = vec![vec![3.0, 4.0], vec![300.0, 400.0]];
        let (mut scales, mut out) = (Vec::new(), Vec::new());
        // tau = 5: the first vector is untouched, the second shrinks 100x.
        let clipped = norm_clipped_mean_into(&p, 5.0, &mut scales, &mut out);
        assert_eq!(clipped, 1);
        assert_eq!(out, vec![3.0, 4.0]);
        // A generous tau clips nothing and equals the plain mean.
        let clipped = norm_clipped_mean_into(&p, 1e6, &mut scales, &mut out);
        assert_eq!(clipped, 0);
        assert_eq!(out, average_params(&p));
    }

    #[test]
    fn norm_band_accepts_cohort_and_rejects_outliers() {
        assert_eq!(validate_params_in_band(&[3.0, 4.0], 5.0, 4.0), Ok(()));
        // 100x the median norm: out of band, with the reason attached.
        let err = validate_params_in_band(&[300.0, 400.0], 5.0, 4.0).unwrap_err();
        assert!(matches!(err, ParamFault::NormOutOfBand { .. }), "{err}");
        // 100x *below* the median norm is just as suspicious.
        let err = validate_params_in_band(&[0.03, 0.04], 5.0, 4.0).unwrap_err();
        assert!(matches!(err, ParamFault::NormOutOfBand { .. }), "{err}");
        // Non-finite values still trip the absolute check first.
        let err = validate_params_in_band(&[f32::NAN], 5.0, 4.0).unwrap_err();
        assert_eq!(err, ParamFault::Nan(0));
        // A degenerate median disables the band.
        assert_eq!(validate_params_in_band(&[1e9], 0.0, 4.0), Ok(()));
    }

    #[test]
    fn l2_distance_hand_example() {
        assert_eq!(l2_distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_distance_sq(&[1.0], &[1.0]), 0.0);
    }
}
