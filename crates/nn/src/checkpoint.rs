//! Model checkpointing: a small, versioned, self-describing binary format
//! for saving and restoring [`Mlp`] networks (and therefore trained
//! agents) without external serialization dependencies.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"PFRL-CKPT\x01"
//! u32    number of networks
//! per network:
//!   u8    activation (0 = Tanh, 1 = Relu, 2 = Identity)
//!   u32   number of layer sizes
//!   u32[] layer sizes
//!   f32[] flat parameters (length implied by the sizes)
//! ```

use crate::{Activation, Mlp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs;
use std::io::{self, Error, ErrorKind};
use std::path::Path;

const MAGIC: &[u8; 10] = b"PFRL-CKPT\x01";

fn activation_code(a: Activation) -> u8 {
    match a {
        Activation::Tanh => 0,
        Activation::Relu => 1,
        Activation::Identity => 2,
    }
}

fn activation_from(code: u8) -> io::Result<Activation> {
    match code {
        0 => Ok(Activation::Tanh),
        1 => Ok(Activation::Relu),
        2 => Ok(Activation::Identity),
        other => Err(Error::new(ErrorKind::InvalidData, format!("bad activation code {other}"))),
    }
}

/// Serializes a set of networks into the checkpoint byte format.
pub fn to_bytes(nets: &[&Mlp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(nets.len() as u32).to_le_bytes());
    for net in nets {
        out.push(activation_code(net.activation()));
        let sizes = net.sizes();
        out.extend_from_slice(&(sizes.len() as u32).to_le_bytes());
        for s in &sizes {
            out.extend_from_slice(&(*s as u32).to_le_bytes());
        }
        for p in net.flat_params() {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }
    out
}

/// Reads a checkpoint produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> io::Result<Vec<Mlp>> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> io::Result<&[u8]> {
        if *cursor + n > bytes.len() {
            return Err(Error::new(ErrorKind::UnexpectedEof, "checkpoint truncated"));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let read_u32 = |cursor: &mut usize| -> io::Result<u32> {
        let b = take(cursor, 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    };

    if take(&mut cursor, MAGIC.len())? != MAGIC {
        return Err(Error::new(ErrorKind::InvalidData, "not a PFRL checkpoint"));
    }
    let count = read_u32(&mut cursor)? as usize;
    let mut nets = Vec::with_capacity(count);
    for _ in 0..count {
        let act = activation_from(take(&mut cursor, 1)?[0])?;
        let n_sizes = read_u32(&mut cursor)? as usize;
        if n_sizes < 2 {
            return Err(Error::new(ErrorKind::InvalidData, "network needs >= 2 layer sizes"));
        }
        let mut sizes = Vec::with_capacity(n_sizes);
        for _ in 0..n_sizes {
            sizes.push(read_u32(&mut cursor)? as usize);
        }
        // Shape first (seed irrelevant — parameters are overwritten).
        let mut net = Mlp::new(&sizes, act, &mut SmallRng::seed_from_u64(0));
        let n_params = net.param_count();
        let raw = take(&mut cursor, n_params * 4)?;
        let params: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        net.set_flat_params(&params);
        nets.push(net);
    }
    if cursor != bytes.len() {
        return Err(Error::new(ErrorKind::InvalidData, "trailing bytes in checkpoint"));
    }
    Ok(nets)
}

/// Writes networks to a checkpoint file (parents created).
pub fn save(path: &Path, nets: &[&Mlp]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_bytes(nets))
}

/// Loads networks from a checkpoint file.
pub fn load(path: &Path) -> io::Result<Vec<Mlp>> {
    from_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_tensor::Matrix;

    fn net(sizes: &[usize], seed: u64) -> Mlp {
        Mlp::new(sizes, Activation::Tanh, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let a = net(&[4, 8, 3], 1);
        let b = net(&[4, 16, 16, 1], 2);
        let bytes = to_bytes(&[&a, &b]);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4]]);
        assert_eq!(a.forward(&x), restored[0].forward(&x));
        assert_eq!(b.forward(&x), restored[1].forward(&x));
        assert_eq!(restored[0].sizes(), vec![4, 8, 3]);
        assert_eq!(restored[1].activation(), Activation::Tanh);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pfrl_ckpt_test");
        let path = dir.join("model.ckpt");
        let a = net(&[3, 5, 2], 7);
        save(&path, &[&a]).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored[0].flat_params(), a.flat_params());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = from_bytes(b"NOT-A-CHECKPOINT").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let a = net(&[4, 4, 2], 3);
        let bytes = to_bytes(&[&a]);
        for cut in [5, MAGIC.len() + 2, bytes.len() - 3] {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = net(&[2, 2], 4);
        let mut bytes = to_bytes(&[&a]);
        bytes.push(0xFF);
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let bytes = to_bytes(&[]);
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }
}
