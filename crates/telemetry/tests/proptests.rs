//! Property tests for the log-scale histogram's quantile math.

use pfrl_telemetry::LogHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bracketing: for positive samples, every recorded quantile estimate
    /// `e` of the true (order-statistic) quantile `t` satisfies
    /// `t ≤ e ≤ t · (1 + relative_error_bound())`.
    #[test]
    fn quantiles_bracket_true_quantiles(
        samples in vec(1e-6f64..1e9, 1..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        let bound = 1.0 + LogHistogram::relative_error_bound();
        prop_assert!(
            truth <= est && est <= truth * bound,
            "q={} n={} truth={} est={} bound={}",
            q, sorted.len(), truth, est, truth * bound
        );
    }

    /// Quantiles are monotone in `q` and pinned inside [min, max].
    #[test]
    fn quantiles_are_monotone_and_within_range(
        samples in vec(1e-6f64..1e9, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(lo) >= h.min());
        prop_assert!(h.quantile(hi) <= h.max());
    }

    /// Count/sum bookkeeping matches the sample stream, and merging two
    /// histograms fingerprints identically to recording both streams.
    #[test]
    fn merge_matches_joint_recording(
        xs in vec(1e-3f64..1e6, 0..100),
        ys in vec(1e-3f64..1e6, 0..100),
    ) {
        let mut hx = LogHistogram::new();
        let mut hy = LogHistogram::new();
        let mut joint = LogHistogram::new();
        for &v in &xs { hx.record(v); joint.record(v); }
        for &v in &ys { hy.record(v); joint.record(v); }
        hx.merge(&hy);
        prop_assert_eq!(hx.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(hx.deterministic_fingerprint(), joint.deterministic_fingerprint());
    }
}
