//! Hierarchical wall-clock spans on monotonic timers.

use crate::recorder::Telemetry;
use std::borrow::Cow;
use std::time::{Duration, Instant};

/// RAII timing guard. Created by [`Telemetry::span`]; records elapsed
/// nanoseconds under its `/`-separated path when dropped (or explicitly via
/// [`SpanGuard::finish`]). [`SpanGuard::child`] derives nested spans whose
/// paths extend the parent's (`fed/round` → `fed/round/upload`).
///
/// On a disabled [`Telemetry`] handle the guard is inert: no clock is read
/// and no path string is allocated.
pub struct SpanGuard<'a> {
    telemetry: &'a Telemetry,
    path: Cow<'static, str>,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn new(telemetry: &'a Telemetry, path: &'static str) -> Self {
        SpanGuard {
            telemetry,
            path: Cow::Borrowed(path),
            start: telemetry.is_enabled().then(Instant::now),
        }
    }

    /// A child span named `<self.path>/<name>`. Children must drop (or
    /// `finish`) before the parent for the recorded nesting to be truthful;
    /// Rust's drop order makes that the default for stack-held guards.
    pub fn child(&self, name: &str) -> SpanGuard<'a> {
        if self.start.is_none() {
            return SpanGuard { telemetry: self.telemetry, path: Cow::Borrowed(""), start: None };
        }
        SpanGuard {
            telemetry: self.telemetry,
            path: Cow::Owned(format!("{}/{}", self.path, name)),
            start: Some(Instant::now()),
        }
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Time since the span started (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.start.map_or(Duration::ZERO, |s| s.elapsed())
    }

    /// End the span now, record it, and return the measured duration.
    pub fn finish(mut self) -> Duration {
        match self.start.take() {
            Some(s) => {
                let d = s.elapsed();
                self.telemetry.span_ns(&self.path, d.as_nanos() as u64);
                d
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.start.take() {
            self.telemetry.span_ns(&self.path, s.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{InMemoryRecorder, Telemetry};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        {
            let round = t.span("fed/round");
            {
                let upload = round.child("upload");
                assert_eq!(upload.path(), "fed/round/upload");
                let inner = upload.child("serialize");
                assert_eq!(inner.path(), "fed/round/upload/serialize");
            }
        }
        let s = rec.snapshot();
        assert_eq!(s.span_count("fed/round"), 1);
        assert_eq!(s.span_count("fed/round/upload"), 1);
        assert_eq!(s.span_count("fed/round/upload/serialize"), 1);
    }

    #[test]
    fn child_elapsed_is_monotonic_and_bounded_by_parent() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        let parent = t.span("outer");
        std::thread::sleep(Duration::from_millis(2));
        let child = parent.child("inner");
        std::thread::sleep(Duration::from_millis(2));
        let e1 = child.elapsed();
        let e2 = child.elapsed();
        assert!(e2 >= e1, "elapsed must be monotonic: {e1:?} then {e2:?}");
        let child_dur = child.finish();
        let parent_dur = parent.finish();
        assert!(child_dur > Duration::ZERO);
        assert!(parent_dur >= child_dur, "parent {parent_dur:?} < child {child_dur:?}");
        let s = rec.snapshot();
        assert!(s.span_total_ns("outer") >= s.span_total_ns("outer/inner"));
    }

    #[test]
    fn finish_prevents_double_record() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        let span = t.span("once");
        let _ = span.finish(); // drop runs after finish; must not re-record
        assert_eq!(rec.snapshot().span_count("once"), 1);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let t = Telemetry::noop();
        let parent = t.span("a");
        let child = parent.child("b");
        assert_eq!(child.elapsed(), Duration::ZERO);
        assert_eq!(child.finish(), Duration::ZERO);
        assert_eq!(parent.finish(), Duration::ZERO);
    }
}
