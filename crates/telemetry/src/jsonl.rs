//! Buffered JSONL event sink: one JSON object per line, streamed to
//! `results/telemetry/<run>.jsonl`.
//!
//! Event schema (all events carry `ns`, nanoseconds since the sink was
//! created, from a monotonic clock):
//!
//! ```json
//! {"ns":1234,"kind":"counter","name":"fed/bytes_up","delta":51200}
//! {"ns":1234,"kind":"gauge","name":"sim/decisions_per_sec","value":8123.4}
//! {"ns":1234,"kind":"observe","name":"rl/episode_reward","value":-17.25}
//! {"ns":1234,"kind":"span","path":"fed/round/local_train","dur_ns":48211}
//! ```
//!
//! Non-finite floats serialize as `null` to keep every line valid JSON.

use crate::recorder::Recorder;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    origin: Instant,
    path: PathBuf,
}

impl JsonlSink {
    /// Create `<dir>/<run>.jsonl` (plus parent directories). Truncates any
    /// previous file for the same run name.
    pub fn create(dir: impl AsRef<Path>, run: &str) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| annotate(e, dir))?;
        let path = dir.join(format!("{run}.jsonl"));
        let file = File::create(&path).map_err(|e| annotate(e, &path))?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)), origin: Instant::now(), path })
    }

    /// The conventional location: `results/telemetry/<run>.jsonl` relative
    /// to the current working directory.
    pub fn for_run(run: &str) -> io::Result<Self> {
        Self::create("results/telemetry", run)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("jsonl writer poisoned");
        // Telemetry must never take down a training run; drop events on IO
        // errors (e.g. disk full) instead of panicking.
        let _ = writeln!(w, "{line}");
    }

    fn ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

fn annotate(e: io::Error, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON float: finite values as-is, otherwise `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v:?}` keeps a decimal point or exponent, so the token is
        // unambiguously a float for readers.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl Recorder for JsonlSink {
    fn counter_add(&self, name: &str, delta: u64) {
        self.write_line(&format!(
            r#"{{"ns":{},"kind":"counter","name":"{}","delta":{}}}"#,
            self.ns(),
            escape_json(name),
            delta
        ));
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.write_line(&format!(
            r#"{{"ns":{},"kind":"gauge","name":"{}","value":{}}}"#,
            self.ns(),
            escape_json(name),
            json_f64(value)
        ));
    }

    fn observe(&self, name: &str, value: f64) {
        self.write_line(&format!(
            r#"{{"ns":{},"kind":"observe","name":"{}","value":{}}}"#,
            self.ns(),
            escape_json(name),
            json_f64(value)
        ));
    }

    fn span_ns(&self, path: &str, nanos: u64) {
        self.write_line(&format!(
            r#"{{"ns":{},"kind":"span","path":"{}","dur_ns":{}}}"#,
            self.ns(),
            escape_json(path),
            nanos
        ));
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("pfrl-telemetry-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn events_stream_as_one_json_object_per_line() {
        let dir = tmp_dir("jsonl");
        let sink = Arc::new(JsonlSink::create(&dir, "run1").unwrap());
        let path = sink.path().to_path_buf();
        let t = Telemetry::new(sink);
        t.counter("fed/bytes_up", 512);
        t.gauge("g", 1.5);
        t.gauge("g_bad", f64::NAN);
        t.observe(r#"odd"name\with_escapes"#, 2.0);
        t.span_ns("fed/round/local_train", 777);
        t.flush();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(
            lines[0].ends_with(r#""kind":"counter","name":"fed/bytes_up","delta":512}"#),
            "unexpected counter line: {}",
            lines[0]
        );
        assert!(lines[2].contains(r#""value":null"#), "{}", lines[2]);
        assert!(lines[3].contains(r#"odd\"name\\with_escapes"#), "{}", lines[3]);
        assert!(lines[4].contains(r#""dur_ns":777"#), "{}", lines[4]);
        // Every line is balanced-brace minimal JSON starting/ending cleanly.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
            assert!(l.contains(r#""ns":"#), "{l}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_json_handles_control_chars() {
        assert_eq!(escape_json("a\"b"), r#"a\"b"#);
        assert_eq!(escape_json("a\\b"), r#"a\\b"#);
        assert_eq!(escape_json("a\nb"), r#"a\nb"#);
        assert_eq!(escape_json("a\u{0001}b"), "a\\u0001b");
    }

    #[test]
    fn json_f64_forms() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
