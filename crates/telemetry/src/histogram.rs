//! Fixed-bucket log-scale histogram with bounded-relative-error quantiles.

/// Sub-buckets per power of two. Bucket boundaries are
/// `2^(MIN_EXP + i/SUB_BUCKETS_PER_OCTAVE)`, giving a worst-case relative
/// quantile error of `2^(1/8) − 1 ≈ 9.05%`.
pub const SUB_BUCKETS_PER_OCTAVE: usize = 8;

/// Smallest representable exponent: values below `2^-30` (≈ 1e-9) land in
/// the underflow bucket. Covers sub-nanosecond fractions and tiny losses.
const MIN_EXP: i32 = -30;

/// Largest representable exponent: values at or above `2^40` (≈ 1.1e12) land
/// in the overflow bucket. Covers nanosecond timings up to ~18 minutes.
const MAX_EXP: i32 = 40;

const N_CORE: usize = (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS_PER_OCTAVE;
/// Core buckets plus underflow (index 0) and overflow (last index).
const N_BUCKETS: usize = N_CORE + 2;

/// A fixed-layout log₂-bucketed histogram of `f64` samples.
///
/// Every histogram shares the same bucket boundaries, so histograms merge
/// by element-wise addition and equality is well-defined across runs.
/// Recording is O(1) with no allocation after construction.
///
/// Non-positive samples (and samples below `2^-30`) are counted in the
/// underflow bucket; they still contribute to `count`, `sum`, `min`, `max`.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        // NaN and everything ≤ 0 land in the underflow bucket.
        if value <= 0.0 || value.is_nan() {
            return 0;
        }
        let exp = value.log2();
        if exp < MIN_EXP as f64 {
            return 0;
        }
        if exp >= MAX_EXP as f64 {
            return N_BUCKETS - 1;
        }
        let idx = ((exp - MIN_EXP as f64) * SUB_BUCKETS_PER_OCTAVE as f64).floor() as usize + 1;
        idx.min(N_BUCKETS - 2)
    }

    /// Exclusive upper bound of core bucket `idx` (1-based core indices).
    fn bucket_upper_bound(idx: usize) -> f64 {
        debug_assert!((1..N_BUCKETS - 1).contains(&idx));
        2f64.powf(MIN_EXP as f64 + idx as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
    }

    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Element-wise merge; the merged histogram equals one that observed
    /// both sample streams (up to `sum`, which is order-sensitive in the
    /// last float bits).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Returns an upper bound of the bucket holding the ⌈q·n⌉-th smallest
    /// sample, clamped to the observed `[min, max]`. For positive samples
    /// the estimate `e` of true quantile `t` satisfies
    /// `t ≤ e ≤ t · 2^(1/SUB_BUCKETS_PER_OCTAVE)` — the bracketing property
    /// checked by this crate's property tests. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if idx == 0 {
                    // Underflow: no sub-bucket resolution; min is exact-ish.
                    return self.min;
                }
                if idx == N_BUCKETS - 1 {
                    return self.max;
                }
                return Self::bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Worst-case multiplicative quantile error: `2^(1/SUB) − 1`.
    pub fn relative_error_bound() -> f64 {
        2f64.powf(1.0 / SUB_BUCKETS_PER_OCTAVE as f64) - 1.0
    }

    /// Non-empty `(bucket_index, count)` pairs, for compact serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// The order-independent part of the histogram state: bucket counts,
    /// total count, and the exact bit patterns of min/max. Excludes `sum`
    /// (float addition is not associative, so parallel merges may differ in
    /// the last bits). Equal fingerprints ⇒ the same multiset of buckets.
    pub fn deterministic_fingerprint(&self) -> (Vec<(usize, u64)>, u64, u64, u64) {
        (self.nonzero_buckets().collect(), self.count, self.min.to_bits(), self.max.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_yields_nan_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        // min==max==42 and the clamp pins every quantile to the sample.
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.min(), 42.0);
        assert_eq!(h.max(), 42.0);
    }

    #[test]
    fn quantile_brackets_exact_value() {
        let mut h = LogHistogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37).collect();
        for &v in &values {
            h.record(v);
        }
        let bound = 1.0 + LogHistogram::relative_error_bound();
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = h.quantile(q);
            assert!(truth <= est && est <= truth * bound, "q={q}: truth={truth} est={est}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let samples_a: Vec<f64> = (1..50).map(|i| i as f64 * 1.31).collect();
        let samples_b: Vec<f64> = (1..80).map(|i| i as f64 * 0.77).collect();
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hc = LogHistogram::new();
        for &v in &samples_a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &samples_b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha.deterministic_fingerprint(), hc.deterministic_fingerprint());
    }

    #[test]
    fn nonpositive_and_extreme_samples_hit_sentinel_buckets() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e-12);
        h.record(1e15);
        assert_eq!(h.count(), 4);
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, 0); // underflow
        assert_eq!(buckets[0].1, 3);
        assert_eq!(buckets[1].1, 1); // overflow
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 4);
    }
}
