//! `pfrl-telemetry` — zero-overhead metrics, spans, and run manifests for
//! the PFRL-DM stack.
//!
//! The crate is built around one trait, [`Recorder`], with four channels:
//!
//! * **counters** — monotonically increasing `u64` totals (decisions made,
//!   bytes on the wire, rounds completed);
//! * **gauges** — last-write-wins `f64` readings (decisions/sec, buffer α);
//! * **observations** — `f64` samples folded into a fixed-bucket log-scale
//!   [`LogHistogram`] (episode reward, critic loss, queue depth) with
//!   p50/p95/p99 quantiles;
//! * **spans** — hierarchical wall-clock timings on monotonic timers
//!   ([`SpanGuard`]), keyed by `/`-separated paths such as
//!   `fed/round/local_train`.
//!
//! Instrumented code holds a [`Telemetry`] handle. The default handle
//! ([`Telemetry::noop`]) stores no recorder at all, so every call is a
//! single branch on an `Option` discriminant — nothing is formatted, timed,
//! allocated, or locked (verified by `crates/bench/benches/telemetry_overhead.rs`).
//!
//! Determinism contract: wall-clock quantities flow **only** through gauges,
//! spans, and histograms whose name contains `wall` (e.g. `fed/agg_wall_us`),
//! all of which are excluded from the fingerprint. Remaining counters and
//! observations carry values that are themselves deterministic, and both
//! aggregate commutatively (sums and bucket counts),
//! so recorded counter/histogram state is bit-for-bit identical whether
//! clients train sequentially or under rayon (`FedConfig::parallel`) — the
//! same reproducibility guarantee `pfrl-fed` makes for model parameters.
//! [`MetricsSnapshot::deterministic_fingerprint`] captures exactly the
//! order-independent subset.
//!
//! Sinks: [`InMemoryRecorder`] aggregates in process (snapshot via
//! [`InMemoryRecorder::snapshot`]), [`JsonlSink`] streams raw events to
//! `results/telemetry/<run>.jsonl` through a buffered writer, and
//! [`FanoutRecorder`] tees to both. [`RunManifest`] records the who/how of a
//! run (seed, `PFRL_SCALE`, thread count, algorithm, config hash) next to
//! every result CSV.

mod histogram;
mod jsonl;
mod manifest;
mod recorder;
mod span;

pub use histogram::LogHistogram;
pub use jsonl::JsonlSink;
pub use manifest::{fnv1a, RunManifest};
pub use recorder::{
    FanoutRecorder, InMemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder, SpanStats, Telemetry,
};
pub use span::SpanGuard;
