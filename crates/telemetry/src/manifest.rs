//! Run manifests: the who/how of an experiment, written next to its results.

use crate::jsonl::escape_json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash; used to fingerprint configuration values.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Provenance record for one experiment run.
///
/// Written as `<result-stem>.manifest.json` alongside every result CSV so a
/// number in `results/` can always be traced back to the seed, scale,
/// machine parallelism, algorithm, and configuration that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// Run identifier — conventionally the experiment/figure name.
    pub run: String,
    /// Algorithm under test (`pfrl_dm` / `fedavg` / `mfpo` / `ppo`), if one.
    pub algorithm: Option<String>,
    /// Master seed the run derives all randomness from.
    pub seed: u64,
    /// Value of `PFRL_SCALE` at run time (`quick` when unset).
    pub scale: String,
    /// `std::thread::available_parallelism()` on the machine that ran it.
    pub threads: usize,
    /// FNV-1a hash folded over the `Debug` rendering of every config value
    /// registered via [`RunManifest::with_config_of`]; 0 when none.
    pub config_hash: u64,
    /// Unix timestamp (seconds) when the manifest was created.
    pub created_unix_s: u64,
}

impl RunManifest {
    pub fn new(run: &str) -> Self {
        RunManifest {
            run: run.to_string(),
            algorithm: None,
            seed: 0,
            scale: std::env::var("PFRL_SCALE").unwrap_or_else(|_| "quick".to_string()),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            config_hash: 0,
            created_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_algorithm(mut self, algorithm: &str) -> Self {
        self.algorithm = Some(algorithm.to_string());
        self
    }

    /// Fold `cfg`'s `Debug` rendering into the config hash. Call once per
    /// relevant config struct (env, PPO, federation, ...); order matters,
    /// which is fine because call sites are static.
    pub fn with_config_of(mut self, cfg: &impl std::fmt::Debug) -> Self {
        let rendered = format!("{cfg:?}");
        self.config_hash = fnv1a(rendered.as_bytes()) ^ self.config_hash.rotate_left(17);
        self
    }

    pub fn to_json(&self) -> String {
        let algorithm = match &self.algorithm {
            Some(a) => format!("\"{}\"", escape_json(a)),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\n",
                "  \"run\": \"{run}\",\n",
                "  \"algorithm\": {algorithm},\n",
                "  \"seed\": {seed},\n",
                "  \"scale\": \"{scale}\",\n",
                "  \"threads\": {threads},\n",
                "  \"config_hash\": \"{config_hash:016x}\",\n",
                "  \"created_unix_s\": {created}\n",
                "}}\n"
            ),
            run = escape_json(&self.run),
            algorithm = algorithm,
            seed = self.seed,
            scale = escape_json(&self.scale),
            threads = self.threads,
            config_hash = self.config_hash,
            created = self.created_unix_s,
        )
    }

    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", parent.display())))?;
            }
        }
        fs::write(path, self.to_json())
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    }

    /// Write `<stem>.manifest.json` next to `result_path` and return the
    /// manifest's path.
    pub fn write_next_to(&self, result_path: impl AsRef<Path>) -> io::Result<PathBuf> {
        let result_path = result_path.as_ref();
        let stem = result_path.file_stem().and_then(|s| s.to_str()).unwrap_or("run");
        let manifest_path = result_path.with_file_name(format!("{stem}.manifest.json"));
        self.write_to(&manifest_path)?;
        Ok(manifest_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_contains_every_field() {
        let m = RunManifest::new("fig08_training_curves")
            .with_seed(42)
            .with_algorithm("pfrl_dm")
            .with_config_of(&("episodes", 200))
            .with_config_of(&("gamma", 0.99));
        let j = m.to_json();
        for needle in [
            "\"run\": \"fig08_training_curves\"",
            "\"algorithm\": \"pfrl_dm\"",
            "\"seed\": 42",
            "\"scale\": \"",
            "\"threads\": ",
            "\"config_hash\": \"",
            "\"created_unix_s\": ",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn config_hash_depends_on_config() {
        let base = RunManifest::new("x");
        let a = base.clone().with_config_of(&1u32);
        let b = base.clone().with_config_of(&2u32);
        assert_ne!(a.config_hash, b.config_hash);
        assert_eq!(base.config_hash, 0);
    }

    #[test]
    fn write_next_to_places_manifest_beside_result() {
        let dir = std::env::temp_dir().join(format!("pfrl-manifest-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("table3_eval.csv");
        let m = RunManifest::new("table3_eval").with_seed(7);
        let written = m.write_next_to(&csv).unwrap();
        assert_eq!(written, dir.join("table3_eval.manifest.json"));
        let text = fs::read_to_string(&written).unwrap();
        assert!(text.contains("\"seed\": 7"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_errors_carry_path_context() {
        let m = RunManifest::new("x");
        let bogus = Path::new("/proc/definitely/not/writable/m.json");
        let err = m.write_to(bogus).unwrap_err();
        assert!(err.to_string().contains("/proc/definitely"), "error lacks path context: {err}");
    }
}
