//! The `Recorder` trait, the cheap `Telemetry` handle, and the in-process
//! recorder implementations.

use crate::histogram::LogHistogram;
use crate::span::SpanGuard;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A metrics backend. Implementations must be thread-safe: parallel client
/// training calls into one shared recorder from many threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder wants events at all. `Telemetry::new` consults
    /// this once and drops disabled recorders, so per-event calls never pay
    /// for a disabled backend.
    fn enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &str, delta: u64);

    /// Set the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64);

    /// Fold `value` into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Record a completed span at `path` lasting `nanos` nanoseconds.
    fn span_ns(&self, path: &str, nanos: u64);

    /// Flush buffered output, if any.
    fn flush(&self) {}
}

/// Recorder that drops everything. Rarely needed directly — prefer
/// [`Telemetry::noop`], which skips the virtual call entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn counter_add(&self, _: &str, _: u64) {}
    #[inline]
    fn gauge_set(&self, _: &str, _: f64) {}
    #[inline]
    fn observe(&self, _: &str, _: f64) {}
    #[inline]
    fn span_ns(&self, _: &str, _: u64) {}
}

/// The handle instrumented code holds (cheaply cloneable).
///
/// `Telemetry::noop()` holds no recorder, so every recording method is one
/// branch on the `Option` discriminant — no formatting, clock reads, locks,
/// or allocation. This is what makes default-constructed agents, envs, and
/// runners effectively instrumentation-free.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
}

impl Telemetry {
    /// A disabled handle; the default for every instrumented component.
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// Wrap a recorder. A recorder reporting `enabled() == false` is
    /// discarded immediately so the handle degrades to a noop.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        if recorder.enabled() {
            Telemetry { inner: Some(recorder) }
        } else {
            Telemetry { inner: None }
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter_add(name, delta);
        }
    }

    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge_set(name, value);
        }
    }

    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    #[inline]
    pub fn span_ns(&self, path: &str, nanos: u64) {
        if let Some(r) = &self.inner {
            r.span_ns(path, nanos);
        }
    }

    /// Start a hierarchical span; its wall-clock time is recorded at `path`
    /// when the guard drops (or [`SpanGuard::finish`] is called). On a noop
    /// handle no clock is read.
    #[inline]
    pub fn span(&self, path: &'static str) -> SpanGuard<'_> {
        SpanGuard::new(self, path)
    }

    pub fn flush(&self) {
        if let Some(r) = &self.inner {
            r.flush();
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() { "Telemetry(active)" } else { "Telemetry(noop)" })
    }
}

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    pub count: u64,
    pub total_ns: u64,
}

#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// In-process aggregating recorder; read results via [`Self::snapshot`].
#[derive(Default)]
pub struct InMemoryRecorder {
    state: Mutex<MetricsState>,
}

impl InMemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock().expect("telemetry state poisoned");
        MetricsSnapshot {
            counters: st.counters.clone(),
            gauges: st.gauges.clone(),
            histograms: st.histograms.clone(),
            spans: st.spans.clone(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn counter_add(&self, name: &str, delta: u64) {
        let mut st = self.state.lock().expect("telemetry state poisoned");
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut st = self.state.lock().expect("telemetry state poisoned");
        st.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        let mut st = self.state.lock().expect("telemetry state poisoned");
        st.histograms.entry(name.to_string()).or_default().record(value);
    }

    fn span_ns(&self, path: &str, nanos: u64) {
        let mut st = self.state.lock().expect("telemetry state poisoned");
        let s = st.spans.entry(path.to_string()).or_default();
        s.count += 1;
        s.total_ns += nanos;
    }
}

/// A point-in-time copy of an [`InMemoryRecorder`]'s aggregates.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, LogHistogram>,
    pub spans: BTreeMap<String, SpanStats>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans.get(path).map(|s| s.total_ns).unwrap_or(0)
    }

    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.get(path).map(|s| s.count).unwrap_or(0)
    }

    /// The order-independent subset of the snapshot: all counters, plus each
    /// histogram's [`LogHistogram::deterministic_fingerprint`]. Two runs of
    /// a deterministic workload — regardless of thread interleaving — must
    /// produce equal fingerprints; gauges and spans (wall-clock) are
    /// deliberately excluded, as are histograms whose name contains `wall`
    /// (e.g. `fed/agg_wall_us`): those carry elapsed-time samples, the one
    /// class of observation that is *not* deterministic by construction.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_fingerprint(
        &self,
    ) -> (BTreeMap<String, u64>, BTreeMap<String, (Vec<(usize, u64)>, u64, u64, u64)>) {
        (
            self.counters.clone(),
            self.histograms
                .iter()
                .filter(|(k, _)| !k.contains("wall"))
                .map(|(k, h)| (k.clone(), h.deterministic_fingerprint()))
                .collect(),
        )
    }
}

/// Tees every event to several recorders (e.g. in-memory + JSONL).
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        FanoutRecorder { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn counter_add(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.counter_add(name, delta);
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.gauge_set(name, value);
        }
    }

    fn observe(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.observe(name, value);
        }
    }

    fn span_ns(&self, path: &str, nanos: u64) {
        for s in &self.sinks {
            s.span_ns(path, nanos);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_reports_disabled_and_ignores_everything() {
        let t = Telemetry::noop();
        assert!(!t.is_enabled());
        t.counter("c", 1);
        t.gauge("g", 1.0);
        t.observe("h", 1.0);
        let span = t.span("s");
        drop(span);
        t.flush();
        // Wrapping a NoopRecorder degrades to the same thing.
        let t2 = Telemetry::new(Arc::new(NoopRecorder));
        assert!(!t2.is_enabled());
    }

    #[test]
    fn in_memory_recorder_aggregates() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        assert!(t.is_enabled());
        t.counter("fed/bytes_up", 100);
        t.counter("fed/bytes_up", 50);
        t.gauge("sim/decisions_per_sec", 123.0);
        t.gauge("sim/decisions_per_sec", 456.0);
        t.observe("rl/episode_reward", 10.0);
        t.observe("rl/episode_reward", 20.0);
        t.span_ns("fed/round", 1000);
        t.span_ns("fed/round", 500);
        let s = rec.snapshot();
        assert_eq!(s.counter("fed/bytes_up"), 150);
        assert_eq!(s.gauge("sim/decisions_per_sec"), Some(456.0));
        assert_eq!(s.histogram("rl/episode_reward").unwrap().count(), 2);
        assert_eq!(s.span_total_ns("fed/round"), 1500);
        assert_eq!(s.span_count("fed/round"), 2);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn fanout_reaches_all_sinks() {
        let a = Arc::new(InMemoryRecorder::new());
        let b = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(Arc::new(FanoutRecorder::new(vec![a.clone(), b.clone()])));
        t.counter("c", 7);
        assert_eq!(a.snapshot().counter("c"), 7);
        assert_eq!(b.snapshot().counter("c"), 7);
    }

    #[test]
    fn fingerprint_excludes_wall_clock_histograms() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        t.observe("fed/agg_wall_us", 123.0);
        t.observe("rl/episode_reward", 1.0);
        let (_, hists) = rec.snapshot().deterministic_fingerprint();
        assert!(hists.contains_key("rl/episode_reward"));
        assert!(!hists.contains_key("fed/agg_wall_us"), "wall-clock samples must not fingerprint");
    }

    #[test]
    fn attack_counters_fingerprint_but_coalition_gauge_does_not() {
        // The robust-aggregation path emits three deterministic counters
        // (poisoned uploads, screen rejections, norm clips) that must be
        // part of the replayable fingerprint, one per-round gauge
        // (coalition size) that must not be, and one wall-clock histogram
        // that the `wall` name rule already excludes.
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        t.counter("fed/attacked_uploads", 3);
        t.counter("fed/screened", 2);
        t.counter("fed/clipped", 1);
        t.gauge("fed/attack_coalition_size", 3.0);
        t.observe("fed/agg_wall_us", 42.0);
        let (counters, hists) = rec.snapshot().deterministic_fingerprint();
        assert_eq!(counters.get("fed/attacked_uploads"), Some(&3));
        assert_eq!(counters.get("fed/screened"), Some(&2));
        assert_eq!(counters.get("fed/clipped"), Some(&1));
        assert!(
            !counters.contains_key("fed/attack_coalition_size"),
            "the coalition gauge must stay out of the counter fingerprint"
        );
        assert!(!hists.contains_key("fed/agg_wall_us"));
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let rec = Arc::new(InMemoryRecorder::new());
        let t = Telemetry::new(rec.clone());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.counter("n", 1);
                        t.observe("v", 2.0);
                    }
                });
            }
        });
        let s = rec.snapshot();
        assert_eq!(s.counter("n"), 8000);
        assert_eq!(s.histogram("v").unwrap().count(), 8000);
    }
}
