//! Property-based tests of the simulator primitives.

use pfrl_sim::{Cluster, EnvConfig, EnvDims, EventCalendar, EventKind, VmSpec};
use pfrl_workloads::TaskSpec;
use proptest::prelude::*;

fn arb_vm() -> impl Strategy<Value = VmSpec> {
    (1u32..64, 1u32..512).prop_map(|(c, m)| VmSpec::new(c, m as f32))
}

fn arb_task() -> impl Strategy<Value = TaskSpec> {
    (1u32..16, 1u32..128, 1u64..100).prop_map(|(c, m, d)| TaskSpec {
        id: 0,
        arrival: 0,
        vcpus: c,
        mem_gb: m as f32,
        duration: d,
    })
}

proptest! {
    /// Placement followed by completion restores exactly the idle state.
    #[test]
    fn place_release_roundtrip(vm_spec in arb_vm(), task in arb_task()) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        let free_before = (cluster.vms()[0].free_vcpus(), cluster.vms()[0].free_mem());
        cluster.vm_mut(0).place(&task, 0);
        prop_assert_eq!(cluster.vms()[0].free_vcpus(), free_before.0 - task.vcpus);
        let mut done = Vec::new();
        cluster.advance_to(task.duration, &mut done);
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(cluster.vms()[0].free_vcpus(), free_before.0);
        prop_assert!((cluster.vms()[0].free_mem() - free_before.1).abs() < 1e-4);
    }

    /// LoadBal is zero iff all per-VM loads are equal; always non-negative.
    #[test]
    fn load_balance_nonnegative(
        vms in proptest::collection::vec(arb_vm(), 1..6),
        w_cpu in 0.0f32..1.0,
    ) {
        let cluster = Cluster::new(&vms);
        let weights = [w_cpu, 1.0 - w_cpu];
        let lb = cluster.load_balance(&weights);
        // Idle cluster: every load is exactly 1.0 → perfectly balanced.
        prop_assert!(lb.abs() < 1e-6);
    }

    /// Utilization and load are complementary and bounded.
    #[test]
    fn utilization_load_complementary(vm_spec in arb_vm(), task in arb_task()) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        cluster.vm_mut(0).place(&task, 0);
        for r in 0..2 {
            let u = cluster.vms()[0].utilization(r);
            let l = cluster.vms()[0].load(r);
            prop_assert!((0.0..=1.0).contains(&u));
            prop_assert!((u + l - 1.0).abs() < 1e-5);
        }
    }

    /// vCPU progress slots: occupied count equals the placed task's vCPUs,
    /// values bounded in [0, 1].
    #[test]
    fn vcpu_progress_layout(vm_spec in arb_vm(), task in arb_task(), t in 0u64..200) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        cluster.vm_mut(0).place(&task, 0);
        let slots = cluster.vms()[0].vcpu_progress(t.min(task.duration - 1));
        prop_assert_eq!(slots.len(), vm_spec.vcpus as usize);
        let occupied = slots.iter().filter(|&&p| p > 0.0).count();
        prop_assert!(occupied <= task.vcpus as usize);
        prop_assert!(slots.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// EnvDims arithmetic is internally consistent.
    #[test]
    fn dims_arithmetic(l in 1usize..12, u in 1u32..128, q in 1usize..10) {
        let d = EnvDims::new(l, u, 64.0, q);
        prop_assert_eq!(d.state_dim(), l * 2 + l * u as usize + q * 2);
        prop_assert_eq!(d.action_dim(), l + 1);
    }

    /// Config validation accepts all in-range values.
    #[test]
    fn env_config_valid_range(rho in 0.0f32..=1.0, w in 0.0f32..=1.0) {
        let cfg = EnvConfig {
            rho,
            resource_weights: [w, 1.0 - w],
            ..Default::default()
        };
        cfg.validate();
    }
}

/// `(time, class, lane)` — the deterministic part of the calendar's sort
/// key (class: completions < arrivals < releases; lane: VM index for
/// completions).
fn event_key(time: u64, kind: EventKind) -> (u64, u8, u32) {
    match kind {
        EventKind::Completion { vm, .. } => (time, 0, vm),
        EventKind::Arrival { .. } => (time, 1, 0),
        EventKind::Release { .. } => (time, 2, 0),
    }
}

/// Insertion index smuggled through the event payload, to observe FIFO
/// order among exact ties from the outside.
fn payload(kind: EventKind) -> u64 {
    match kind {
        EventKind::Completion { task_id, .. } => task_id,
        EventKind::Arrival { index } => index as u64,
        EventKind::Release { gid } => gid as u64,
    }
}

/// Builds the i-th generated event: tight time/lane ranges force plenty of
/// exact timestamp ties.
fn make_event(i: usize, time: u64, class: u8, lane: u32) -> (u64, EventKind) {
    let kind = match class {
        0 => EventKind::Completion { vm: lane, task_id: i as u64 },
        1 => EventKind::Arrival { index: i as u32 },
        _ => EventKind::Release { gid: i as u32 },
    };
    (time, kind)
}

proptest! {
    /// Random schedules with timestamp ties pop in the total order
    /// `(time, class, lane, insertion)`: non-decreasing keys, and FIFO by
    /// insertion among exact key ties.
    #[test]
    fn calendar_resolves_ties_deterministically(
        raw in proptest::collection::vec((0u64..6, 0u8..3, 0u32..3), 1..40),
    ) {
        let events: Vec<(u64, EventKind)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(t, c, l))| make_event(i, t, c, l))
            .collect();
        let mut cal = EventCalendar::new();
        for &(t, k) in &events {
            cal.schedule(t, k);
        }
        let mut prev: Option<((u64, u8, u32), u64)> = None;
        let mut popped = 0usize;
        while let Some(ev) = cal.pop() {
            popped += 1;
            let key = event_key(ev.time, ev.kind);
            let ins = payload(ev.kind);
            if let Some((pkey, pins)) = prev {
                prop_assert!(pkey <= key, "keys must be non-decreasing");
                if pkey == key {
                    prop_assert!(pins < ins, "exact ties must pop FIFO by insertion");
                }
            }
            prev = Some((key, ins));
        }
        prop_assert_eq!(popped, events.len());
    }

    /// For events with pairwise-distinct `(time, class, lane)` keys, the pop
    /// sequence is independent of insertion order (here: every rotation).
    #[test]
    fn calendar_order_invariant_under_insertion_rotation(
        raw in proptest::collection::vec((0u64..12, 0u8..3, 0u32..3), 1..16),
        rot in 0usize..16,
    ) {
        let mut events: Vec<(u64, EventKind)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(t, c, l))| make_event(i, t, c, l))
            .collect();
        events.sort_by_key(|&(t, k)| event_key(t, k));
        events.dedup_by_key(|&mut (t, k)| event_key(t, k));

        let pop_all = |order: &[(u64, EventKind)]| -> Vec<(u64, u8, u32)> {
            let mut cal = EventCalendar::new();
            for &(t, k) in order {
                cal.schedule(t, k);
            }
            std::iter::from_fn(move || cal.pop()).map(|e| event_key(e.time, e.kind)).collect()
        };

        let baseline = pop_all(&events);
        let k = rot % events.len();
        let mut rotated = events.clone();
        rotated.rotate_left(k);
        prop_assert_eq!(pop_all(&rotated), baseline);
    }
}
