//! Property-based tests of the simulator primitives.

use pfrl_sim::{Cluster, EnvConfig, EnvDims, VmSpec};
use pfrl_workloads::TaskSpec;
use proptest::prelude::*;

fn arb_vm() -> impl Strategy<Value = VmSpec> {
    (1u32..64, 1u32..512).prop_map(|(c, m)| VmSpec::new(c, m as f32))
}

fn arb_task() -> impl Strategy<Value = TaskSpec> {
    (1u32..16, 1u32..128, 1u64..100).prop_map(|(c, m, d)| TaskSpec {
        id: 0,
        arrival: 0,
        vcpus: c,
        mem_gb: m as f32,
        duration: d,
    })
}

proptest! {
    /// Placement followed by completion restores exactly the idle state.
    #[test]
    fn place_release_roundtrip(vm_spec in arb_vm(), task in arb_task()) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        let free_before = (cluster.vms()[0].free_vcpus(), cluster.vms()[0].free_mem());
        cluster.vm_mut(0).place(&task, 0);
        prop_assert_eq!(cluster.vms()[0].free_vcpus(), free_before.0 - task.vcpus);
        let done = cluster.advance_to(task.duration);
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(cluster.vms()[0].free_vcpus(), free_before.0);
        prop_assert!((cluster.vms()[0].free_mem() - free_before.1).abs() < 1e-4);
    }

    /// LoadBal is zero iff all per-VM loads are equal; always non-negative.
    #[test]
    fn load_balance_nonnegative(
        vms in proptest::collection::vec(arb_vm(), 1..6),
        w_cpu in 0.0f32..1.0,
    ) {
        let cluster = Cluster::new(&vms);
        let weights = [w_cpu, 1.0 - w_cpu];
        let lb = cluster.load_balance(&weights);
        // Idle cluster: every load is exactly 1.0 → perfectly balanced.
        prop_assert!(lb.abs() < 1e-6);
    }

    /// Utilization and load are complementary and bounded.
    #[test]
    fn utilization_load_complementary(vm_spec in arb_vm(), task in arb_task()) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        cluster.vm_mut(0).place(&task, 0);
        for r in 0..2 {
            let u = cluster.vms()[0].utilization(r);
            let l = cluster.vms()[0].load(r);
            prop_assert!((0.0..=1.0).contains(&u));
            prop_assert!((u + l - 1.0).abs() < 1e-5);
        }
    }

    /// vCPU progress slots: occupied count equals the placed task's vCPUs,
    /// values bounded in [0, 1].
    #[test]
    fn vcpu_progress_layout(vm_spec in arb_vm(), task in arb_task(), t in 0u64..200) {
        prop_assume!(task.vcpus <= vm_spec.vcpus && task.mem_gb <= vm_spec.mem_gb);
        let mut cluster = Cluster::new(&[vm_spec]);
        cluster.vm_mut(0).place(&task, 0);
        let slots = cluster.vms()[0].vcpu_progress(t.min(task.duration - 1));
        prop_assert_eq!(slots.len(), vm_spec.vcpus as usize);
        let occupied = slots.iter().filter(|&&p| p > 0.0).count();
        prop_assert!(occupied <= task.vcpus as usize);
        prop_assert!(slots.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// EnvDims arithmetic is internally consistent.
    #[test]
    fn dims_arithmetic(l in 1usize..12, u in 1u32..128, q in 1usize..10) {
        let d = EnvDims::new(l, u, 64.0, q);
        prop_assert_eq!(d.state_dim(), l * 2 + l * u as usize + q * 2);
        prop_assert_eq!(d.action_dim(), l + 1);
    }

    /// Config validation accepts all in-range values.
    #[test]
    fn env_config_valid_range(rho in 0.0f32..=1.0, w in 0.0f32..=1.0) {
        let cfg = EnvConfig {
            rho,
            resource_weights: [w, 1.0 - w],
            ..Default::default()
        };
        cfg.validate();
    }
}
