//! A cluster of heterogeneous VMs with the paper's load-balance measure.

use crate::vm::{RunningTask, Vm, VmSpec};
use crate::RESOURCE_DIMS;
use pfrl_workloads::TaskSpec;

/// The VM collection `M_n` of one client.
#[derive(Debug, Clone)]
pub struct Cluster {
    vms: Vec<Vm>,
}

impl Cluster {
    /// Builds a cluster from VM specs.
    ///
    /// # Panics
    /// If no VMs are given.
    pub fn new(specs: &[VmSpec]) -> Self {
        assert!(!specs.is_empty(), "Cluster needs at least one VM");
        Self { vms: specs.iter().map(|&s| Vm::new(s)).collect() }
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Always false (construction rejects empty clusters).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable VM access.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Mutable VM access.
    pub fn vm_mut(&mut self, i: usize) -> &mut Vm {
        &mut self.vms[i]
    }

    /// Indices of VMs that can fit `task` right now.
    pub fn feasible(&self, task: &TaskSpec) -> Vec<usize> {
        (0..self.vms.len()).filter(|&i| self.vms[i].can_fit(task)).collect()
    }

    /// Whether any VM fits `task`.
    pub fn any_feasible(&self, task: &TaskSpec) -> bool {
        self.vms.iter().any(|v| v.can_fit(task))
    }

    /// Clears all running tasks on every VM, retaining buffer capacity
    /// (episode reset on warm workspaces).
    pub fn reset(&mut self) {
        for vm in &mut self.vms {
            vm.reset();
        }
    }

    /// Releases all tasks completed by `now` across VMs, appending them to
    /// `done` in (VM index, placement) order. Buffer-reuse only — no
    /// allocating variant exists, so no `Vec<RunningTask>` materializes on
    /// the step path.
    pub fn advance_to(&mut self, now: u64, done: &mut Vec<RunningTask>) {
        for vm in &mut self.vms {
            vm.advance_to(now, done);
        }
    }

    /// Releases all tasks completed by `now` without collecting them.
    pub fn release_to(&mut self, now: u64) {
        for vm in &mut self.vms {
            vm.release_to(now);
        }
    }

    /// Earliest completion time across all VMs, if anything is running.
    pub fn next_completion(&self) -> Option<u64> {
        self.vms.iter().filter_map(Vm::next_completion).min()
    }

    /// Total running task count.
    pub fn running_count(&self) -> usize {
        self.vms.iter().map(|v| v.running().len()).sum()
    }

    /// `AvgLoad(t, i)` of Eq. (5): mean remaining fraction of resource `i`.
    pub fn avg_load(&self, resource: usize) -> f32 {
        self.vms.iter().map(|v| v.load(resource)).sum::<f32>() / self.vms.len() as f32
    }

    /// `LoadBal(t)` of Eq. (4): the `w_i`-weighted sum over resources of the
    /// population standard deviation of per-VM loads. Lower = more balanced.
    pub fn load_balance(&self, weights: &[f32; RESOURCE_DIMS]) -> f32 {
        let n = self.vms.len() as f32;
        let mut total = 0.0;
        for (i, w) in weights.iter().enumerate() {
            let avg = self.avg_load(i);
            let var = self
                .vms
                .iter()
                .map(|v| {
                    let d = v.load(i) - avg;
                    d * d
                })
                .sum::<f32>()
                / n;
            total += w * var.sqrt();
        }
        total
    }

    /// Mean utilization of resource `i` across VMs (diagnostics).
    pub fn avg_utilization(&self, resource: usize) -> f32 {
        self.vms.iter().map(|v| v.utilization(resource)).sum::<f32>() / self.vms.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, vcpus: u32, mem: f32, dur: u64) -> TaskSpec {
        TaskSpec { id, arrival: 0, vcpus, mem_gb: mem, duration: dur }
    }

    fn cluster() -> Cluster {
        Cluster::new(&[VmSpec::new(8, 64.0), VmSpec::new(4, 32.0), VmSpec::new(16, 128.0)])
    }

    #[test]
    fn feasible_filters_correctly() {
        let mut c = cluster();
        assert_eq!(c.feasible(&task(0, 8, 64.0, 1)), vec![0, 2]);
        assert_eq!(c.feasible(&task(0, 16, 1.0, 1)), vec![2]);
        c.vm_mut(2).place(&task(1, 16, 1.0, 10), 0);
        assert!(c.feasible(&task(2, 16, 1.0, 1)).is_empty());
        assert!(!c.any_feasible(&task(2, 16, 1.0, 1)));
        assert!(c.any_feasible(&task(2, 4, 4.0, 1)));
    }

    #[test]
    fn idle_cluster_is_perfectly_balanced() {
        let c = cluster();
        assert_eq!(c.load_balance(&[0.5, 0.5]), 0.0);
        assert_eq!(c.avg_load(0), 1.0);
        assert_eq!(c.avg_utilization(0), 0.0);
    }

    #[test]
    fn load_balance_increases_with_skew() {
        let mut c = cluster();
        let balanced_before = c.load_balance(&[0.5, 0.5]);
        // Fill one VM completely: maximal skew.
        c.vm_mut(1).place(&task(0, 4, 32.0, 100), 0);
        let after = c.load_balance(&[0.5, 0.5]);
        assert!(after > balanced_before);
        // Hand value: loads cpu = [1, 0, 1] → avg 2/3, std = sqrt(2/9)…
        let expect_cpu_std = ((2.0 / 9.0) as f32).sqrt();
        assert!((after - expect_cpu_std).abs() < 1e-5, "{after} vs {expect_cpu_std}");
    }

    #[test]
    fn advance_collects_across_vms() {
        let mut c = cluster();
        c.vm_mut(0).place(&task(0, 1, 1.0, 5), 0);
        c.vm_mut(2).place(&task(1, 1, 1.0, 3), 0);
        assert_eq!(c.next_completion(), Some(3));
        assert_eq!(c.running_count(), 2);
        let mut done = Vec::new();
        c.advance_to(5, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    fn weighted_load_balance_respects_weights() {
        let mut c = Cluster::new(&[VmSpec::new(4, 8.0), VmSpec::new(4, 8.0)]);
        // Skew only memory: 1 vcpu but all memory on VM 0.
        c.vm_mut(0).place(&task(0, 1, 8.0, 10), 0);
        let cpu_only = c.load_balance(&[1.0, 0.0]);
        let mem_only = c.load_balance(&[0.0, 1.0]);
        assert!(mem_only > cpu_only);
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn empty_cluster_rejected() {
        let _ = Cluster::new(&[]);
    }
}
