//! Extended optimization objectives (Sec. 4.2: "the reward function can be
//! easily extended to accommodate other optimization objectives, such as
//! makespan, cost, energy consumption and so on").
//!
//! This module computes energy and monetary cost from placement records —
//! post-hoc episode objectives for analysis and reward shaping — using the
//! standard linear datacenter power model (`P = P_idle + (P_peak −
//! P_idle)·util`) and a public-cloud-style per-resource-hour price.

use crate::metrics::TaskRecord;
use crate::vm::VmSpec;

/// Linear power model of one physical host backing a VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power at zero utilization, watts.
    pub idle_watts: f64,
    /// Power at full CPU utilization, watts.
    pub peak_watts: f64,
}

impl EnergyModel {
    /// A typical commodity-server model (idle ≈ 60% of peak).
    pub fn commodity() -> Self {
        Self { idle_watts: 150.0, peak_watts: 250.0 }
    }

    /// Instantaneous power at the given CPU utilization `[0, 1]`.
    pub fn power_at(&self, util: f64) -> f64 {
        self.idle_watts + (self.peak_watts - self.idle_watts) * util.clamp(0.0, 1.0)
    }
}

/// Per-resource-hour pricing (on-demand-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Dollars per vCPU-hour.
    pub per_vcpu_hour: f64,
    /// Dollars per GiB-hour of memory.
    pub per_gb_hour: f64,
}

impl CostModel {
    /// Public-cloud-shaped default pricing.
    pub fn on_demand() -> Self {
        Self { per_vcpu_hour: 0.04, per_gb_hour: 0.005 }
    }
}

/// Total energy in watt-hours consumed by the cluster over `[0, makespan]`
/// under the linear power model: every VM idles at `idle_watts` for the
/// whole span, plus the utilization-proportional dynamic part integrated
/// exactly from the records. One simulation step is one minute.
pub fn total_energy_wh(
    records: &[TaskRecord],
    vms: &[VmSpec],
    model: &EnergyModel,
    makespan_steps: f64,
) -> f64 {
    let hours = makespan_steps / 60.0;
    let idle = model.idle_watts * vms.len() as f64 * hours;
    let dynamic_range = model.peak_watts - model.idle_watts;
    let dynamic: f64 = records
        .iter()
        .map(|r| {
            let util = r.vcpus as f64 / vms[r.vm].vcpus as f64;
            dynamic_range * util * (r.duration as f64 / 60.0)
        })
        .sum();
    idle + dynamic
}

/// Total monetary cost of the placed tasks: each task pays for its
/// requested vCPUs and memory for its execution time.
pub fn total_cost_dollars(records: &[TaskRecord], model: &CostModel) -> f64 {
    records
        .iter()
        .map(|r| {
            let hours = r.duration as f64 / 60.0;
            r.vcpus as f64 * hours * model.per_vcpu_hour
                + r.mem_gb as f64 * hours * model.per_gb_hour
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vm: usize, vcpus: u32, mem: f32, start: u64, dur: u64) -> TaskRecord {
        TaskRecord { task_id: 0, vm, vcpus, mem_gb: mem, arrival: start, start, duration: dur }
    }

    #[test]
    fn power_model_endpoints() {
        let m = EnergyModel::commodity();
        assert_eq!(m.power_at(0.0), 150.0);
        assert_eq!(m.power_at(1.0), 250.0);
        assert_eq!(m.power_at(0.5), 200.0);
        assert_eq!(m.power_at(2.0), 250.0); // clamped
    }

    #[test]
    fn idle_cluster_pays_only_idle_energy() {
        let vms = [VmSpec::new(8, 64.0), VmSpec::new(8, 64.0)];
        let m = EnergyModel::commodity();
        // 2 VMs × 150 W × 1 h
        let e = total_energy_wh(&[], &vms, &m, 60.0);
        assert!((e - 300.0).abs() < 1e-9);
    }

    #[test]
    fn fully_utilized_vm_pays_peak() {
        let vms = [VmSpec::new(8, 64.0)];
        let m = EnergyModel::commodity();
        // One task using all 8 vCPUs for the whole hour:
        let records = [rec(0, 8, 64.0, 0, 60)];
        let e = total_energy_wh(&records, &vms, &m, 60.0);
        assert!((e - 250.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn energy_scales_with_utilization() {
        let vms = [VmSpec::new(8, 64.0)];
        let m = EnergyModel::commodity();
        let half = total_energy_wh(&[rec(0, 4, 8.0, 0, 60)], &vms, &m, 60.0);
        let full = total_energy_wh(&[rec(0, 8, 8.0, 0, 60)], &vms, &m, 60.0);
        assert!(half < full);
        assert!((half - 200.0).abs() < 1e-9);
    }

    #[test]
    fn cost_hand_example() {
        let m = CostModel { per_vcpu_hour: 0.10, per_gb_hour: 0.01 };
        // 2 vCPU + 10 GiB for 30 minutes: 2·0.5·0.10 + 10·0.5·0.01 = 0.15
        let c = total_cost_dollars(&[rec(0, 2, 10.0, 0, 30)], &m);
        assert!((c - 0.15).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cost_additive_over_tasks() {
        let m = CostModel::on_demand();
        let a = [rec(0, 2, 4.0, 0, 60)];
        let b = [rec(0, 4, 8.0, 0, 120)];
        let both = [a[0], b[0]];
        let sum = total_cost_dollars(&a, &m) + total_cost_dollars(&b, &m);
        assert!((total_cost_dollars(&both, &m) - sum).abs() < 1e-12);
    }
}
