//! Virtual machines: capacity tracking, placement, and vCPU progress.

use pfrl_workloads::TaskSpec;

/// Static capacity of a VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSpec {
    /// Total vCPUs.
    pub vcpus: u32,
    /// Total memory in GiB.
    pub mem_gb: f32,
}

impl VmSpec {
    /// Creates a spec; panics on zero capacity.
    pub fn new(vcpus: u32, mem_gb: f32) -> Self {
        assert!(vcpus >= 1 && mem_gb > 0.0, "VmSpec must have positive capacity");
        Self { vcpus, mem_gb }
    }
}

/// A task currently executing on a VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask {
    /// Id of the task (from its [`TaskSpec`]).
    pub task_id: u64,
    /// Occupied vCPUs.
    pub vcpus: u32,
    /// Occupied memory (GiB).
    pub mem_gb: f32,
    /// Placement time (step).
    pub start: u64,
    /// Total execution time (steps).
    pub duration: u64,
}

impl RunningTask {
    /// Completion time: the step at which resources are released.
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Fractional progress in `[0, 1]` at time `now`.
    pub fn progress(&self, now: u64) -> f32 {
        if now <= self.start {
            0.0
        } else {
            ((now - self.start) as f32 / self.duration as f32).min(1.0)
        }
    }
}

/// A VM with its currently running tasks.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Static capacity.
    pub spec: VmSpec,
    running: Vec<RunningTask>,
}

impl Vm {
    /// An idle VM of the given spec.
    pub fn new(spec: VmSpec) -> Self {
        Self { spec, running: Vec::new() }
    }

    /// Currently running tasks (placement order).
    pub fn running(&self) -> &[RunningTask] {
        &self.running
    }

    /// vCPUs in use.
    pub fn used_vcpus(&self) -> u32 {
        self.running.iter().map(|t| t.vcpus).sum()
    }

    /// Memory in use (GiB).
    pub fn used_mem(&self) -> f32 {
        self.running.iter().map(|t| t.mem_gb).sum()
    }

    /// Idle vCPUs.
    pub fn free_vcpus(&self) -> u32 {
        self.spec.vcpus - self.used_vcpus()
    }

    /// Free memory (GiB).
    pub fn free_mem(&self) -> f32 {
        self.spec.mem_gb - self.used_mem()
    }

    /// Whether `task` fits right now.
    pub fn can_fit(&self, task: &TaskSpec) -> bool {
        task.vcpus <= self.free_vcpus() && task.mem_gb <= self.free_mem() + f32::EPSILON
    }

    /// Utilization of resource `i` (0 = vCPU, 1 = memory), in `[0, 1]`.
    pub fn utilization(&self, resource: usize) -> f32 {
        match resource {
            0 => self.used_vcpus() as f32 / self.spec.vcpus as f32,
            1 => (self.used_mem() / self.spec.mem_gb).min(1.0),
            other => panic!("unknown resource index {other}"),
        }
    }

    /// Load of resource `i` per the paper's Eq. (4): the *remaining*
    /// fraction of the resource, in `[0, 1]`.
    pub fn load(&self, resource: usize) -> f32 {
        1.0 - self.utilization(resource)
    }

    /// Places `task` at time `now`.
    ///
    /// # Panics
    /// If the task does not fit (callers must check [`Vm::can_fit`]).
    pub fn place(&mut self, task: &TaskSpec, now: u64) {
        assert!(self.can_fit(task), "place called on a VM that cannot fit the task");
        self.running.push(RunningTask {
            task_id: task.id,
            vcpus: task.vcpus,
            mem_gb: task.mem_gb,
            start: now,
            duration: task.duration,
        });
    }

    /// Clears all running tasks, retaining capacity (episode reset).
    pub fn reset(&mut self) {
        self.running.clear();
    }

    /// Releases every task with `end() <= now`, appending them to `done`
    /// in placement order. Buffer-reuse only: there is deliberately no
    /// allocating variant, so the step path never materializes a
    /// per-advance `Vec`.
    pub fn advance_to(&mut self, now: u64, done: &mut Vec<RunningTask>) {
        self.running.retain(|t| {
            if t.end() <= now {
                done.push(*t);
                false
            } else {
                true
            }
        });
    }

    /// Removes and returns the running task `task_id`, which must have
    /// completed by `now` (the event engine's targeted O(running) release —
    /// no full sweep). Relative order of the remaining tasks is preserved,
    /// keeping [`Vm::vcpu_progress`] slot assignment identical to a
    /// scan-based release.
    ///
    /// # Panics
    /// If no running task has this id with `end() <= now`.
    pub fn finish(&mut self, task_id: u64, now: u64) -> RunningTask {
        let i = self
            .running
            .iter()
            .position(|t| t.task_id == task_id && t.end() <= now)
            .expect("finish: task is not running or has not completed");
        self.running.remove(i)
    }

    /// Releases every task with `end() <= now` without collecting them.
    pub fn release_to(&mut self, now: u64) {
        self.running.retain(|t| t.end() > now);
    }

    /// The earliest completion time among running tasks, if any.
    pub fn next_completion(&self) -> Option<u64> {
        self.running.iter().map(RunningTask::end).min()
    }

    /// Per-vCPU completion progress at `now`: running tasks occupy slots in
    /// placement order; occupied slots report the owning task's progress,
    /// idle slots report 0 (the `O_i^k` of Eq. (1)).
    pub fn vcpu_progress(&self, now: u64) -> Vec<f32> {
        let mut slots = vec![0.0f32; self.spec.vcpus as usize];
        let mut cursor = 0usize;
        for t in &self.running {
            let p = t.progress(now);
            for s in slots.iter_mut().skip(cursor).take(t.vcpus as usize) {
                *s = p;
            }
            cursor += t.vcpus as usize;
        }
        slots
    }

    /// Appends exactly `width` per-vCPU progress entries to `out`:
    /// [`Vm::vcpu_progress`] truncated/padded to `width` with `pad`
    /// (allocation-free form used by the state encoder's hot path).
    pub fn push_vcpu_progress(&self, now: u64, width: usize, pad: f32, out: &mut Vec<f32>) {
        let n = self.spec.vcpus as usize;
        let start = out.len();
        for k in 0..width {
            out.push(if k < n { 0.0 } else { pad });
        }
        let slots = &mut out[start..start + n.min(width)];
        let mut cursor = 0usize;
        for t in &self.running {
            let p = t.progress(now);
            for s in slots.iter_mut().skip(cursor).take(t.vcpus as usize) {
                *s = p;
            }
            cursor += t.vcpus as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, vcpus: u32, mem: f32, dur: u64) -> TaskSpec {
        TaskSpec { id, arrival: 0, vcpus, mem_gb: mem, duration: dur }
    }

    #[test]
    fn placement_updates_capacity() {
        let mut vm = Vm::new(VmSpec::new(8, 64.0));
        assert!(vm.can_fit(&task(0, 8, 64.0, 5)));
        vm.place(&task(0, 3, 16.0, 5), 0);
        assert_eq!(vm.free_vcpus(), 5);
        assert_eq!(vm.free_mem(), 48.0);
        assert!((vm.utilization(0) - 0.375).abs() < 1e-6);
        assert!((vm.utilization(1) - 0.25).abs() < 1e-6);
        assert!((vm.load(0) - 0.625).abs() < 1e-6);
    }

    #[test]
    fn cannot_fit_over_cpu_or_mem() {
        let mut vm = Vm::new(VmSpec::new(4, 8.0));
        vm.place(&task(0, 2, 4.0, 10), 0);
        assert!(!vm.can_fit(&task(1, 3, 1.0, 1)), "cpu-bound rejection");
        assert!(!vm.can_fit(&task(1, 1, 5.0, 1)), "mem-bound rejection");
        assert!(vm.can_fit(&task(1, 2, 4.0, 1)));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn place_unfittable_panics() {
        let mut vm = Vm::new(VmSpec::new(2, 4.0));
        vm.place(&task(0, 4, 1.0, 1), 0);
    }

    #[test]
    fn advance_releases_completed() {
        let mut vm = Vm::new(VmSpec::new(8, 64.0));
        vm.place(&task(0, 2, 8.0, 5), 0); // ends at 5
        vm.place(&task(1, 2, 8.0, 10), 0); // ends at 10
        assert_eq!(vm.next_completion(), Some(5));
        let mut done = Vec::new();
        vm.advance_to(5, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].task_id, 0);
        assert_eq!(vm.used_vcpus(), 2);
        done.clear();
        vm.advance_to(10, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(vm.used_vcpus(), 0);
        assert_eq!(vm.next_completion(), None);
    }

    #[test]
    fn finish_removes_by_id_preserving_order() {
        let mut vm = Vm::new(VmSpec::new(8, 64.0));
        vm.place(&task(0, 2, 8.0, 5), 0);
        vm.place(&task(1, 2, 8.0, 5), 0);
        vm.place(&task(2, 2, 8.0, 9), 0);
        let rt = vm.finish(1, 5);
        assert_eq!(rt.task_id, 1);
        assert_eq!(rt.end(), 5);
        let ids: Vec<u64> = vm.running().iter().map(|t| t.task_id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "has not completed")]
    fn finish_before_completion_panics() {
        let mut vm = Vm::new(VmSpec::new(8, 64.0));
        vm.place(&task(0, 2, 8.0, 5), 0);
        vm.finish(0, 4);
    }

    #[test]
    fn progress_tracks_time() {
        let t = RunningTask { task_id: 0, vcpus: 1, mem_gb: 1.0, start: 10, duration: 20 };
        assert_eq!(t.progress(10), 0.0);
        assert_eq!(t.progress(20), 0.5);
        assert_eq!(t.progress(30), 1.0);
        assert_eq!(t.progress(100), 1.0);
        assert_eq!(t.progress(5), 0.0);
    }

    #[test]
    fn vcpu_progress_slot_layout() {
        let mut vm = Vm::new(VmSpec::new(4, 64.0));
        vm.place(&task(0, 2, 8.0, 10), 0);
        vm.place(&task(1, 1, 8.0, 20), 0);
        let slots = vm.vcpu_progress(5);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0], 0.5);
        assert_eq!(slots[1], 0.5);
        assert_eq!(slots[2], 0.25);
        assert_eq!(slots[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = VmSpec::new(0, 4.0);
    }
}
