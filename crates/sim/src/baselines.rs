//! Heuristic scheduling baselines.
//!
//! These are not in the paper's comparison set (which is RL-only), but they
//! anchor the simulator: a learned policy that cannot beat Random, or that
//! beats BestFit by an implausible factor, signals an environment bug. They
//! also serve as cheap reference points in the benches.

use crate::env::{Action, CloudEnv};
use crate::metrics::EpisodeMetrics;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Built-in heuristic policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeuristicPolicy {
    /// Uniform choice among feasible VMs (wait if none).
    Random,
    /// Uniform over the *entire* action space — every VM slot (including
    /// void ones) plus Wait, with no feasibility check. This is what an
    /// untrained policy's uniform logits actually do, penalties and all,
    /// which makes it the regression floor the eval gate holds trained
    /// agents against. [`HeuristicPolicy::Random`] is feasibility-aware
    /// and near reward-optimal on underloaded fleets, so it anchors the
    /// top of the range instead.
    BlindRandom,
    /// Lowest-index feasible VM.
    FirstFit,
    /// Feasible VM with the least remaining vCPUs after placement
    /// (classic best-fit on the CPU dimension, memory as tie-break).
    BestFit,
    /// Feasible VM with the *most* remaining vCPUs (worst-fit: naturally
    /// load-balancing).
    WorstFit,
}

impl HeuristicPolicy {
    /// Chooses an action for the current environment state.
    pub fn decide(self, env: &CloudEnv, rng: &mut SmallRng) -> Action {
        if self == HeuristicPolicy::BlindRandom {
            let a = rng.gen_range(0..env.dims().action_dim());
            return if a == env.dims().max_vms { Action::Wait } else { Action::Vm(a) };
        }
        let Some(head) = env.head_task() else {
            return Action::Wait;
        };
        let feasible = env.cluster().feasible(head);
        if feasible.is_empty() {
            return Action::Wait;
        }
        match self {
            HeuristicPolicy::BlindRandom => unreachable!("handled above"),
            HeuristicPolicy::Random => Action::Vm(feasible[rng.gen_range(0..feasible.len())]),
            HeuristicPolicy::FirstFit => Action::Vm(feasible[0]),
            HeuristicPolicy::BestFit => {
                let best = feasible
                    .into_iter()
                    .min_by(|&a, &b| {
                        let va = &env.cluster().vms()[a];
                        let vb = &env.cluster().vms()[b];
                        let ka = (va.free_vcpus() - head.vcpus, va.free_mem() - head.mem_gb);
                        let kb = (vb.free_vcpus() - head.vcpus, vb.free_mem() - head.mem_gb);
                        ka.0.cmp(&kb.0).then(ka.1.partial_cmp(&kb.1).expect("finite"))
                    })
                    .expect("non-empty");
                Action::Vm(best)
            }
            HeuristicPolicy::WorstFit => {
                let best = feasible
                    .into_iter()
                    .max_by(|&a, &b| {
                        let va = &env.cluster().vms()[a];
                        let vb = &env.cluster().vms()[b];
                        let ka = (va.free_vcpus(), va.free_mem());
                        let kb = (vb.free_vcpus(), vb.free_mem());
                        ka.0.cmp(&kb.0).then(ka.1.partial_cmp(&kb.1).expect("finite"))
                    })
                    .expect("non-empty");
                Action::Vm(best)
            }
        }
    }
}

/// Runs one full episode of `policy` on an already-reset environment and
/// returns the final metrics.
pub fn run_heuristic(env: &mut CloudEnv, policy: HeuristicPolicy, seed: u64) -> EpisodeMetrics {
    let mut rng = SmallRng::seed_from_u64(seed);
    while !env.is_done() {
        let action = policy.decide(env, &mut rng);
        env.step(action);
    }
    env.metrics()
}

/// [`HeuristicPolicy::BlindRandom`] over any [`crate::SchedulingEnv`]: a
/// uniform draw over the full action space each step, no feasibility check.
/// On a [`CloudEnv`] this consumes the RNG exactly like
/// `run_heuristic(_, BlindRandom, seed)`, so flat-family baselines keep
/// their historical values; on [`crate::DagCloudEnv`] it is the only random
/// floor available (the feasibility-aware heuristics need head-task access
/// the trait does not expose).
pub fn run_blind_random<E: crate::SchedulingEnv + ?Sized>(
    env: &mut E,
    seed: u64,
) -> EpisodeMetrics {
    let mut rng = SmallRng::seed_from_u64(seed);
    while !env.is_done() {
        let a = rng.gen_range(0..env.dims().action_dim());
        let action = if a == env.dims().max_vms { Action::Wait } else { Action::Vm(a) };
        env.step(action);
    }
    env.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EnvConfig, EnvDims};
    use crate::vm::VmSpec;
    use pfrl_workloads::DatasetId;

    fn env() -> CloudEnv {
        CloudEnv::new(
            EnvDims::new(4, 16, 128.0, 5),
            vec![
                VmSpec::new(16, 128.0),
                VmSpec::new(8, 64.0),
                VmSpec::new(8, 64.0),
                VmSpec::new(4, 32.0),
            ],
            EnvConfig::default(),
        )
    }

    fn google_tasks(n: usize) -> Vec<pfrl_workloads::TaskSpec> {
        DatasetId::Google.model().sample(n, 33)
    }

    #[test]
    fn every_policy_completes_an_episode() {
        for policy in [
            HeuristicPolicy::Random,
            HeuristicPolicy::FirstFit,
            HeuristicPolicy::BestFit,
            HeuristicPolicy::WorstFit,
        ] {
            let mut e = env();
            e.reset(google_tasks(100));
            let m = run_heuristic(&mut e, policy, 1);
            assert!(!e.is_truncated(), "{policy:?} truncated");
            assert_eq!(m.tasks_placed + m.tasks_unplaced, 100, "{policy:?}");
            assert!(m.avg_response >= 1.0, "{policy:?}");
            assert!(m.makespan > 0.0, "{policy:?}");
            assert!(m.avg_utilization > 0.0 && m.avg_utilization <= 1.0, "{policy:?}");
        }
    }

    #[test]
    fn worst_fit_balances_better_than_first_fit() {
        // Worst-fit spreads load; first-fit piles onto VM 0.
        let mut lb_ff = 0.0;
        let mut lb_wf = 0.0;
        for seed in 0..3 {
            let tasks = DatasetId::Google.model().sample(150, 100 + seed);
            let mut e1 = env();
            e1.reset(tasks.clone());
            lb_ff += run_heuristic(&mut e1, HeuristicPolicy::FirstFit, seed).avg_load_balance;
            let mut e2 = env();
            e2.reset(tasks);
            lb_wf += run_heuristic(&mut e2, HeuristicPolicy::WorstFit, seed).avg_load_balance;
        }
        assert!(lb_wf < lb_ff, "worst-fit {lb_wf} vs first-fit {lb_ff}");
    }

    #[test]
    fn heuristics_never_get_denied() {
        // Heuristics only pick feasible VMs, so every placement reward is
        // positive and total reward should exceed the all-penalty floor.
        let mut e = env();
        e.reset(google_tasks(80));
        let m = run_heuristic(&mut e, HeuristicPolicy::BestFit, 5);
        // 80 placements each worth > 0.5 (rho=0.5, r_res > 1, r_load > 0).
        assert!(m.total_reward > 0.0, "total reward {}", m.total_reward);
    }

    #[test]
    fn blind_random_is_a_reward_floor() {
        // Blind dispatch eats denial/void penalties that feasibility-aware
        // random never sees, so on the same tasks its total reward must be
        // strictly lower — that gap is what the eval gate's learning
        // invariant stands on.
        let tasks = google_tasks(80);
        let mut e1 = env();
        e1.reset(tasks.clone());
        let aware = run_heuristic(&mut e1, HeuristicPolicy::Random, 21);
        let mut e2 = env();
        e2.reset(tasks);
        let blind = run_heuristic(&mut e2, HeuristicPolicy::BlindRandom, 21);
        assert!(
            blind.total_reward < aware.total_reward,
            "blind {} vs aware {}",
            blind.total_reward,
            aware.total_reward
        );
        assert_eq!(blind.tasks_placed + blind.tasks_unplaced, 80);
    }

    #[test]
    fn random_policy_deterministic_per_seed() {
        let tasks = google_tasks(60);
        let mut e1 = env();
        e1.reset(tasks.clone());
        let m1 = run_heuristic(&mut e1, HeuristicPolicy::Random, 9);
        let mut e2 = env();
        e2.reset(tasks);
        let m2 = run_heuristic(&mut e2, HeuristicPolicy::Random, 9);
        assert_eq!(m1, m2);
    }
}
