//! The padded state encoding of Eq. (1): `S = (S^VM, S^vCPU, S^Queue)`.

use crate::cluster::Cluster;
use crate::config::EnvDims;
use pfrl_workloads::TaskSpec;

/// Marker value for *void* slots (absent VMs / vCPUs), as in Fig. 6.
pub const VOID: f32 = -1.0;

/// Encodes the full observation into a fixed-length vector:
///
/// 1. `S^VM` — for each of `L` VM slots, the remaining capacity of each
///    resource, normalized by the federation-wide maxima; void slots are
///    [`VOID`].
/// 2. `S^vCPU` — for each VM slot, `U` per-vCPU completion-progress entries
///    in `[0, 1]` (0 = idle); vCPUs beyond a VM's actual count (or of absent
///    VMs) are [`VOID`].
/// 3. `S^Queue` — for each of `Q` queue slots, the normalized resource
///    demands of the waiting task; empty slots are zero.
pub fn encode_state(
    dims: &EnvDims,
    cluster: &Cluster,
    queue_head: &[TaskSpec],
    now: u64,
) -> Vec<f32> {
    let mut s = Vec::with_capacity(dims.state_dim());
    encode_state_into(dims, cluster, queue_head, now, &mut s);
    s
}

/// [`encode_state`] into a reusable buffer (cleared first; retains capacity
/// across calls, so per-decision observation stops allocating after the
/// first episode). Accepts any iterator over the visible queue head so the
/// environments can feed their `VecDeque` directly.
pub fn encode_state_into<'a>(
    dims: &EnvDims,
    cluster: &Cluster,
    queue_head: impl IntoIterator<Item = &'a TaskSpec>,
    now: u64,
    out: &mut Vec<f32>,
) {
    out.clear();
    let cpu_norm = dims.max_vcpus as f32;
    let mem_norm = dims.max_mem_gb;

    // S^VM: remaining capacity.
    for i in 0..dims.max_vms {
        if let Some(vm) = cluster.vms().get(i) {
            out.push(vm.free_vcpus() as f32 / cpu_norm);
            out.push(vm.free_mem() / mem_norm);
        } else {
            out.push(VOID);
            out.push(VOID);
        }
    }

    // S^vCPU: per-vCPU progress.
    for i in 0..dims.max_vms {
        match cluster.vms().get(i) {
            Some(vm) => vm.push_vcpu_progress(now, dims.max_vcpus as usize, VOID, out),
            None => out.extend(std::iter::repeat_n(VOID, dims.max_vcpus as usize)),
        }
    }

    // S^Queue: waiting-task demands.
    let mut heads = queue_head.into_iter();
    for _ in 0..dims.queue_slots {
        if let Some(t) = heads.next() {
            out.push(t.vcpus as f32 / cpu_norm);
            out.push(t.mem_gb / mem_norm);
        } else {
            out.push(0.0);
            out.push(0.0);
        }
    }

    debug_assert_eq!(out.len(), dims.state_dim());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmSpec;

    fn task(id: u64, vcpus: u32, mem: f32, dur: u64) -> TaskSpec {
        TaskSpec { id, arrival: 0, vcpus, mem_gb: mem, duration: dur }
    }

    #[test]
    fn layout_and_length() {
        let dims = EnvDims::new(3, 4, 32.0, 2);
        let cluster = Cluster::new(&[VmSpec::new(4, 32.0), VmSpec::new(2, 16.0)]);
        let queue = [task(0, 2, 8.0, 5)];
        let s = encode_state(&dims, &cluster, &queue, 0);
        assert_eq!(s.len(), dims.state_dim());
        // S^VM: vm0 idle (1.0, 1.0), vm1 idle (0.5, 0.5), slot 2 void.
        assert_eq!(&s[0..6], &[1.0, 1.0, 0.5, 0.5, VOID, VOID]);
        // S^vCPU: vm0 has 4 idle, vm1 has 2 idle + 2 void, slot 2 all void.
        assert_eq!(&s[6..10], &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&s[10..14], &[0.0, 0.0, VOID, VOID]);
        assert_eq!(&s[14..18], &[VOID, VOID, VOID, VOID]);
        // S^Queue: task (2/4, 8/32) then empty slot.
        assert_eq!(&s[18..22], &[0.5, 0.25, 0.0, 0.0]);
    }

    #[test]
    fn progress_appears_in_vcpu_section() {
        let dims = EnvDims::new(1, 4, 32.0, 1);
        let mut cluster = Cluster::new(&[VmSpec::new(4, 32.0)]);
        cluster.vm_mut(0).place(&task(7, 2, 8.0, 10), 0);
        let s = encode_state(&dims, &cluster, &[], 5);
        // Remaining capacity reflects the placement.
        assert_eq!(s[0], 0.5);
        assert_eq!(s[1], 0.75);
        // First two vCPUs at 50% progress.
        assert_eq!(&s[2..6], &[0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn values_in_expected_ranges() {
        let dims = EnvDims::new(4, 8, 64.0, 3);
        let mut cluster =
            Cluster::new(&[VmSpec::new(8, 64.0), VmSpec::new(4, 16.0), VmSpec::new(2, 8.0)]);
        cluster.vm_mut(0).place(&task(0, 3, 10.0, 7), 2);
        let queue = [task(1, 8, 64.0, 3), task(2, 1, 0.5, 1)];
        let s = encode_state(&dims, &cluster, &queue, 4);
        for &v in &s {
            assert!(v == VOID || (0.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn queue_truncated_to_visible_slots() {
        let dims = EnvDims::new(1, 1, 1.0, 2);
        let cluster = Cluster::new(&[VmSpec::new(1, 1.0)]);
        let queue = [task(0, 1, 1.0, 1), task(1, 1, 1.0, 1), task(2, 1, 1.0, 1)];
        // Only the first `queue_slots` tasks are encoded.
        let s = encode_state(&dims, &cluster, &queue[..2.min(queue.len())], 0);
        assert_eq!(s.len(), dims.state_dim());
    }
}
