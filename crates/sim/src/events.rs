//! The discrete-event core: a typed event calendar and the single time
//! authority ([`SimClock`]) that both environments advance through.
//!
//! The calendar is a binary min-heap of typed events — task [`EventKind::Arrival`],
//! running-task [`EventKind::Completion`], workflow-root [`EventKind::Release`] —
//! with a fully deterministic total order on equal timestamps:
//!
//! 1. completions before arrivals before root releases (resources free up
//!    before the queue grows, exactly as the stepped scans ordered them);
//! 2. completions on a lower-indexed VM first (the stepped core released
//!    VMs in index order);
//! 3. otherwise FIFO by insertion sequence number (which, for completions
//!    on one VM, is placement order — the running-list order the stepped
//!    core released in).
//!
//! Under this order the event engine is **bit-identical** to the stepped
//! reference engine: the clock reaches exactly the same decision points and
//! applies exactly the same state transitions in the same order, so rewards,
//! metrics, and telemetry fingerprints match to the last bit (proven by the
//! `event_equivalence` suite and enforced as an `eval_gate` invariant). The
//! calendar only changes *how* the next decision point is found: an O(log n)
//! pop instead of an O(VMs · running) scan per advance, which is what lets a
//! sparse trace jump dead time at millions of events per second.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which mechanism advances the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeEngine {
    /// The legacy reference engine: linear completion scans
    /// (`Cluster::release_to` / `Cluster::next_completion`) and cursor
    /// sweeps. Kept for the equivalence gate and as the perf baseline.
    Stepped,
    /// The event-calendar engine (default): completions and arrivals live
    /// in a binary heap; advancing pops due events in deterministic order.
    #[default]
    Event,
}

/// What happens at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The running task `task_id` on VM `vm` finishes and its resources
    /// release.
    Completion {
        /// VM index within the cluster.
        vm: u32,
        /// Id of the finishing task (`TaskSpec::id`; the flattened global
        /// index in the DAG environment).
        task_id: u64,
    },
    /// The trace task at arrival-sorted `index` arrives (flat environment;
    /// scheduled lazily, one pending arrival at a time).
    Arrival {
        /// Index into the arrival-sorted episode trace.
        index: u32,
    },
    /// The dependency-free workflow task `gid` is released at its
    /// submission time (DAG environment; scheduled lazily like arrivals).
    Release {
        /// Flattened global task index.
        gid: u32,
    },
}

impl EventKind {
    /// Same-timestamp class rank: completions, then arrivals, then root
    /// releases.
    fn class(self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival { .. } => 1,
            EventKind::Release { .. } => 2,
        }
    }

    /// Same-timestamp, same-class lane: VM index for completions (the
    /// stepped core released VMs in index order), 0 otherwise.
    fn lane(self) -> u32 {
        match self {
            EventKind::Completion { vm, .. } => vm,
            _ => 0,
        }
    }
}

/// One scheduled event. Ordering (via [`EventCalendar`]) is total and
/// deterministic: `(time, class, lane, insertion seq)`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Simulation step at which the event fires.
    pub time: u64,
    /// The typed payload.
    pub kind: EventKind,
    /// Insertion sequence number (FIFO tie-break within a lane).
    seq: u64,
}

impl Event {
    /// Insertion sequence number assigned by the calendar.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn key(&self) -> (u64, u8, u32, u64) {
        (self.time, self.kind.class(), self.kind.lane(), self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// The typed event calendar: a binary min-heap with deterministic
/// tie-breaking (see the module docs for the exact order).
#[derive(Debug, Clone, Default)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events and restarts the sequence counter,
    /// retaining heap capacity (episode reset on warm workspaces).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Schedules `kind` at `time`. O(log n); FIFO among same-lane ties.
    pub fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, kind, seq }));
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Pops the earliest pending event iff it fires at or before `horizon`.
    pub fn pop_due(&mut self, horizon: u64) -> Option<Event> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }
}

/// How an environment reacts to the passage of time. The [`SimClock`] owns
/// the *decision* of where the clock goes next; implementors own the state
/// transitions. The two `scan_*` methods are the legacy reference engine's
/// mechanism and must apply exactly the same transitions as the
/// corresponding [`TimeDriven::on_event`] calls would.
pub trait TimeDriven {
    /// Applies one calendar event (event engine). Handlers may schedule
    /// follow-up events into `calendar` (e.g. the next lazy arrival).
    fn on_event(&mut self, ev: Event, calendar: &mut EventCalendar);

    /// Applies every event with timestamp `<= now` by scanning (stepped
    /// reference engine). Returns the number of logical events applied.
    fn scan_to(&mut self, now: u64) -> u64;

    /// Earliest pending event timestamp by scanning (stepped reference
    /// engine).
    fn next_event_scan(&self) -> Option<u64>;
}

/// The single time authority: owns `now`, the calendar, and the one copy of
/// the fast-forward logic both environments previously duplicated. All
/// clock movement goes through here; environments never mutate time
/// directly.
#[derive(Debug, Clone)]
pub struct SimClock {
    engine: TimeEngine,
    now: u64,
    calendar: EventCalendar,
}

impl SimClock {
    /// A clock at step 0 with an empty calendar.
    pub fn new(engine: TimeEngine) -> Self {
        Self { engine, now: 0, calendar: EventCalendar::new() }
    }

    /// The active engine.
    pub fn engine(&self) -> TimeEngine {
        self.engine
    }

    /// Switches engines, dropping any pending events (only meaningful
    /// between episodes; the environments enforce that).
    pub fn set_engine(&mut self, engine: TimeEngine) {
        self.engine = engine;
        self.calendar.clear();
    }

    /// Current simulation time (steps).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Pending calendar size (0 under the stepped engine).
    pub fn pending_events(&self) -> usize {
        self.calendar.len()
    }

    /// Rewinds to step 0 and clears the calendar (episode reset).
    pub fn reset(&mut self) {
        self.now = 0;
        self.calendar.clear();
    }

    /// Schedules an event (no-op under the stepped engine, whose mechanism
    /// re-derives events by scanning).
    pub fn schedule(&mut self, time: u64, kind: EventKind) {
        if self.engine == TimeEngine::Event {
            self.calendar.schedule(time, kind);
        }
    }

    /// Earliest pending event timestamp under the active engine.
    pub fn next_event<H: TimeDriven>(&self, h: &H) -> Option<u64> {
        match self.engine {
            TimeEngine::Event => self.calendar.peek_time(),
            TimeEngine::Stepped => h.next_event_scan(),
        }
    }

    /// Applies every event due at or before the current time without
    /// advancing (used once per episode reset). Returns events applied.
    pub fn drain_due<H: TimeDriven>(&mut self, h: &mut H) -> u64 {
        match self.engine {
            TimeEngine::Event => {
                let mut n = 0;
                while let Some(ev) = self.calendar.pop_due(self.now) {
                    h.on_event(ev, &mut self.calendar);
                    n += 1;
                }
                n
            }
            TimeEngine::Stepped => h.scan_to(self.now),
        }
    }

    /// Moves the clock to `target`, applying all events in
    /// `(now, target]` in calendar order. Returns events applied.
    ///
    /// # Panics
    /// Debug-asserts `target > now` (time is monotone).
    pub fn advance_to<H: TimeDriven>(&mut self, target: u64, h: &mut H) -> u64 {
        debug_assert!(target > self.now, "advance_to must move time forward");
        self.now = target;
        self.drain_due(h)
    }

    /// Advances exactly one step (the per-minute contract of a denied
    /// placement or a lazy wait). Returns events applied.
    pub fn advance_one<H: TimeDriven>(&mut self, h: &mut H) -> u64 {
        self.advance_to(self.now + 1, h)
    }

    /// Jumps straight to the next pending event. Returns `None` (clock
    /// unmoved) if nothing is pending.
    pub fn advance_next<H: TimeDriven>(&mut self, h: &mut H) -> Option<u64> {
        let t = self.next_event(h)?;
        debug_assert!(t > self.now, "pending events are always in the future");
        Some(self.advance_to(t, h))
    }

    /// The shared fast-forward decision (previously duplicated by the flat
    /// and DAG environments): jump to the next event when fast-forwarding
    /// and one is pending in the future, else tick one step. Returns events
    /// applied.
    pub fn advance_auto<H: TimeDriven>(&mut self, fast_forward: bool, h: &mut H) -> u64 {
        let target = match self.next_event(h) {
            Some(t) if fast_forward && t > self.now => t,
            _ => self.now + 1,
        };
        self.advance_to(target, h)
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new(TimeEngine::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(vm: u32, task_id: u64) -> EventKind {
        EventKind::Completion { vm, task_id }
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(30, EventKind::Arrival { index: 2 });
        cal.schedule(10, EventKind::Arrival { index: 0 });
        cal.schedule(20, EventKind::Arrival { index: 1 });
        let times: Vec<u64> = std::iter::from_fn(|| cal.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_time_completions_order_by_vm_then_insertion() {
        let mut cal = EventCalendar::new();
        // Inserted out of VM order; same timestamp.
        cal.schedule(5, completion(2, 100));
        cal.schedule(5, completion(0, 101));
        cal.schedule(5, completion(2, 102));
        cal.schedule(5, completion(1, 103));
        let ids: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| match e.kind {
                EventKind::Completion { task_id, .. } => task_id,
                _ => unreachable!(),
            })
            .collect();
        // VM 0 first, then VM 1, then VM 2's two tasks in insertion order.
        assert_eq!(ids, vec![101, 103, 100, 102]);
    }

    #[test]
    fn completions_precede_arrivals_and_releases_at_equal_time() {
        let mut cal = EventCalendar::new();
        cal.schedule(7, EventKind::Release { gid: 9 });
        cal.schedule(7, EventKind::Arrival { index: 3 });
        cal.schedule(7, completion(5, 1));
        let classes: Vec<u8> = std::iter::from_fn(|| cal.pop())
            .map(|e| match e.kind {
                EventKind::Completion { .. } => 0,
                EventKind::Arrival { .. } => 1,
                EventKind::Release { .. } => 2,
            })
            .collect();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut cal = EventCalendar::new();
        cal.schedule(4, EventKind::Arrival { index: 0 });
        cal.schedule(9, EventKind::Arrival { index: 1 });
        assert!(cal.pop_due(3).is_none());
        assert_eq!(cal.pop_due(4).unwrap().time, 4);
        assert!(cal.pop_due(8).is_none());
        assert_eq!(cal.peek_time(), Some(9));
    }

    #[test]
    fn clear_restarts_fifo_sequence() {
        let mut cal = EventCalendar::new();
        cal.schedule(1, EventKind::Arrival { index: 0 });
        cal.clear();
        assert!(cal.is_empty());
        cal.schedule(1, EventKind::Arrival { index: 1 });
        assert_eq!(cal.pop().unwrap().seq(), 0);
    }

    /// A handler that logs events and lazily schedules follow-ups, plus a
    /// scan mechanism over the same schedule, to exercise both engines.
    struct Ledger {
        /// (time, index) of every arrival not yet applied, sorted.
        pending: Vec<(u64, u32)>,
        cursor: usize,
        applied: Vec<(u64, u32)>,
        lazy: bool,
    }

    impl TimeDriven for Ledger {
        fn on_event(&mut self, ev: Event, calendar: &mut EventCalendar) {
            let EventKind::Arrival { index } = ev.kind else { unreachable!() };
            assert_eq!(index as usize, self.cursor);
            self.applied.push((ev.time, index));
            self.cursor += 1;
            if self.lazy {
                if let Some(&(t, i)) = self.pending.get(self.cursor) {
                    calendar.schedule(t, EventKind::Arrival { index: i });
                }
            }
        }

        fn scan_to(&mut self, now: u64) -> u64 {
            let mut n = 0;
            while let Some(&(t, i)) = self.pending.get(self.cursor) {
                if t > now {
                    break;
                }
                self.applied.push((t, i));
                self.cursor += 1;
                n += 1;
            }
            n
        }

        fn next_event_scan(&self) -> Option<u64> {
            self.pending.get(self.cursor).map(|&(t, _)| t)
        }
    }

    fn ledger(times: &[u64], lazy: bool) -> Ledger {
        Ledger {
            pending: times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect(),
            cursor: 0,
            applied: Vec::new(),
            lazy,
        }
    }

    /// Both engines reach identical decision points and apply identical
    /// event sequences on the same schedule.
    #[test]
    fn engines_agree_on_a_lazy_schedule() {
        let times = [0, 0, 3, 3, 10, 50];
        let mut stepped = ledger(&times, false);
        let mut clock_s = SimClock::new(TimeEngine::Stepped);
        let mut event = ledger(&times, true);
        let mut clock_e = SimClock::new(TimeEngine::Event);
        clock_e.schedule(times[0], EventKind::Arrival { index: 0 });

        let mut trace_s = vec![(clock_s.now(), clock_s.drain_due(&mut stepped))];
        let mut trace_e = vec![(clock_e.now(), clock_e.drain_due(&mut event))];
        for _ in 0..8 {
            let n = clock_s.advance_auto(true, &mut stepped);
            trace_s.push((clock_s.now(), n));
            let n = clock_e.advance_auto(true, &mut event);
            trace_e.push((clock_e.now(), n));
        }
        assert_eq!(trace_s, trace_e);
        assert_eq!(stepped.applied, event.applied);
        assert_eq!(clock_s.now(), clock_e.now());
    }

    #[test]
    fn advance_auto_ticks_one_step_without_events_or_fast_forward() {
        let mut h = ledger(&[100], true);
        let mut clock = SimClock::new(TimeEngine::Event);
        clock.schedule(100, EventKind::Arrival { index: 0 });
        clock.advance_auto(false, &mut h);
        assert_eq!(clock.now(), 1);
        assert!(h.applied.is_empty());
        clock.advance_auto(true, &mut h);
        assert_eq!(clock.now(), 100);
        assert_eq!(h.applied, vec![(100, 0)]);
        // Calendar drained: auto now falls back to a single tick.
        clock.advance_auto(true, &mut h);
        assert_eq!(clock.now(), 101);
    }

    #[test]
    fn advance_next_jumps_or_reports_empty() {
        let mut h = ledger(&[42], true);
        let mut clock = SimClock::new(TimeEngine::Event);
        clock.schedule(42, EventKind::Arrival { index: 0 });
        assert_eq!(clock.advance_next(&mut h), Some(1));
        assert_eq!(clock.now(), 42);
        assert_eq!(clock.advance_next(&mut h), None);
        assert_eq!(clock.now(), 42);
    }

    #[test]
    fn stepped_engine_ignores_schedule() {
        let mut clock = SimClock::new(TimeEngine::Stepped);
        clock.schedule(5, EventKind::Arrival { index: 0 });
        assert_eq!(clock.pending_events(), 0);
    }
}
