//! The RL environment: episode loop, action semantics, and reward function
//! (Sec. 4.2, Eqs. 2 and 6–9).

use crate::cluster::Cluster;
use crate::config::{EnvConfig, EnvDims};
use crate::events::{Event, EventCalendar, EventKind, SimClock, TimeDriven, TimeEngine};
use crate::metrics::{compute_metrics, EpisodeMetrics, TaskRecord};
use crate::vm::VmSpec;
use pfrl_telemetry::Telemetry;
use pfrl_workloads::TaskSpec;
use std::collections::VecDeque;
use std::time::Instant;

/// A scheduling action: assign the head-of-queue task to VM `i`, or wait
/// one step (the `-1` of Eq. (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Place the head task on the VM with this index.
    Vm(usize),
    /// Do nothing this step.
    Wait,
}

impl Action {
    /// Decodes a policy-head index: `0..max_vms` are VM choices, `max_vms`
    /// is wait.
    ///
    /// # Panics
    /// If `index > max_vms`.
    pub fn from_index(index: usize, max_vms: usize) -> Self {
        assert!(index <= max_vms, "action index {index} out of range");
        if index == max_vms {
            Action::Wait
        } else {
            Action::Vm(index)
        }
    }

    /// Encodes back to the policy-head index.
    pub fn to_index(self, max_vms: usize) -> usize {
        match self {
            Action::Vm(i) => i,
            Action::Wait => max_vms,
        }
    }
}

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Scalar reward.
    pub reward: f32,
    /// Whether the episode finished with this step.
    pub done: bool,
    /// True iff this step successfully placed a task.
    pub placed: bool,
}

/// The cloud task-scheduling environment of one client.
#[derive(Debug, Clone)]
pub struct CloudEnv {
    dims: EnvDims,
    cfg: EnvConfig,
    vm_specs: Vec<VmSpec>,
    cluster: Cluster,
    /// Episode trace, arrival-sorted.
    tasks: Vec<TaskSpec>,
    next_arrival: usize,
    queue: VecDeque<TaskSpec>,
    /// The single time authority (event calendar or stepped reference).
    clock: SimClock,
    /// Logical events (arrivals + completions) applied this episode —
    /// identical across engines by construction.
    events: u64,
    records: Vec<TaskRecord>,
    /// Tasks rejected at admission because they exceed every VM's total
    /// capacity (can occur with hybrid foreign workloads, Sec. 5.3).
    rejected: usize,
    decisions: usize,
    total_reward: f64,
    done: bool,
    truncated: bool,
    telemetry: Telemetry,
    /// Wall-clock start of the running episode; `None` while telemetry is
    /// disabled so the hot path never reads the clock.
    episode_started: Option<Instant>,
}

impl CloudEnv {
    /// Builds an environment over `vms` with federation-wide `dims`.
    ///
    /// # Panics
    /// If the cluster exceeds the dims (more VMs than `max_vms`, or a VM
    /// larger than the normalization maxima), or config is invalid.
    pub fn new(dims: EnvDims, vms: Vec<VmSpec>, cfg: EnvConfig) -> Self {
        cfg.validate();
        assert!(!vms.is_empty(), "CloudEnv needs at least one VM");
        assert!(
            vms.len() <= dims.max_vms,
            "cluster has {} VMs but dims allow {}",
            vms.len(),
            dims.max_vms
        );
        for (i, v) in vms.iter().enumerate() {
            assert!(
                v.vcpus <= dims.max_vcpus && v.mem_gb <= dims.max_mem_gb,
                "VM {i} ({}, {}) exceeds dims maxima",
                v.vcpus,
                v.mem_gb
            );
        }
        let cluster = Cluster::new(&vms);
        Self {
            dims,
            cfg,
            vm_specs: vms,
            cluster,
            tasks: Vec::new(),
            next_arrival: 0,
            queue: VecDeque::new(),
            clock: SimClock::default(),
            events: 0,
            records: Vec::new(),
            rejected: 0,
            decisions: 0,
            total_reward: 0.0,
            done: true,
            truncated: false,
            telemetry: Telemetry::noop(),
            episode_started: None,
        }
    }

    /// Routes this environment's metrics (decisions/sec, queue depth,
    /// per-episode step timing) to `telemetry`. Defaults to a noop handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Selects the time engine (event calendar by default; the stepped
    /// scan engine is the bit-identical reference used by the equivalence
    /// gate and the perf baseline).
    ///
    /// # Panics
    /// If called mid-episode — switching then would desynchronize the
    /// calendar from the cluster state.
    pub fn set_time_engine(&mut self, engine: TimeEngine) {
        assert!(self.done, "switch time engines only between episodes");
        self.clock.set_engine(engine);
    }

    /// The active time engine.
    pub fn time_engine(&self) -> TimeEngine {
        self.clock.engine()
    }

    /// Logical events (arrivals incl. admission rejections + completions)
    /// applied this episode. Both engines report identical counts.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Starts a new episode over `tasks` (will be arrival-sorted).
    pub fn reset(&mut self, mut tasks: Vec<TaskSpec>) {
        tasks.sort_by_key(|t| t.arrival);
        self.cluster.reset();
        self.tasks = tasks;
        self.next_arrival = 0;
        self.queue.clear();
        self.clock.reset();
        self.events = 0;
        self.records.clear();
        self.rejected = 0;
        self.decisions = 0;
        self.total_reward = 0.0;
        self.truncated = false;
        // Arrivals are scheduled lazily, one pending event at a time: the
        // calendar holds at most (1 arrival + running completions) events.
        if let Some(first) = self.tasks.first() {
            self.clock.schedule(first.arrival, EventKind::Arrival { index: 0 });
        }
        self.advance(Advance::Due); // apply t = 0 arrivals
        self.done = self.queue.is_empty() && self.next_arrival >= self.tasks.len();
        // An empty-queue start with pending future arrivals: skip dead time.
        if !self.done && self.queue.is_empty() {
            self.advance(Advance::Auto);
        }
        self.episode_started = self.telemetry.is_enabled().then(Instant::now);
    }

    /// Environment dims.
    pub fn dims(&self) -> &EnvDims {
        &self.dims
    }

    /// Environment config.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Current simulation time (steps).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The VM specs of this cluster.
    pub fn vm_specs(&self) -> &[VmSpec] {
        &self.vm_specs
    }

    /// The live cluster state.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of tasks waiting (full backlog, not just visible slots).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the episode has ended.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the episode ended by hitting the decision cap.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Agent decisions taken so far this episode.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// The current observation vector (Eq. 1 encoding).
    pub fn observe(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.observe_into(&mut out);
        out
    }

    /// [`CloudEnv::observe`] into a reusable buffer — the per-decision
    /// inference path allocates nothing after warmup.
    pub fn observe_into(&self, out: &mut Vec<f32>) {
        crate::state::encode_state_into(
            &self.dims,
            &self.cluster,
            self.queue.iter().take(self.dims.queue_slots),
            self.clock.now(),
            out,
        );
    }

    /// Feasibility mask over the action head: `mask[i]` for VM `i`,
    /// `mask[max_vms]` for wait (always true).
    pub fn action_mask(&self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.action_mask_into(&mut mask);
        mask
    }

    /// [`CloudEnv::action_mask`] into a reusable buffer.
    pub fn action_mask_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.resize(self.dims.action_dim(), false);
        out[self.dims.max_vms] = true;
        if let Some(head) = self.queue.front() {
            for (i, vm) in self.cluster.vms().iter().enumerate() {
                if vm.can_fit(head) {
                    out[i] = true;
                }
            }
        }
    }

    /// First feasible VM for the head task, if any (used by baselines).
    pub fn first_fit_action(&self) -> Option<Action> {
        let head = self.queue.front()?;
        self.cluster.vms().iter().position(|v| v.can_fit(head)).map(Action::Vm)
    }

    /// Head of the waiting queue, if any.
    pub fn head_task(&self) -> Option<&TaskSpec> {
        self.queue.front()
    }

    /// Executes one agent decision.
    ///
    /// # Panics
    /// If called on a finished episode.
    pub fn step(&mut self, action: Action) -> StepOutcome {
        assert!(!self.done, "step on finished episode");
        self.decisions += 1;
        let mut placed = false;

        let reward = match action {
            Action::Vm(i) if i >= self.cluster.len() => {
                // Void VM slot: maximal denial penalty (util treated as 1).
                self.advance(Advance::One);
                crate::reward::void_slot_penalty()
            }
            Action::Vm(i) => match self.queue.front().copied() {
                None => {
                    // Nothing to schedule; behave like a neutral wait.
                    self.advance(Advance::Auto);
                    0.0
                }
                Some(head) => {
                    if self.cluster.vms()[i].can_fit(&head) {
                        placed = true;
                        self.place(i, head)
                    } else {
                        let r = self.denial_penalty(i);
                        self.advance(Advance::One);
                        r
                    }
                }
            },
            Action::Wait => {
                let lazy = self.queue.front().is_some_and(|head| self.cluster.any_feasible(head));
                if lazy {
                    self.advance(Advance::One);
                    self.cfg.lazy_wait_penalty
                } else {
                    self.advance(Advance::Auto);
                    0.0
                }
            }
        };

        self.total_reward += reward as f64;
        if self.queue.is_empty() && self.next_arrival >= self.tasks.len() {
            self.done = true;
        }
        if self.decisions >= self.cfg.max_decisions && !self.done {
            self.done = true;
            self.truncated = true;
        }
        self.telemetry.observe("sim/queue_depth", self.queue.len() as f64);
        if self.done {
            self.record_episode_telemetry();
        }
        StepOutcome { reward, done: self.done, placed }
    }

    /// Per-episode telemetry, emitted once when an episode finishes.
    /// Deterministic quantities go to counters/histograms; wall-clock
    /// quantities (decisions/sec, step time) go to gauges and spans only.
    fn record_episode_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter("sim/decisions", self.decisions as u64);
        self.telemetry.counter("sim/episodes", 1);
        self.telemetry.counter("sim/events", self.events);
        self.telemetry.observe("sim/episode_decisions", self.decisions as f64);
        if let Some(started) = self.episode_started.take() {
            let elapsed = started.elapsed();
            let ns = elapsed.as_nanos() as u64;
            self.telemetry.span_ns("sim/episode", ns);
            if self.decisions > 0 && ns > 0 {
                self.telemetry.gauge("sim/ns_per_decision", ns as f64 / self.decisions as f64);
                self.telemetry
                    .gauge("sim/decisions_per_sec", self.decisions as f64 / elapsed.as_secs_f64());
            }
        }
    }

    /// Episode metrics (valid once the episode is done; callable anytime for
    /// diagnostics on the records so far).
    pub fn metrics(&self) -> EpisodeMetrics {
        let unplaced = self.queue.len() + (self.tasks.len() - self.next_arrival) + self.rejected;
        compute_metrics(
            &self.records,
            &self.vm_specs,
            &self.cfg.resource_weights,
            unplaced,
            self.total_reward,
        )
    }

    /// The raw placement records (for custom analyses).
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Number of admission-rejected tasks this episode.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    // ---- internals -------------------------------------------------------

    /// Places the head task on VM `i` and returns the placement reward
    /// `ρ·R_res + (1-ρ)·R_load` (Eqs. 6–8). Time does not advance: the agent
    /// may schedule further queued tasks within the same step.
    fn place(&mut self, i: usize, head: TaskSpec) -> f32 {
        let now = self.clock.now();
        let lb_before = self.cluster.load_balance(&self.cfg.resource_weights);
        self.cluster.vm_mut(i).place(&head, now);
        self.clock.schedule(
            now + head.duration,
            EventKind::Completion { vm: i as u32, task_id: head.id },
        );
        let lb_after = self.cluster.load_balance(&self.cfg.resource_weights);
        self.queue.pop_front();
        self.records.push(TaskRecord {
            task_id: head.id,
            vm: i,
            vcpus: head.vcpus,
            mem_gb: head.mem_gb,
            arrival: head.arrival,
            start: now,
            duration: head.duration,
        });
        crate::reward::placement_reward(
            &self.cfg,
            lb_before,
            lb_after,
            now - head.arrival,
            head.duration,
        )
    }

    /// Denial penalty `R_p = -exp(Σ w_i·util(a, i))` (Eq. 9).
    fn denial_penalty(&self, i: usize) -> f32 {
        crate::reward::denial_penalty(&self.cfg, &self.cluster.vms()[i])
    }

    /// Moves the clock per `mode` through the [`SimClock`] time authority,
    /// accounting the events applied and the size of the horizon jump.
    fn advance(&mut self, mode: Advance) {
        let from = self.clock.now();
        let fast_forward = self.cfg.fast_forward;
        let CloudEnv { clock, cluster, tasks, vm_specs, queue, next_arrival, rejected, .. } = self;
        let mut timeline = FlatTimeline { cluster, tasks, vm_specs, queue, next_arrival, rejected };
        let n = match mode {
            Advance::One => clock.advance_one(&mut timeline),
            Advance::Auto => clock.advance_auto(fast_forward, &mut timeline),
            Advance::Due => clock.drain_due(&mut timeline),
        };
        self.events += n;
        let jump = self.clock.now() - from;
        if jump > 0 {
            self.telemetry.observe("sim/event_horizon_jump", jump as f64);
        }
    }
}

/// Clock-movement modes of the flat environment.
enum Advance {
    /// Exactly one step (denials, void slots, lazy waits).
    One,
    /// To the next event when fast-forwarding, else one step.
    Auto,
    /// Apply events due at the current time without advancing (reset).
    Due,
}

/// Whether `t` fits at least one VM at full (empty) capacity — the
/// admission-control predicate.
fn admissible(vm_specs: &[VmSpec], t: &TaskSpec) -> bool {
    vm_specs.iter().any(|s| t.vcpus <= s.vcpus && t.mem_gb <= s.mem_gb)
}

/// Disjoint-field view of the flat environment's time-dependent state:
/// what the [`SimClock`] drives. The event path handles one typed event per
/// call; the scan path reproduces the legacy per-advance sweeps.
struct FlatTimeline<'a> {
    cluster: &'a mut Cluster,
    tasks: &'a [TaskSpec],
    vm_specs: &'a [VmSpec],
    queue: &'a mut VecDeque<TaskSpec>,
    next_arrival: &'a mut usize,
    rejected: &'a mut usize,
}

impl FlatTimeline<'_> {
    /// Admits or rejects one arrived task (both engines share this exact
    /// transition).
    fn arrive(&mut self, t: TaskSpec) {
        if admissible(self.vm_specs, &t) {
            self.queue.push_back(t);
        } else {
            *self.rejected += 1;
        }
    }
}

impl TimeDriven for FlatTimeline<'_> {
    fn on_event(&mut self, ev: Event, calendar: &mut EventCalendar) {
        match ev.kind {
            EventKind::Completion { vm, task_id } => {
                self.cluster.vm_mut(vm as usize).finish(task_id, ev.time);
            }
            EventKind::Arrival { index } => {
                let i = index as usize;
                debug_assert_eq!(i, *self.next_arrival, "arrivals apply in trace order");
                *self.next_arrival = i + 1;
                // Lazy chain: the next arrival enters the calendar only now.
                if let Some(next) = self.tasks.get(i + 1) {
                    calendar.schedule(next.arrival, EventKind::Arrival { index: index + 1 });
                }
                self.arrive(self.tasks[i]);
            }
            EventKind::Release { .. } => unreachable!("flat env schedules no Release events"),
        }
    }

    fn scan_to(&mut self, now: u64) -> u64 {
        let before = self.cluster.running_count();
        self.cluster.release_to(now);
        let mut n = (before - self.cluster.running_count()) as u64;
        while *self.next_arrival < self.tasks.len() && self.tasks[*self.next_arrival].arrival <= now
        {
            let t = self.tasks[*self.next_arrival];
            *self.next_arrival += 1;
            n += 1;
            self.arrive(t);
        }
        n
    }

    fn next_event_scan(&self) -> Option<u64> {
        let completion = self.cluster.next_completion();
        let arrival = self.tasks.get(*self.next_arrival).map(|t| t.arrival);
        match (completion, arrival) {
            (Some(c), Some(a)) => Some(c.min(a)),
            (c, a) => c.or(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> EnvDims {
        EnvDims::new(3, 8, 64.0, 4)
    }

    fn env() -> CloudEnv {
        CloudEnv::new(
            dims(),
            vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            EnvConfig::default(),
        )
    }

    fn task(id: u64, arrival: u64, vcpus: u32, mem: f32, dur: u64) -> TaskSpec {
        TaskSpec { id, arrival, vcpus, mem_gb: mem, duration: dur }
    }

    #[test]
    fn immediate_placement_reward_is_max_response_component() {
        let mut e = env();
        e.reset(vec![task(0, 0, 2, 8.0, 10)]);
        let out = e.step(Action::Vm(0));
        assert!(out.placed);
        assert!(out.done);
        // No wait → r_res = e^1; load worsened from perfect balance →
        // r_load = load_c (small positive). Reward ≈ 0.5e + small.
        let e1 = std::f32::consts::E;
        assert!(out.reward > 0.5 * e1 && out.reward < 0.5 * e1 + 0.5, "{}", out.reward);
    }

    #[test]
    fn denied_placement_penalized_and_time_advances() {
        let mut e = env();
        e.reset(vec![task(0, 0, 8, 64.0, 10), task(1, 0, 8, 64.0, 10)]);
        let t0 = e.now();
        e.step(Action::Vm(0)); // fills VM 0 completely
        let out = e.step(Action::Vm(0)); // second task cannot fit VM 0
        assert!(!out.placed);
        // util of VM 0 is 1.0 on both resources → penalty = -e^1.
        assert!((out.reward + std::f32::consts::E).abs() < 1e-5, "{}", out.reward);
        assert_eq!(e.now(), t0 + 1);
    }

    #[test]
    fn void_vm_slot_gets_max_penalty() {
        let mut e = env(); // 2 real VMs, dims allow 3
        e.reset(vec![task(0, 0, 1, 1.0, 5)]);
        let out = e.step(Action::Vm(2));
        assert!((out.reward + std::f32::consts::E).abs() < 1e-6);
        assert!(!out.placed);
    }

    #[test]
    fn lazy_wait_penalized() {
        let mut e = env();
        e.reset(vec![task(0, 0, 1, 1.0, 5)]);
        let out = e.step(Action::Wait);
        assert_eq!(out.reward, e.config().lazy_wait_penalty);
    }

    #[test]
    fn forced_wait_neutral_and_fast_forwards() {
        let mut e = env();
        // First task fills everything for 30 steps; second arrives at 1 and
        // cannot fit anywhere until the completion at 30.
        e.reset(vec![task(0, 0, 8, 64.0, 30), task(1, 1, 8, 64.0, 5)]);
        e.step(Action::Vm(0));
        e.step(Action::Vm(1)); // denied on VM 1 (too small), advances to t=1
        assert_eq!(e.now(), 1);
        let out = e.step(Action::Wait); // head fits nowhere → jump to t=30
        assert_eq!(out.reward, 0.0);
        assert_eq!(e.now(), 30);
        let out = e.step(Action::Vm(0));
        assert!(out.placed && out.done);
        // Second task waited 29 steps.
        let rec = e.records().last().unwrap();
        assert_eq!(rec.wait(), 29);
        assert_eq!(rec.response(), 34);
    }

    #[test]
    fn episode_ends_when_all_tasks_placed() {
        let mut e = env();
        e.reset(vec![task(0, 0, 1, 1.0, 5), task(1, 0, 1, 1.0, 5)]);
        assert!(!e.is_done());
        assert!(!e.step(Action::Vm(0)).done);
        assert!(e.step(Action::Vm(1)).done);
        let m = e.metrics();
        assert_eq!(m.tasks_placed, 2);
        assert_eq!(m.tasks_unplaced, 0);
    }

    #[test]
    fn multiple_placements_same_time_step() {
        let mut e = env();
        e.reset(vec![task(0, 0, 1, 1.0, 5), task(1, 0, 1, 1.0, 5)]);
        e.step(Action::Vm(0));
        e.step(Action::Vm(0));
        // Both placed at t = 0: no time advance on success.
        assert!(e.records().iter().all(|r| r.start == 0));
    }

    #[test]
    fn admission_control_rejects_oversized() {
        let mut e = env(); // max VM is (8, 64)
        e.reset(vec![task(0, 0, 16, 8.0, 5), task(1, 0, 1, 1.0, 5)]);
        assert_eq!(e.rejected(), 1);
        assert_eq!(e.queue_len(), 1);
        e.step(Action::Vm(0));
        assert!(e.is_done());
        assert_eq!(e.metrics().tasks_unplaced, 1);
    }

    #[test]
    fn truncation_at_decision_cap() {
        let mut e = CloudEnv::new(
            dims(),
            vec![VmSpec::new(8, 64.0)],
            EnvConfig { max_decisions: 5, ..Default::default() },
        );
        e.reset(vec![task(0, 0, 1, 1.0, 5); 100]);
        let mut n = 0;
        while !e.is_done() {
            e.step(Action::Wait); // stubborn lazy agent
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(e.is_truncated());
        assert!(e.metrics().tasks_unplaced > 0);
    }

    #[test]
    fn observation_tracks_queue_and_time() {
        let mut e = env();
        e.reset(vec![task(0, 0, 4, 32.0, 10), task(1, 0, 2, 16.0, 10)]);
        let s = e.observe();
        assert_eq!(s.len(), e.dims().state_dim());
        // Queue section starts after L·d + L·U entries.
        let qs = 3 * 2 + 3 * 8;
        assert_eq!(s[qs], 0.5); // 4/8 vcpus
        assert_eq!(s[qs + 1], 0.5); // 32/64 mem
        assert_eq!(s[qs + 2], 0.25); // second task 2/8
    }

    #[test]
    fn reward_decreases_with_waiting() {
        // Same task placed immediately vs after waiting: later placement
        // must earn a smaller response component.
        let place_at = |wait_steps: u64| -> f32 {
            let mut e = env();
            e.reset(vec![task(0, 0, 1, 1.0, 10)]);
            for _ in 0..wait_steps {
                e.step(Action::Wait); // lazy waits, penalized but allowed
            }
            e.step(Action::Vm(0)).reward
        };
        assert!(place_at(0) > place_at(5));
        assert!(place_at(5) > place_at(20));
    }

    #[test]
    fn empty_trace_is_immediately_done() {
        let mut e = env();
        e.reset(vec![]);
        assert!(e.is_done());
        assert_eq!(e.metrics().tasks_placed, 0);
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn step_after_done_panics() {
        let mut e = env();
        e.reset(vec![]);
        e.step(Action::Wait);
    }

    #[test]
    fn action_mask_reflects_feasibility() {
        let mut e = env();
        e.reset(vec![task(0, 0, 8, 64.0, 5)]);
        let mask = e.action_mask();
        assert_eq!(mask, vec![true, false, false, true]); // VM 0 fits, VM 1 too small, slot 2 void, wait ok
    }

    #[test]
    fn action_index_roundtrip() {
        for idx in 0..=3 {
            let a = Action::from_index(idx, 3);
            assert_eq!(a.to_index(3), idx);
        }
        assert_eq!(Action::from_index(3, 3), Action::Wait);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_action_index_panics() {
        let _ = Action::from_index(5, 3);
    }

    #[test]
    fn delayed_arrivals_skip_dead_time_on_reset() {
        let mut e = env();
        e.reset(vec![task(0, 100, 1, 1.0, 5)]);
        // Reset fast-forwards to the first arrival.
        assert_eq!(e.now(), 100);
        assert_eq!(e.queue_len(), 1);
    }

    #[test]
    fn engines_agree_on_rewards_times_and_events() {
        let trace = vec![
            task(0, 0, 8, 64.0, 30),
            task(1, 1, 8, 64.0, 5),
            task(2, 7, 2, 8.0, 12),
            task(3, 90, 16, 256.0, 4), // admission-rejected
            task(4, 90, 1, 1.0, 2),
        ];
        let mut stepped = env();
        stepped.set_time_engine(crate::TimeEngine::Stepped);
        let mut event = env();
        assert_eq!(event.time_engine(), crate::TimeEngine::Event);
        stepped.reset(trace.clone());
        event.reset(trace);
        let mut guard = 0;
        while !stepped.is_done() && guard < 1000 {
            let a = stepped.first_fit_action().unwrap_or(Action::Wait);
            let rs = stepped.step(a);
            let re = event.step(a);
            assert_eq!(rs.reward.to_bits(), re.reward.to_bits());
            assert_eq!((rs.done, rs.placed), (re.done, re.placed));
            assert_eq!(stepped.now(), event.now());
            guard += 1;
        }
        assert!(event.is_done());
        assert_eq!(stepped.events(), event.events());
        assert!(event.events() > 0);
        assert_eq!(stepped.rejected(), event.rejected());
        let (ms, me) = (stepped.metrics(), event.metrics());
        assert_eq!(ms.total_reward.to_bits(), me.total_reward.to_bits());
        assert_eq!(ms.tasks_placed, me.tasks_placed);
    }

    #[test]
    fn event_calendar_stays_lazy() {
        let mut e = env();
        e.reset(vec![task(0, 0, 1, 1.0, 5), task(1, 3, 1, 1.0, 5), task(2, 9, 1, 1.0, 5)]);
        // One pending arrival + running completions, never the whole trace.
        e.step(Action::Vm(0));
        assert!(e.clock.pending_events() <= 2, "{}", e.clock.pending_events());
    }

    #[test]
    #[should_panic(expected = "between episodes")]
    fn engine_switch_mid_episode_panics() {
        let mut e = env();
        e.reset(vec![task(0, 0, 1, 1.0, 5)]);
        e.set_time_engine(crate::TimeEngine::Stepped);
    }
}
