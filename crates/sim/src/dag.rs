//! Dependency-aware scheduling environment for workflow (DAG) workloads —
//! the extension the paper lists as future work (Sec. 6).
//!
//! [`DagCloudEnv`] keeps the flat environment's observation layout, action
//! space, and reward function (so trained agents and the federation
//! machinery work unchanged), but tasks only enter the waiting queue when
//! *all their dependencies have completed*. Response time is measured from
//! the moment a task became ready (the schedulable analogue of arrival),
//! and per-workflow makespans are tracked in addition to the episode
//! metrics.

use crate::cluster::Cluster;
use crate::config::{EnvConfig, EnvDims};
use crate::env::{Action, StepOutcome};
use crate::metrics::{compute_metrics, EpisodeMetrics, TaskRecord};
use crate::vm::VmSpec;
use crate::SchedulingEnv;
use pfrl_workloads::workflow::Workflow;
use pfrl_workloads::TaskSpec;
use std::collections::VecDeque;

/// Global (flattened) task index.
type Gid = usize;

/// The workflow scheduling environment.
#[derive(Debug, Clone)]
pub struct DagCloudEnv {
    dims: EnvDims,
    cfg: EnvConfig,
    vm_specs: Vec<VmSpec>,
    cluster: Cluster,
    /// Flattened task bodies; `TaskSpec::id` is the global index.
    tasks: Vec<TaskSpec>,
    /// Workflow index of each task.
    workflow_of: Vec<usize>,
    /// Unfinished dependency count per task.
    remaining_deps: Vec<usize>,
    /// Reverse edges: tasks unlocked by each task's completion.
    dependents: Vec<Vec<Gid>>,
    /// Ready tasks, FIFO by readiness time. `arrival` is rewritten to the
    /// readiness step so response/reward accounting matches the flat env.
    queue: VecDeque<TaskSpec>,
    /// Dep-free tasks whose workflow has not been submitted yet, sorted by
    /// submission time (drained like arrivals).
    future_roots: Vec<Gid>,
    next_root: usize,
    now: u64,
    records: Vec<TaskRecord>,
    /// Completion step per task (None while pending/running).
    finished_at: Vec<Option<u64>>,
    /// Tasks dropped by admission control (incl. descendants of dropped
    /// tasks, which can never become ready).
    rejected: usize,
    outstanding: usize,
    decisions: usize,
    total_reward: f64,
    done: bool,
    truncated: bool,
    n_workflows: usize,
    /// Reusable buffer for tasks released by [`Cluster::advance_to_into`].
    finished_scratch: Vec<crate::vm::RunningTask>,
}

impl DagCloudEnv {
    /// Builds the environment (same dimension rules as [`crate::CloudEnv`]).
    pub fn new(dims: EnvDims, vms: Vec<VmSpec>, cfg: EnvConfig) -> Self {
        cfg.validate();
        assert!(!vms.is_empty(), "DagCloudEnv needs at least one VM");
        assert!(vms.len() <= dims.max_vms, "cluster exceeds dims.max_vms");
        for v in &vms {
            assert!(
                v.vcpus <= dims.max_vcpus && v.mem_gb <= dims.max_mem_gb,
                "VM exceeds dims maxima"
            );
        }
        let cluster = Cluster::new(&vms);
        Self {
            dims,
            cfg,
            vm_specs: vms,
            cluster,
            tasks: Vec::new(),
            workflow_of: Vec::new(),
            remaining_deps: Vec::new(),
            dependents: Vec::new(),
            queue: VecDeque::new(),
            future_roots: Vec::new(),
            next_root: 0,
            now: 0,
            records: Vec::new(),
            finished_at: Vec::new(),
            rejected: 0,
            outstanding: 0,
            decisions: 0,
            total_reward: 0.0,
            done: true,
            truncated: false,
            finished_scratch: Vec::new(),
            n_workflows: 0,
        }
    }

    /// Starts an episode over a batch of workflows.
    pub fn reset(&mut self, workflows: Vec<Workflow>) {
        self.cluster.reset();
        self.tasks.clear();
        self.workflow_of.clear();
        self.remaining_deps.clear();
        self.dependents.clear();
        self.queue.clear();
        self.future_roots.clear();
        self.next_root = 0;
        self.now = 0;
        self.records.clear();
        self.finished_at.clear();
        self.rejected = 0;
        self.decisions = 0;
        self.total_reward = 0.0;
        self.truncated = false;
        self.n_workflows = workflows.len();

        // Flatten with global ids; apply admission control transitively.
        for (w, wf) in workflows.iter().enumerate() {
            assert!(wf.is_valid(), "workflow {w} violates DAG invariants");
            let base = self.tasks.len();
            let mut dropped = vec![false; wf.len()];
            for (local, t) in wf.tasks.iter().enumerate() {
                let gid = base + local;
                let admissible = self
                    .vm_specs
                    .iter()
                    .any(|s| t.spec.vcpus <= s.vcpus && t.spec.mem_gb <= s.mem_gb);
                let parent_dropped = t.deps.iter().any(|&d| dropped[d as usize]);
                let mut spec = t.spec;
                spec.id = gid as u64;
                self.tasks.push(spec);
                self.workflow_of.push(w);
                self.remaining_deps.push(t.deps.len());
                self.dependents.push(Vec::new());
                self.finished_at.push(None);
                for &d in &t.deps {
                    self.dependents[base + d as usize].push(gid);
                }
                if !admissible || parent_dropped {
                    dropped[local] = true;
                    self.rejected += 1;
                    self.finished_at[gid] = Some(0); // never schedulable
                } else if t.deps.is_empty() {
                    self.future_roots.push(gid);
                }
            }
        }
        // Roots release at their workflow submission times.
        self.future_roots.sort_by_key(|&g| self.tasks[g].arrival);
        self.outstanding = self.tasks.len() - self.rejected;
        self.done = self.outstanding == 0;
        if !self.done {
            self.release_roots();
            if self.queue.is_empty() {
                self.advance_auto();
            }
        }
    }

    /// Number of workflows in the episode.
    pub fn n_workflows(&self) -> usize {
        self.n_workflows
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Ready-queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tasks rejected by (transitive) admission control.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Whether the episode hit the decision cap.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The live cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Specs of the VMs the environment was built with.
    pub fn vm_specs(&self) -> &[VmSpec] {
        &self.vm_specs
    }

    /// Head of the ready queue.
    pub fn head_task(&self) -> Option<&TaskSpec> {
        self.queue.front()
    }

    /// First feasible VM for the head task (baseline drivers).
    pub fn first_fit_action(&self) -> Option<Action> {
        let head = self.queue.front()?;
        self.cluster.vms().iter().position(|v| v.can_fit(head)).map(Action::Vm)
    }

    /// Placement records so far.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Makespan of each workflow (submission → last task completion);
    /// `None` for workflows with unfinished tasks.
    pub fn workflow_makespans(&self) -> Vec<Option<u64>> {
        let mut spans = vec![Some(0u64); self.n_workflows];
        for (gid, t) in self.tasks.iter().enumerate() {
            let w = self.workflow_of[gid];
            // Rejected tasks are marked finished_at = Some(0): they do not
            // extend the span but do not invalidate it either.
            match (self.finished_at[gid], spans[w]) {
                (Some(f), Some(s)) => {
                    let end = f.saturating_sub(t.arrival);
                    spans[w] = Some(s.max(end));
                }
                _ => spans[w] = None,
            }
        }
        spans
    }

    // ---- internals ----

    /// Releases dep-free tasks whose submission time has passed.
    fn release_roots(&mut self) {
        while self.next_root < self.future_roots.len() {
            let gid = self.future_roots[self.next_root];
            if self.tasks[gid].arrival > self.now {
                break;
            }
            self.next_root += 1;
            self.enqueue_ready(gid, self.tasks[gid].arrival);
        }
    }

    /// Puts task `gid` into the ready queue with readiness step `ready`.
    fn enqueue_ready(&mut self, gid: Gid, ready: u64) {
        let mut spec = self.tasks[gid];
        spec.arrival = ready;
        self.queue.push_back(spec);
    }

    /// Applies completions at the current time: mark finished, unlock
    /// dependents.
    fn handle_completions(&mut self, finished: &[crate::vm::RunningTask]) {
        for rt in finished {
            let gid = rt.task_id as usize;
            self.finished_at[gid] = Some(rt.end());
            for i in 0..self.dependents[gid].len() {
                let dep = self.dependents[gid][i];
                if self.finished_at[dep].is_some() {
                    continue; // rejected descendant
                }
                self.remaining_deps[dep] -= 1;
                if self.remaining_deps[dep] == 0 {
                    // Ready now (submission time already passed: parents ran).
                    self.enqueue_ready(dep, rt.end().max(self.tasks[dep].arrival));
                }
            }
        }
    }

    fn advance_to(&mut self, t: u64) {
        debug_assert!(t > self.now);
        self.now = t;
        let mut finished = std::mem::take(&mut self.finished_scratch);
        finished.clear();
        self.cluster.advance_to_into(t, &mut finished);
        self.handle_completions(&finished);
        self.finished_scratch = finished;
        self.release_roots();
    }

    fn advance_one(&mut self) {
        self.advance_to(self.now + 1);
    }

    fn advance_auto(&mut self) {
        if !self.cfg.fast_forward {
            self.advance_one();
            return;
        }
        let mut target = u64::MAX;
        if let Some(c) = self.cluster.next_completion() {
            target = target.min(c);
        }
        if self.next_root < self.future_roots.len() {
            target = target.min(self.tasks[self.future_roots[self.next_root]].arrival);
        }
        if target == u64::MAX || target <= self.now {
            target = self.now + 1;
        }
        self.advance_to(target);
    }
}

impl SchedulingEnv for DagCloudEnv {
    fn dims(&self) -> &EnvDims {
        &self.dims
    }

    fn observe(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.observe_into(&mut out);
        out
    }

    fn observe_into(&self, out: &mut Vec<f32>) {
        crate::state::encode_state_into(
            &self.dims,
            &self.cluster,
            self.queue.iter().take(self.dims.queue_slots),
            self.now,
            out,
        );
    }

    fn step(&mut self, action: Action) -> StepOutcome {
        assert!(!self.done, "step on finished episode");
        self.decisions += 1;
        let mut placed = false;

        let reward = match action {
            Action::Vm(i) if i >= self.cluster.len() => {
                self.advance_one();
                crate::reward::void_slot_penalty()
            }
            Action::Vm(i) => match self.queue.front().copied() {
                None => {
                    self.advance_auto();
                    0.0
                }
                Some(head) => {
                    if self.cluster.vms()[i].can_fit(&head) {
                        placed = true;
                        let lb_before = self.cluster.load_balance(&self.cfg.resource_weights);
                        self.cluster.vm_mut(i).place(&head, self.now);
                        let lb_after = self.cluster.load_balance(&self.cfg.resource_weights);
                        self.queue.pop_front();
                        self.outstanding -= 1;
                        self.records.push(TaskRecord {
                            task_id: head.id,
                            vm: i,
                            vcpus: head.vcpus,
                            mem_gb: head.mem_gb,
                            arrival: head.arrival,
                            start: self.now,
                            duration: head.duration,
                        });
                        crate::reward::placement_reward(
                            &self.cfg,
                            lb_before,
                            lb_after,
                            self.now - head.arrival,
                            head.duration,
                        )
                    } else {
                        let r = crate::reward::denial_penalty(&self.cfg, &self.cluster.vms()[i]);
                        self.advance_one();
                        r
                    }
                }
            },
            Action::Wait => {
                let lazy = self.queue.front().is_some_and(|head| self.cluster.any_feasible(head));
                if lazy {
                    self.advance_one();
                    self.cfg.lazy_wait_penalty
                } else {
                    self.advance_auto();
                    0.0
                }
            }
        };

        self.total_reward += reward as f64;
        if self.outstanding == 0 {
            // Fast-forward so all completions are registered (for
            // workflow makespans), then finish.
            while self.cluster.running_count() > 0 {
                let t = self.cluster.next_completion().expect("running tasks");
                self.advance_to(t);
            }
            self.done = true;
        }
        if self.decisions >= self.cfg.max_decisions && !self.done {
            self.done = true;
            self.truncated = true;
        }
        StepOutcome { reward, done: self.done, placed }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn metrics(&self) -> EpisodeMetrics {
        // Unplaced = everything never recorded: still queued/blocked tasks
        // plus admission-rejected ones (matching the flat env's accounting).
        let unplaced = self.tasks.len() - self.records.len();
        compute_metrics(
            &self.records,
            &self.vm_specs,
            &self.cfg.resource_weights,
            unplaced,
            self.total_reward,
        )
    }

    fn action_mask(&self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.action_mask_into(&mut mask);
        mask
    }

    fn action_mask_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.resize(self.dims.action_dim(), false);
        out[self.dims.max_vms] = true;
        if let Some(head) = self.queue.front() {
            for (i, vm) in self.cluster.vms().iter().enumerate() {
                if vm.can_fit(head) {
                    out[i] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_workloads::workflow::DagTask;

    fn dims() -> EnvDims {
        EnvDims::new(2, 8, 64.0, 4)
    }

    fn env() -> DagCloudEnv {
        DagCloudEnv::new(
            dims(),
            vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            EnvConfig::default(),
        )
    }

    fn task(id: u64, vcpus: u32, dur: u64, deps: &[u64]) -> DagTask {
        DagTask {
            spec: TaskSpec { id, arrival: 0, vcpus, mem_gb: 1.0, duration: dur },
            deps: deps.to_vec(),
        }
    }

    /// A diamond: 0 → {1, 2} → 3.
    fn diamond() -> Workflow {
        Workflow {
            tasks: vec![
                task(0, 1, 10, &[]),
                task(1, 1, 5, &[0]),
                task(2, 1, 8, &[0]),
                task(3, 1, 3, &[1, 2]),
            ],
            submit: 0,
        }
    }

    #[test]
    fn only_roots_ready_initially() {
        let mut e = env();
        e.reset(vec![diamond()]);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.head_task().unwrap().id, 0);
    }

    #[test]
    fn dependents_release_only_after_completion() {
        let mut e = env();
        e.reset(vec![diamond()]);
        e.step(Action::Vm(0)); // place task 0 at t=0, ends t=10
        assert_eq!(e.queue_len(), 0);
        // Nothing ready: wait fast-forwards to the completion at t=10.
        e.step(Action::Wait);
        assert_eq!(e.now(), 10);
        assert_eq!(e.queue_len(), 2); // tasks 1 and 2 ready
                                      // Their readiness time is the unlock time.
        assert_eq!(e.head_task().unwrap().arrival, 10);
    }

    #[test]
    fn full_diamond_executes_in_dependency_order() {
        let mut e = env();
        e.reset(vec![diamond()]);
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert!(e.is_done() && !e.is_truncated());
        assert_eq!(e.records().len(), 4);
        // Task 3 starts only after both 1 and 2 finish (t = 10 + max(5,8)).
        let rec3 = e.records().iter().find(|r| r.task_id == 3).unwrap();
        assert_eq!(rec3.start, 18);
        // Workflow makespan = 10 + 8 + 3 = 21 = critical path (no contention).
        assert_eq!(e.workflow_makespans(), vec![Some(21)]);
        assert_eq!(diamond().critical_path(), 21);
    }

    #[test]
    fn parallel_siblings_run_concurrently() {
        let mut e = env();
        e.reset(vec![diamond()]);
        e.step(Action::Vm(0));
        e.step(Action::Wait); // to t=10
        e.step(Action::Vm(0)); // task 1 on VM 0
        e.step(Action::Vm(1)); // task 2 on VM 1 — same step, both at t=10
        let starts: Vec<u64> = e
            .records()
            .iter()
            .filter(|r| r.task_id == 1 || r.task_id == 2)
            .map(|r| r.start)
            .collect();
        assert_eq!(starts, vec![10, 10]);
    }

    #[test]
    fn late_submission_delays_roots() {
        let mut wf = diamond();
        wf.submit = 50;
        for t in &mut wf.tasks {
            t.spec.arrival = 50;
        }
        let mut e = env();
        e.reset(vec![wf]);
        // Reset fast-forwards to the first submission.
        assert_eq!(e.now(), 50);
        assert_eq!(e.queue_len(), 1);
    }

    #[test]
    fn inadmissible_task_drops_descendants() {
        let wf = Workflow {
            tasks: vec![
                task(0, 1, 5, &[]),
                // Too big for any VM (max 8 vCPUs):
                task(1, 32, 5, &[0]),
                task(2, 1, 5, &[1]), // descendant of the dropped task
                task(3, 1, 5, &[0]), // unaffected branch
            ],
            submit: 0,
        };
        let mut e = env();
        e.reset(vec![wf]);
        assert_eq!(e.rejected(), 2);
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert!(e.is_done() && !e.is_truncated());
        assert_eq!(e.records().len(), 2); // tasks 0 and 3 only
    }

    #[test]
    fn two_workflows_interleave() {
        let mut wf2 = diamond();
        wf2.submit = 5;
        for t in &mut wf2.tasks {
            t.spec.arrival = 5;
        }
        let mut e = env();
        e.reset(vec![diamond(), wf2]);
        let mut guard = 0;
        while !e.is_done() && guard < 2000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert_eq!(e.records().len(), 8);
        let spans = e.workflow_makespans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.is_some()));
        // Each workflow's span is at least its critical path.
        for s in spans.into_iter().flatten() {
            assert!(s >= 21);
        }
    }

    #[test]
    fn rewards_and_metrics_consistent() {
        let mut e = env();
        e.reset(vec![diamond()]);
        let mut total = 0.0f64;
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            total += e.step(a).reward as f64;
            guard += 1;
        }
        let m = e.metrics();
        assert!((m.total_reward - total).abs() < 1e-9);
        assert_eq!(m.tasks_placed, 4);
        assert!(m.avg_response >= 3.0);
    }

    #[test]
    fn observation_shape_matches_dims() {
        let mut e = env();
        e.reset(vec![diamond()]);
        assert_eq!(e.observe().len(), dims().state_dim());
    }
}
