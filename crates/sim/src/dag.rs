//! Dependency-aware scheduling environment for workflow (DAG) workloads —
//! the extension the paper lists as future work (Sec. 6).
//!
//! [`DagCloudEnv`] keeps the flat environment's observation layout, action
//! space, and reward function (so trained agents and the federation
//! machinery work unchanged), but tasks only enter the waiting queue when
//! *all their dependencies have completed*. Response time is measured from
//! the moment a task became ready (the schedulable analogue of arrival),
//! and per-workflow makespans are tracked in addition to the episode
//! metrics.

use crate::cluster::Cluster;
use crate::config::{EnvConfig, EnvDims};
use crate::env::{Action, StepOutcome};
use crate::events::{Event, EventCalendar, EventKind, SimClock, TimeDriven, TimeEngine};
use crate::metrics::{compute_metrics, EpisodeMetrics, TaskRecord};
use crate::vm::{RunningTask, VmSpec};
use crate::SchedulingEnv;
use pfrl_telemetry::Telemetry;
use pfrl_workloads::workflow::Workflow;
use pfrl_workloads::TaskSpec;
use std::collections::VecDeque;
use std::time::Instant;

/// Global (flattened) task index.
type Gid = usize;

/// The workflow scheduling environment.
#[derive(Debug, Clone)]
pub struct DagCloudEnv {
    dims: EnvDims,
    cfg: EnvConfig,
    vm_specs: Vec<VmSpec>,
    cluster: Cluster,
    /// Flattened task bodies; `TaskSpec::id` is the global index.
    tasks: Vec<TaskSpec>,
    /// Workflow index of each task.
    workflow_of: Vec<usize>,
    /// Unfinished dependency count per task.
    remaining_deps: Vec<usize>,
    /// Reverse edges: tasks unlocked by each task's completion.
    dependents: Vec<Vec<Gid>>,
    /// Ready tasks, FIFO by readiness time. `arrival` is rewritten to the
    /// readiness step so response/reward accounting matches the flat env.
    queue: VecDeque<TaskSpec>,
    /// Dep-free tasks whose workflow has not been submitted yet, sorted by
    /// submission time (drained like arrivals).
    future_roots: Vec<Gid>,
    next_root: usize,
    /// The single time authority (event calendar or stepped reference).
    clock: SimClock,
    /// Logical events (completions + root releases) applied this episode —
    /// identical across engines by construction.
    events: u64,
    records: Vec<TaskRecord>,
    /// Completion step per task (None while pending/running).
    finished_at: Vec<Option<u64>>,
    /// Tasks dropped by admission control (incl. descendants of dropped
    /// tasks, which can never become ready).
    rejected: usize,
    outstanding: usize,
    decisions: usize,
    total_reward: f64,
    done: bool,
    truncated: bool,
    n_workflows: usize,
    /// Reusable buffer for tasks released by [`Cluster::advance_to`]
    /// (stepped reference engine only).
    finished_scratch: Vec<RunningTask>,
    telemetry: Telemetry,
    /// Wall-clock start of the running episode; `None` while telemetry is
    /// disabled so the hot path never reads the clock.
    episode_started: Option<Instant>,
}

impl DagCloudEnv {
    /// Builds the environment (same dimension rules as [`crate::CloudEnv`]).
    pub fn new(dims: EnvDims, vms: Vec<VmSpec>, cfg: EnvConfig) -> Self {
        cfg.validate();
        assert!(!vms.is_empty(), "DagCloudEnv needs at least one VM");
        assert!(vms.len() <= dims.max_vms, "cluster exceeds dims.max_vms");
        for v in &vms {
            assert!(
                v.vcpus <= dims.max_vcpus && v.mem_gb <= dims.max_mem_gb,
                "VM exceeds dims maxima"
            );
        }
        let cluster = Cluster::new(&vms);
        Self {
            dims,
            cfg,
            vm_specs: vms,
            cluster,
            tasks: Vec::new(),
            workflow_of: Vec::new(),
            remaining_deps: Vec::new(),
            dependents: Vec::new(),
            queue: VecDeque::new(),
            future_roots: Vec::new(),
            next_root: 0,
            clock: SimClock::default(),
            events: 0,
            records: Vec::new(),
            finished_at: Vec::new(),
            rejected: 0,
            outstanding: 0,
            decisions: 0,
            total_reward: 0.0,
            done: true,
            truncated: false,
            finished_scratch: Vec::new(),
            n_workflows: 0,
            telemetry: Telemetry::noop(),
            episode_started: None,
        }
    }

    /// Routes this environment's metrics to `telemetry` (same schema as the
    /// flat [`crate::CloudEnv`]). Defaults to a noop handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Selects the time engine (event calendar by default; see
    /// [`crate::CloudEnv::set_time_engine`]).
    ///
    /// # Panics
    /// If called mid-episode.
    pub fn set_time_engine(&mut self, engine: TimeEngine) {
        assert!(self.done, "switch time engines only between episodes");
        self.clock.set_engine(engine);
    }

    /// The active time engine.
    pub fn time_engine(&self) -> TimeEngine {
        self.clock.engine()
    }

    /// Logical events (completions + root releases) applied this episode.
    /// Both engines report identical counts.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Starts an episode over a batch of workflows.
    pub fn reset(&mut self, workflows: Vec<Workflow>) {
        self.cluster.reset();
        self.tasks.clear();
        self.workflow_of.clear();
        self.remaining_deps.clear();
        self.dependents.clear();
        self.queue.clear();
        self.future_roots.clear();
        self.next_root = 0;
        self.clock.reset();
        self.events = 0;
        self.records.clear();
        self.finished_at.clear();
        self.rejected = 0;
        self.decisions = 0;
        self.total_reward = 0.0;
        self.truncated = false;
        self.n_workflows = workflows.len();

        // Flatten with global ids; apply admission control transitively.
        for (w, wf) in workflows.iter().enumerate() {
            assert!(wf.is_valid(), "workflow {w} violates DAG invariants");
            let base = self.tasks.len();
            let mut dropped = vec![false; wf.len()];
            for (local, t) in wf.tasks.iter().enumerate() {
                let gid = base + local;
                let admissible = self
                    .vm_specs
                    .iter()
                    .any(|s| t.spec.vcpus <= s.vcpus && t.spec.mem_gb <= s.mem_gb);
                let parent_dropped = t.deps.iter().any(|&d| dropped[d as usize]);
                let mut spec = t.spec;
                spec.id = gid as u64;
                self.tasks.push(spec);
                self.workflow_of.push(w);
                self.remaining_deps.push(t.deps.len());
                self.dependents.push(Vec::new());
                self.finished_at.push(None);
                for &d in &t.deps {
                    self.dependents[base + d as usize].push(gid);
                }
                if !admissible || parent_dropped {
                    dropped[local] = true;
                    self.rejected += 1;
                    self.finished_at[gid] = Some(0); // never schedulable
                } else if t.deps.is_empty() {
                    self.future_roots.push(gid);
                }
            }
        }
        // Roots release at their workflow submission times, scheduled
        // lazily like the flat env's arrivals: the calendar holds at most
        // (1 pending root + running completions) events.
        self.future_roots.sort_by_key(|&g| self.tasks[g].arrival);
        if let Some(&gid) = self.future_roots.first() {
            self.clock.schedule(self.tasks[gid].arrival, EventKind::Release { gid: gid as u32 });
        }
        self.outstanding = self.tasks.len() - self.rejected;
        self.done = self.outstanding == 0;
        if !self.done {
            self.advance(Advance::Due); // release t = 0 roots
            if self.queue.is_empty() {
                self.advance(Advance::Auto);
            }
        }
        self.episode_started = self.telemetry.is_enabled().then(Instant::now);
    }

    /// Number of workflows in the episode.
    pub fn n_workflows(&self) -> usize {
        self.n_workflows
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Ready-queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tasks rejected by (transitive) admission control.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Whether the episode hit the decision cap.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The live cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Specs of the VMs the environment was built with.
    pub fn vm_specs(&self) -> &[VmSpec] {
        &self.vm_specs
    }

    /// Head of the ready queue.
    pub fn head_task(&self) -> Option<&TaskSpec> {
        self.queue.front()
    }

    /// First feasible VM for the head task (baseline drivers).
    pub fn first_fit_action(&self) -> Option<Action> {
        let head = self.queue.front()?;
        self.cluster.vms().iter().position(|v| v.can_fit(head)).map(Action::Vm)
    }

    /// Placement records so far.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Makespan of each workflow (submission → last task completion);
    /// `None` for workflows with unfinished tasks.
    pub fn workflow_makespans(&self) -> Vec<Option<u64>> {
        let mut spans = vec![Some(0u64); self.n_workflows];
        for (gid, t) in self.tasks.iter().enumerate() {
            let w = self.workflow_of[gid];
            // Rejected tasks are marked finished_at = Some(0): they do not
            // extend the span but do not invalidate it either.
            match (self.finished_at[gid], spans[w]) {
                (Some(f), Some(s)) => {
                    let end = f.saturating_sub(t.arrival);
                    spans[w] = Some(s.max(end));
                }
                _ => spans[w] = None,
            }
        }
        spans
    }

    // ---- internals ----

    /// Moves the clock per `mode` through the [`SimClock`] time authority,
    /// accounting the events applied and the size of the horizon jump.
    fn advance(&mut self, mode: Advance) {
        let from = self.clock.now();
        let fast_forward = self.cfg.fast_forward;
        let DagCloudEnv {
            clock,
            cluster,
            tasks,
            queue,
            future_roots,
            next_root,
            remaining_deps,
            dependents,
            finished_at,
            finished_scratch,
            ..
        } = self;
        let mut timeline = DagTimeline {
            cluster,
            tasks,
            queue,
            future_roots,
            next_root,
            remaining_deps,
            dependents,
            finished_at,
            finished_scratch,
        };
        let n = match mode {
            Advance::One => clock.advance_one(&mut timeline),
            Advance::Auto => clock.advance_auto(fast_forward, &mut timeline),
            Advance::Due => clock.drain_due(&mut timeline),
            Advance::Next => {
                clock.advance_next(&mut timeline).expect("running tasks imply a pending completion")
            }
        };
        self.events += n;
        let jump = self.clock.now() - from;
        if jump > 0 {
            self.telemetry.observe("sim/event_horizon_jump", jump as f64);
        }
    }

    /// Per-episode telemetry, emitted once when an episode finishes (same
    /// schema as the flat env: deterministic quantities in
    /// counters/histograms, wall-clock quantities in gauges/spans).
    fn record_episode_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter("sim/decisions", self.decisions as u64);
        self.telemetry.counter("sim/episodes", 1);
        self.telemetry.counter("sim/events", self.events);
        self.telemetry.observe("sim/episode_decisions", self.decisions as f64);
        if let Some(started) = self.episode_started.take() {
            let elapsed = started.elapsed();
            let ns = elapsed.as_nanos() as u64;
            self.telemetry.span_ns("sim/episode", ns);
            if self.decisions > 0 && ns > 0 {
                self.telemetry.gauge("sim/ns_per_decision", ns as f64 / self.decisions as f64);
                self.telemetry
                    .gauge("sim/decisions_per_sec", self.decisions as f64 / elapsed.as_secs_f64());
            }
        }
    }
}

/// Clock-movement modes of the DAG environment.
enum Advance {
    /// Exactly one step.
    One,
    /// To the next event when fast-forwarding, else one step.
    Auto,
    /// Apply events due at the current time without advancing (reset).
    Due,
    /// Jump to the next pending event (end-of-episode completion drain).
    Next,
}

/// Disjoint-field view of the DAG environment's time-dependent state: what
/// the [`SimClock`] drives.
struct DagTimeline<'a> {
    cluster: &'a mut Cluster,
    tasks: &'a [TaskSpec],
    queue: &'a mut VecDeque<TaskSpec>,
    future_roots: &'a [Gid],
    next_root: &'a mut usize,
    remaining_deps: &'a mut [usize],
    dependents: &'a [Vec<Gid>],
    finished_at: &'a mut [Option<u64>],
    finished_scratch: &'a mut Vec<RunningTask>,
}

impl DagTimeline<'_> {
    /// Puts task `gid` into the ready queue with readiness step `ready`.
    fn enqueue_ready(&mut self, gid: Gid, ready: u64) {
        let mut spec = self.tasks[gid];
        spec.arrival = ready;
        self.queue.push_back(spec);
    }

    /// Applies one completion: mark finished, unlock dependents (both
    /// engines share this exact transition).
    fn complete(&mut self, rt: &RunningTask) {
        let gid = rt.task_id as usize;
        self.finished_at[gid] = Some(rt.end());
        for i in 0..self.dependents[gid].len() {
            let dep = self.dependents[gid][i];
            if self.finished_at[dep].is_some() {
                continue; // rejected descendant
            }
            self.remaining_deps[dep] -= 1;
            if self.remaining_deps[dep] == 0 {
                // Ready now (submission time already passed: parents ran).
                self.enqueue_ready(dep, rt.end().max(self.tasks[dep].arrival));
            }
        }
    }

    /// Releases task `gid` at its submission time, scheduling the next
    /// pending root (lazy chain, mirroring flat arrivals).
    fn release_root(&mut self, gid: Gid, calendar: &mut EventCalendar) {
        debug_assert_eq!(gid, self.future_roots[*self.next_root], "roots release in order");
        *self.next_root += 1;
        if let Some(&next) = self.future_roots.get(*self.next_root) {
            calendar.schedule(self.tasks[next].arrival, EventKind::Release { gid: next as u32 });
        }
        self.enqueue_ready(gid, self.tasks[gid].arrival);
    }
}

impl TimeDriven for DagTimeline<'_> {
    fn on_event(&mut self, ev: Event, calendar: &mut EventCalendar) {
        match ev.kind {
            EventKind::Completion { vm, task_id } => {
                let rt = self.cluster.vm_mut(vm as usize).finish(task_id, ev.time);
                self.complete(&rt);
            }
            EventKind::Release { gid } => self.release_root(gid as usize, calendar),
            EventKind::Arrival { .. } => unreachable!("DAG env schedules no Arrival events"),
        }
    }

    fn scan_to(&mut self, now: u64) -> u64 {
        self.finished_scratch.clear();
        self.cluster.advance_to(now, self.finished_scratch);
        let mut n = self.finished_scratch.len() as u64;
        for i in 0..self.finished_scratch.len() {
            let rt = self.finished_scratch[i];
            self.complete(&rt);
        }
        while *self.next_root < self.future_roots.len() {
            let gid = self.future_roots[*self.next_root];
            if self.tasks[gid].arrival > now {
                break;
            }
            *self.next_root += 1;
            self.enqueue_ready(gid, self.tasks[gid].arrival);
            n += 1;
        }
        n
    }

    fn next_event_scan(&self) -> Option<u64> {
        let completion = self.cluster.next_completion();
        let root = self.future_roots.get(*self.next_root).map(|&g| self.tasks[g].arrival);
        match (completion, root) {
            (Some(c), Some(r)) => Some(c.min(r)),
            (c, r) => c.or(r),
        }
    }
}

impl SchedulingEnv for DagCloudEnv {
    fn dims(&self) -> &EnvDims {
        &self.dims
    }

    fn observe_into(&self, out: &mut Vec<f32>) {
        crate::state::encode_state_into(
            &self.dims,
            &self.cluster,
            self.queue.iter().take(self.dims.queue_slots),
            self.clock.now(),
            out,
        );
    }

    fn step(&mut self, action: Action) -> StepOutcome {
        assert!(!self.done, "step on finished episode");
        self.decisions += 1;
        let mut placed = false;

        let reward = match action {
            Action::Vm(i) if i >= self.cluster.len() => {
                self.advance(Advance::One);
                crate::reward::void_slot_penalty()
            }
            Action::Vm(i) => match self.queue.front().copied() {
                None => {
                    self.advance(Advance::Auto);
                    0.0
                }
                Some(head) => {
                    if self.cluster.vms()[i].can_fit(&head) {
                        placed = true;
                        let now = self.clock.now();
                        let lb_before = self.cluster.load_balance(&self.cfg.resource_weights);
                        self.cluster.vm_mut(i).place(&head, now);
                        self.clock.schedule(
                            now + head.duration,
                            EventKind::Completion { vm: i as u32, task_id: head.id },
                        );
                        let lb_after = self.cluster.load_balance(&self.cfg.resource_weights);
                        self.queue.pop_front();
                        self.outstanding -= 1;
                        self.records.push(TaskRecord {
                            task_id: head.id,
                            vm: i,
                            vcpus: head.vcpus,
                            mem_gb: head.mem_gb,
                            arrival: head.arrival,
                            start: now,
                            duration: head.duration,
                        });
                        crate::reward::placement_reward(
                            &self.cfg,
                            lb_before,
                            lb_after,
                            now - head.arrival,
                            head.duration,
                        )
                    } else {
                        let r = crate::reward::denial_penalty(&self.cfg, &self.cluster.vms()[i]);
                        self.advance(Advance::One);
                        r
                    }
                }
            },
            Action::Wait => {
                let lazy = self.queue.front().is_some_and(|head| self.cluster.any_feasible(head));
                if lazy {
                    self.advance(Advance::One);
                    self.cfg.lazy_wait_penalty
                } else {
                    self.advance(Advance::Auto);
                    0.0
                }
            }
        };

        self.total_reward += reward as f64;
        if self.outstanding == 0 {
            // Fast-forward so all completions are registered (for
            // workflow makespans), then finish.
            while self.cluster.running_count() > 0 {
                self.advance(Advance::Next);
            }
            self.done = true;
        }
        if self.decisions >= self.cfg.max_decisions && !self.done {
            self.done = true;
            self.truncated = true;
        }
        self.telemetry.observe("sim/queue_depth", self.queue.len() as f64);
        if self.done {
            self.record_episode_telemetry();
        }
        StepOutcome { reward, done: self.done, placed }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn metrics(&self) -> EpisodeMetrics {
        // Unplaced = everything never recorded: still queued/blocked tasks
        // plus admission-rejected ones (matching the flat env's accounting).
        let unplaced = self.tasks.len() - self.records.len();
        compute_metrics(
            &self.records,
            &self.vm_specs,
            &self.cfg.resource_weights,
            unplaced,
            self.total_reward,
        )
    }

    fn action_mask_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.resize(self.dims.action_dim(), false);
        out[self.dims.max_vms] = true;
        if let Some(head) = self.queue.front() {
            for (i, vm) in self.cluster.vms().iter().enumerate() {
                if vm.can_fit(head) {
                    out[i] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_workloads::workflow::DagTask;

    fn dims() -> EnvDims {
        EnvDims::new(2, 8, 64.0, 4)
    }

    fn env() -> DagCloudEnv {
        DagCloudEnv::new(
            dims(),
            vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            EnvConfig::default(),
        )
    }

    fn task(id: u64, vcpus: u32, dur: u64, deps: &[u64]) -> DagTask {
        DagTask {
            spec: TaskSpec { id, arrival: 0, vcpus, mem_gb: 1.0, duration: dur },
            deps: deps.to_vec(),
        }
    }

    /// A diamond: 0 → {1, 2} → 3.
    fn diamond() -> Workflow {
        Workflow {
            tasks: vec![
                task(0, 1, 10, &[]),
                task(1, 1, 5, &[0]),
                task(2, 1, 8, &[0]),
                task(3, 1, 3, &[1, 2]),
            ],
            submit: 0,
        }
    }

    #[test]
    fn only_roots_ready_initially() {
        let mut e = env();
        e.reset(vec![diamond()]);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.head_task().unwrap().id, 0);
    }

    #[test]
    fn dependents_release_only_after_completion() {
        let mut e = env();
        e.reset(vec![diamond()]);
        e.step(Action::Vm(0)); // place task 0 at t=0, ends t=10
        assert_eq!(e.queue_len(), 0);
        // Nothing ready: wait fast-forwards to the completion at t=10.
        e.step(Action::Wait);
        assert_eq!(e.now(), 10);
        assert_eq!(e.queue_len(), 2); // tasks 1 and 2 ready
                                      // Their readiness time is the unlock time.
        assert_eq!(e.head_task().unwrap().arrival, 10);
    }

    #[test]
    fn full_diamond_executes_in_dependency_order() {
        let mut e = env();
        e.reset(vec![diamond()]);
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert!(e.is_done() && !e.is_truncated());
        assert_eq!(e.records().len(), 4);
        // Task 3 starts only after both 1 and 2 finish (t = 10 + max(5,8)).
        let rec3 = e.records().iter().find(|r| r.task_id == 3).unwrap();
        assert_eq!(rec3.start, 18);
        // Workflow makespan = 10 + 8 + 3 = 21 = critical path (no contention).
        assert_eq!(e.workflow_makespans(), vec![Some(21)]);
        assert_eq!(diamond().critical_path(), 21);
    }

    #[test]
    fn parallel_siblings_run_concurrently() {
        let mut e = env();
        e.reset(vec![diamond()]);
        e.step(Action::Vm(0));
        e.step(Action::Wait); // to t=10
        e.step(Action::Vm(0)); // task 1 on VM 0
        e.step(Action::Vm(1)); // task 2 on VM 1 — same step, both at t=10
        let starts: Vec<u64> = e
            .records()
            .iter()
            .filter(|r| r.task_id == 1 || r.task_id == 2)
            .map(|r| r.start)
            .collect();
        assert_eq!(starts, vec![10, 10]);
    }

    #[test]
    fn late_submission_delays_roots() {
        let mut wf = diamond();
        wf.submit = 50;
        for t in &mut wf.tasks {
            t.spec.arrival = 50;
        }
        let mut e = env();
        e.reset(vec![wf]);
        // Reset fast-forwards to the first submission.
        assert_eq!(e.now(), 50);
        assert_eq!(e.queue_len(), 1);
    }

    #[test]
    fn inadmissible_task_drops_descendants() {
        let wf = Workflow {
            tasks: vec![
                task(0, 1, 5, &[]),
                // Too big for any VM (max 8 vCPUs):
                task(1, 32, 5, &[0]),
                task(2, 1, 5, &[1]), // descendant of the dropped task
                task(3, 1, 5, &[0]), // unaffected branch
            ],
            submit: 0,
        };
        let mut e = env();
        e.reset(vec![wf]);
        assert_eq!(e.rejected(), 2);
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert!(e.is_done() && !e.is_truncated());
        assert_eq!(e.records().len(), 2); // tasks 0 and 3 only
    }

    #[test]
    fn two_workflows_interleave() {
        let mut wf2 = diamond();
        wf2.submit = 5;
        for t in &mut wf2.tasks {
            t.spec.arrival = 5;
        }
        let mut e = env();
        e.reset(vec![diamond(), wf2]);
        let mut guard = 0;
        while !e.is_done() && guard < 2000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            e.step(a);
            guard += 1;
        }
        assert_eq!(e.records().len(), 8);
        let spans = e.workflow_makespans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.is_some()));
        // Each workflow's span is at least its critical path.
        for s in spans.into_iter().flatten() {
            assert!(s >= 21);
        }
    }

    #[test]
    fn rewards_and_metrics_consistent() {
        let mut e = env();
        e.reset(vec![diamond()]);
        let mut total = 0.0f64;
        let mut guard = 0;
        while !e.is_done() && guard < 1000 {
            let a = e.first_fit_action().unwrap_or(Action::Wait);
            total += e.step(a).reward as f64;
            guard += 1;
        }
        let m = e.metrics();
        assert!((m.total_reward - total).abs() < 1e-9);
        assert_eq!(m.tasks_placed, 4);
        assert!(m.avg_response >= 3.0);
    }

    #[test]
    fn observation_shape_matches_dims() {
        let mut e = env();
        e.reset(vec![diamond()]);
        assert_eq!(e.observe().len(), dims().state_dim());
    }
}
