//! Episode metrics: the four evaluation measures of Sec. 5.1
//! (response time, makespan, utilization, load balancing).

use crate::vm::VmSpec;
use crate::RESOURCE_DIMS;

/// Placement record of one completed-or-running task, kept by the
/// environment for exact post-hoc metric computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Task id.
    pub task_id: u64,
    /// VM it ran on.
    pub vm: usize,
    /// vCPUs occupied.
    pub vcpus: u32,
    /// Memory occupied (GiB).
    pub mem_gb: f32,
    /// Arrival step.
    pub arrival: u64,
    /// Placement step.
    pub start: u64,
    /// Execution time (steps).
    pub duration: u64,
}

impl TaskRecord {
    /// Waiting time `j^wait = start - arrival`.
    pub fn wait(&self) -> u64 {
        self.start - self.arrival
    }

    /// Response time `j^res = j^wait + j^run` (Eq. 3).
    pub fn response(&self) -> u64 {
        self.wait() + self.duration
    }

    /// Completion step.
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }
}

/// Aggregate metrics of one finished episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeMetrics {
    /// Mean response time over placed tasks (Eq. 23), in steps.
    pub avg_response: f64,
    /// Completion time of the last task (steps from episode start).
    pub makespan: f64,
    /// Time- and VM-averaged weighted resource utilization (Eq. 24), `[0,1]`.
    pub avg_utilization: f64,
    /// Time-averaged load-balance measure (Eq. 25); lower is better.
    pub avg_load_balance: f64,
    /// Number of tasks placed.
    pub tasks_placed: usize,
    /// Number of tasks left unplaced (nonzero only on truncated episodes).
    pub tasks_unplaced: usize,
    /// Sum of rewards collected by the agent during the episode.
    pub total_reward: f64,
}

/// Computes the episode metrics from placement records.
///
/// Utilization (Eq. 24) is computed exactly as the integral of per-VM
/// utilization over `[0, makespan]`:
/// `Σ_i w_i · Σ_m Σ_{tasks on m} demand_i/cap_{m,i} · duration / (|M|·T)`.
///
/// Load balance (Eq. 25) is the exact time average of `LoadBal(t)`
/// obtained by sweeping placement/completion events.
pub fn compute_metrics(
    records: &[TaskRecord],
    vms: &[VmSpec],
    weights: &[f32; RESOURCE_DIMS],
    tasks_unplaced: usize,
    total_reward: f64,
) -> EpisodeMetrics {
    if records.is_empty() {
        return EpisodeMetrics {
            avg_response: 0.0,
            makespan: 0.0,
            avg_utilization: 0.0,
            avg_load_balance: 0.0,
            tasks_placed: 0,
            tasks_unplaced,
            total_reward,
        };
    }

    let avg_response =
        records.iter().map(|r| r.response() as f64).sum::<f64>() / records.len() as f64;
    let makespan = records.iter().map(TaskRecord::end).max().expect("non-empty") as f64;

    // Exact utilization integral.
    let mut util = 0.0f64;
    if makespan > 0.0 {
        for r in records {
            let spec = &vms[r.vm];
            let cpu_frac = r.vcpus as f64 / spec.vcpus as f64;
            let mem_frac = r.mem_gb as f64 / spec.mem_gb as f64;
            util +=
                (weights[0] as f64 * cpu_frac + weights[1] as f64 * mem_frac) * r.duration as f64;
        }
        util /= vms.len() as f64 * makespan;
    }

    EpisodeMetrics {
        avg_response,
        makespan,
        avg_utilization: util,
        avg_load_balance: time_averaged_load_balance(records, vms, weights, makespan),
        tasks_placed: records.len(),
        tasks_unplaced,
        total_reward,
    }
}

/// Event-sweep computation of `(1/T)·∫ LoadBal(t) dt` over `[0, T]`.
fn time_averaged_load_balance(
    records: &[TaskRecord],
    vms: &[VmSpec],
    weights: &[f32; RESOURCE_DIMS],
    makespan: f64,
) -> f64 {
    if makespan <= 0.0 {
        return 0.0;
    }
    // Events: (time, vm, ±demand).
    let mut events: Vec<(u64, usize, i64, f64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        events.push((r.start, r.vm, r.vcpus as i64, r.mem_gb as f64));
        events.push((r.end(), r.vm, -(r.vcpus as i64), -(r.mem_gb as f64)));
    }
    events.sort_by_key(|e| e.0);

    let n = vms.len() as f64;
    let mut used_cpu = vec![0i64; vms.len()];
    let mut used_mem = vec![0.0f64; vms.len()];
    let load_bal = |used_cpu: &[i64], used_mem: &[f64]| -> f64 {
        let mut total = 0.0;
        for (res, w) in weights.iter().enumerate() {
            // Two passes over the (pure) per-VM load recomputed in the same
            // `m` order an intermediate vec would have been summed in, so the
            // result is bit-for-bit what the collected form produced.
            let load_of = |m: usize| match res {
                0 => 1.0 - used_cpu[m] as f64 / vms[m].vcpus as f64,
                _ => 1.0 - used_mem[m] / vms[m].mem_gb as f64,
            };
            let avg = (0..vms.len()).map(load_of).sum::<f64>() / n;
            let var = (0..vms.len())
                .map(|m| {
                    let d = load_of(m) - avg;
                    d * d
                })
                .sum::<f64>()
                / n;
            total += *w as f64 * var.sqrt();
        }
        total
    };

    let mut integral = 0.0f64;
    let mut prev_t = 0u64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        if t > prev_t {
            integral += load_bal(&used_cpu, &used_mem) * (t.min(makespan as u64) - prev_t) as f64;
            prev_t = t;
        }
        // Apply all events at time t before the next interval.
        while i < events.len() && events[i].0 == t {
            let (_, vm, dc, dm) = events[i];
            used_cpu[vm] += dc;
            used_mem[vm] += dm;
            i += 1;
        }
    }
    integral / makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vm: usize, vcpus: u32, mem: f32, arrival: u64, start: u64, dur: u64) -> TaskRecord {
        TaskRecord { task_id: 0, vm, vcpus, mem_gb: mem, arrival, start, duration: dur }
    }

    const W: [f32; 2] = [0.5, 0.5];

    #[test]
    fn response_and_makespan_hand_values() {
        let vms = [VmSpec::new(4, 16.0), VmSpec::new(4, 16.0)];
        let records = [rec(0, 2, 8.0, 0, 0, 10), rec(1, 2, 8.0, 0, 5, 10)];
        let m = compute_metrics(&records, &vms, &W, 0, 0.0);
        // responses: 10 and 15 → mean 12.5; makespan = 15.
        assert_eq!(m.avg_response, 12.5);
        assert_eq!(m.makespan, 15.0);
        assert_eq!(m.tasks_placed, 2);
    }

    #[test]
    fn utilization_full_single_vm() {
        // One VM fully used for the whole makespan → utilization 1.
        let vms = [VmSpec::new(4, 16.0)];
        let records = [rec(0, 4, 16.0, 0, 0, 10)];
        let m = compute_metrics(&records, &vms, &W, 0, 0.0);
        assert!((m.avg_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half_time_half_capacity() {
        // VM at 50% capacity for half the makespan → 0.25 average.
        let vms = [VmSpec::new(4, 16.0)];
        let records = [rec(0, 2, 8.0, 0, 0, 5), rec(0, 4, 16.0, 0, 5, 5)];
        let m = compute_metrics(&records, &vms, &W, 0, 0.0);
        assert!((m.avg_utilization - 0.75).abs() < 1e-9, "{}", m.avg_utilization);
    }

    #[test]
    fn load_balance_zero_for_symmetric_placement() {
        let vms = [VmSpec::new(4, 16.0), VmSpec::new(4, 16.0)];
        let records = [rec(0, 2, 8.0, 0, 0, 10), rec(1, 2, 8.0, 0, 0, 10)];
        let m = compute_metrics(&records, &vms, &W, 0, 0.0);
        assert!(m.avg_load_balance.abs() < 1e-9);
    }

    #[test]
    fn load_balance_positive_for_skewed_placement() {
        let vms = [VmSpec::new(4, 16.0), VmSpec::new(4, 16.0)];
        let records = [rec(0, 4, 16.0, 0, 0, 10)];
        let m = compute_metrics(&records, &vms, &W, 0, 0.0);
        // loads = [0, 1] both resources → std = 0.5 → weighted sum = 0.5,
        // constant over the makespan.
        assert!((m.avg_load_balance - 0.5).abs() < 1e-9, "{}", m.avg_load_balance);
    }

    #[test]
    fn empty_records_safe() {
        let vms = [VmSpec::new(4, 16.0)];
        let m = compute_metrics(&[], &vms, &W, 3, -7.0);
        assert_eq!(m.tasks_placed, 0);
        assert_eq!(m.tasks_unplaced, 3);
        assert_eq!(m.total_reward, -7.0);
        assert_eq!(m.avg_response, 0.0);
    }

    #[test]
    fn wait_time_included_in_response() {
        let r = rec(0, 1, 1.0, 10, 25, 5);
        assert_eq!(r.wait(), 15);
        assert_eq!(r.response(), 20);
        assert_eq!(r.end(), 30);
    }
}
