//! The reward function of Sec. 4.2 (Eqs. 6–9), shared by the flat
//! [`crate::CloudEnv`] and the workflow [`crate::dag::DagCloudEnv`].

use crate::config::EnvConfig;
use crate::vm::Vm;

/// Reward for a successful placement (Eq. 6):
/// `ρ·exp(run/res) + (1−ρ)·R_load` with
/// `R_load = 1` if the load balance improved, else the (small positive)
/// degradation `Load_c` (Eq. 8).
pub fn placement_reward(
    cfg: &EnvConfig,
    load_bal_before: f32,
    load_bal_after: f32,
    wait_steps: u64,
    run_steps: u64,
) -> f32 {
    let run = run_steps as f32;
    let res = wait_steps as f32 + run;
    let r_res = (run / res).exp();
    let load_c = load_bal_after - load_bal_before;
    let r_load = if load_c <= 0.0 { 1.0 } else { load_c };
    cfg.rho * r_res + (1.0 - cfg.rho) * r_load
}

/// Penalty for attempting an infeasible placement on `vm` (Eq. 9):
/// `−exp(Σ w_i · util_i(vm))`.
pub fn denial_penalty(cfg: &EnvConfig, vm: &Vm) -> f32 {
    let weighted: f32 =
        cfg.resource_weights.iter().enumerate().map(|(r, w)| w * vm.utilization(r)).sum();
    -weighted.exp()
}

/// Penalty for choosing a VM slot that does not exist (treated as a fully
/// utilized machine).
pub fn void_slot_penalty() -> f32 {
    -std::f32::consts::E
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmSpec;
    use pfrl_workloads::TaskSpec;

    fn cfg() -> EnvConfig {
        EnvConfig::default()
    }

    #[test]
    fn immediate_placement_maximizes_response_component() {
        // No wait: r_res = e^1; long wait: r_res → e^0 = 1.
        let fast = placement_reward(&cfg(), 0.0, 0.0, 0, 10);
        let slow = placement_reward(&cfg(), 0.0, 0.0, 1000, 10);
        assert!(fast > slow);
        // Both still positive (r_res ≥ 1, r_load ∈ (0, 1]).
        assert!(slow > 0.0);
    }

    #[test]
    fn balanced_placement_earns_full_load_reward() {
        let improved = placement_reward(&cfg(), 0.5, 0.3, 0, 10);
        let worsened = placement_reward(&cfg(), 0.3, 0.5, 0, 10);
        // Improvement gives R_load = 1; degradation gives Load_c = 0.2.
        assert!((improved - worsened - 0.5 * (1.0 - 0.2)).abs() < 1e-5);
    }

    #[test]
    fn rho_extremes_isolate_components() {
        let only_res = EnvConfig { rho: 1.0, ..cfg() };
        let r = placement_reward(&only_res, 0.0, 9.0, 0, 10);
        assert!((r - std::f32::consts::E).abs() < 1e-5);
        let only_load = EnvConfig { rho: 0.0, ..cfg() };
        let r = placement_reward(&only_load, 0.5, 0.2, 0, 10);
        assert!((r - 1.0).abs() < 1e-6);
    }

    #[test]
    fn denial_penalty_grows_with_utilization() {
        let mut vm = Vm::new(VmSpec::new(4, 16.0));
        let idle = denial_penalty(&cfg(), &vm);
        assert!((idle + 1.0).abs() < 1e-6, "idle VM: -e^0 = -1");
        vm.place(&TaskSpec { id: 0, arrival: 0, vcpus: 4, mem_gb: 16.0, duration: 5 }, 0);
        let full = denial_penalty(&cfg(), &vm);
        assert!((full + std::f32::consts::E).abs() < 1e-5, "full VM: -e^1");
        assert!(full < idle);
    }

    #[test]
    fn void_penalty_is_floor() {
        assert_eq!(void_slot_penalty(), -std::f32::consts::E);
    }
}
