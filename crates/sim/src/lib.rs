//! Discrete-time cloud task-scheduling simulator and RL environment —
//! the environment modeling of PFRL-DM Sec. 4.1–4.2.
//!
//! Time is driven by a discrete-event core (see [`events`]): a typed
//! calendar of arrival/completion/release events with deterministic
//! tie-breaking, bit-identical in rewards and metrics to the stepped
//! reference engine it replaced (selectable via
//! [`CloudEnv::set_time_engine`] for the equivalence gate and perf
//! baselines).
//!
//! One simulation step is one minute (matching `pfrl-workloads`). An episode
//! replays a task trace against a cluster of heterogeneous VMs; the agent
//! repeatedly assigns the head of the waiting queue to a VM (or waits), and
//! is rewarded per Eqs. (6)–(9) of the paper:
//!
//! * successful placement: `ρ·exp(j_run/j_res) + (1-ρ)·R_load`;
//! * infeasible placement attempt: `-exp(Σ w_i·util_i)` of the chosen VM;
//! * waiting although a feasible VM exists: a constant penalty.
//!
//! The observation is the padded triple `(S^VM, S^vCPU, S^Queue)` of Eq. (1):
//! remaining VM capacity, per-vCPU completion progress of running tasks (the
//! paper's substitute for exposing task durations), and the resource demands
//! of the first `Q` queued tasks.
//!
//! # Example
//!
//! ```
//! use pfrl_sim::{Action, CloudEnv, EnvConfig, EnvDims, VmSpec};
//! use pfrl_workloads::DatasetId;
//!
//! let dims = EnvDims::new(3, 8, 64.0, 5);
//! let vms = vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)];
//! let tasks = DatasetId::K8s.model().sample(20, 1);
//! let mut env = CloudEnv::new(dims, vms, EnvConfig::default());
//! env.reset(tasks);
//! let mut steps = 0;
//! while !env.is_done() && steps < 10_000 {
//!     let state = env.observe();
//!     assert_eq!(state.len(), env.dims().state_dim());
//!     // trivial policy: first VM that fits, else wait
//!     let action = env.first_fit_action().unwrap_or(Action::Wait);
//!     env.step(action);
//!     steps += 1;
//! }
//! assert!(env.is_done());
//! let m = env.metrics();
//! assert!(m.avg_response >= 1.0);
//! ```

pub mod baselines;
pub mod cluster;
pub mod config;
pub mod dag;
pub mod env;
pub mod events;
pub mod metrics;
pub mod objectives;
pub mod reward;
pub mod state;
pub mod vm;

pub use baselines::{run_blind_random, run_heuristic, HeuristicPolicy};
pub use cluster::Cluster;
pub use config::{EnvConfig, EnvDims};
pub use dag::DagCloudEnv;
pub use env::{Action, CloudEnv, StepOutcome};
pub use events::{Event, EventCalendar, EventKind, SimClock, TimeDriven, TimeEngine};
pub use metrics::{EpisodeMetrics, TaskRecord};
pub use vm::{Vm, VmSpec};

/// Number of resource dimensions modeled (vCPU, memory) — the paper's `d`.
pub const RESOURCE_DIMS: usize = 2;

/// The environment interface the RL agents drive. Implemented by the flat
/// [`CloudEnv`] (the paper's setting) and by [`dag::DagCloudEnv`]
/// (dependency-aware workflows — the paper's stated future work).
pub trait SchedulingEnv {
    /// Shared observation/action dimensioning.
    fn dims(&self) -> &EnvDims;
    /// Current observation (Eq. 1 layout) into a reusable buffer — the
    /// required form, so every implementation has an allocation-free
    /// per-decision path by construction.
    fn observe_into(&self, out: &mut Vec<f32>);
    /// Allocating convenience wrapper over
    /// [`SchedulingEnv::observe_into`] (tests, diagnostics — never the hot
    /// path).
    fn observe(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.observe_into(&mut out);
        out
    }
    /// Executes one agent decision.
    fn step(&mut self, action: Action) -> StepOutcome;
    /// Whether the episode has ended.
    fn is_done(&self) -> bool;
    /// Episode metrics so far.
    fn metrics(&self) -> EpisodeMetrics;
    /// Feasibility mask over the action head (`mask[max_vms]` = wait,
    /// always true) into a reusable buffer — the required form, like
    /// [`SchedulingEnv::observe_into`]. Used by masked-policy agents (an
    /// ablation; the paper itself relies on penalties instead).
    fn action_mask_into(&self, out: &mut Vec<bool>);
    /// Allocating convenience wrapper over
    /// [`SchedulingEnv::action_mask_into`].
    fn action_mask(&self) -> Vec<bool> {
        let mut out = Vec::new();
        self.action_mask_into(&mut out);
        out
    }
}

impl SchedulingEnv for CloudEnv {
    fn dims(&self) -> &EnvDims {
        CloudEnv::dims(self)
    }
    fn observe_into(&self, out: &mut Vec<f32>) {
        CloudEnv::observe_into(self, out)
    }
    fn step(&mut self, action: Action) -> StepOutcome {
        CloudEnv::step(self, action)
    }
    fn is_done(&self) -> bool {
        CloudEnv::is_done(self)
    }
    fn metrics(&self) -> EpisodeMetrics {
        CloudEnv::metrics(self)
    }
    fn action_mask_into(&self, out: &mut Vec<bool>) {
        CloudEnv::action_mask_into(self, out)
    }
}
