//! Environment dimensioning and reward configuration.

use crate::RESOURCE_DIMS;

/// Fixed observation/action dimensions shared by every client in a
/// federation (the paper requires clients to "have similar definitions of
/// the RL environments"; concretely the network shapes must agree for the
/// parameters to be aggregable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvDims {
    /// Maximum number of VMs `L`; clusters with fewer pad with *void* slots.
    pub max_vms: usize,
    /// Maximum vCPUs per VM `U^vcpu`.
    pub max_vcpus: u32,
    /// Maximum memory per VM `U^mem` (GiB), used for normalization.
    pub max_mem_gb: f32,
    /// Number of waiting-queue slots `Q` visible in the observation.
    pub queue_slots: usize,
}

impl EnvDims {
    /// Creates dims; panics on degenerate values.
    pub fn new(max_vms: usize, max_vcpus: u32, max_mem_gb: f32, queue_slots: usize) -> Self {
        assert!(max_vms >= 1, "need at least one VM slot");
        assert!(max_vcpus >= 1, "need at least one vCPU slot");
        assert!(max_mem_gb > 0.0, "max memory must be positive");
        assert!(queue_slots >= 1, "need at least one queue slot");
        Self { max_vms, max_vcpus, max_mem_gb, queue_slots }
    }

    /// Flattened state vector length:
    /// `L·d` (remaining capacity) + `L·U` (vCPU progress) + `Q·d` (queue).
    pub fn state_dim(&self) -> usize {
        self.max_vms * RESOURCE_DIMS
            + self.max_vms * self.max_vcpus as usize
            + self.queue_slots * RESOURCE_DIMS
    }

    /// Action count: one per VM slot plus the wait action (`-1` in Eq. (2)).
    pub fn action_dim(&self) -> usize {
        self.max_vms + 1
    }

    /// The dims used by the paper's 10-client evaluation (Table 3): up to 8
    /// VMs of up to 64 vCPUs / 512 GiB, 5 visible queue slots.
    pub fn paper_table3() -> Self {
        Self::new(8, 64, 512.0, 5)
    }

    /// The dims used by the 4-client exploratory studies (Table 2): up to 5
    /// VMs of up to 32 vCPUs / 256 GiB.
    pub fn paper_table2() -> Self {
        Self::new(5, 32, 256.0, 5)
    }
}

/// Reward shaping and simulation options (Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvConfig {
    /// `ρ`: weight of the response-time reward vs the load-balance reward.
    pub rho: f32,
    /// `w_i`: per-resource weights in the load-balance measure and the
    /// denial penalty; must sum to 1.
    pub resource_weights: [f32; RESOURCE_DIMS],
    /// Constant penalty for waiting while a feasible VM exists
    /// ("a larger negative constant" in the paper).
    pub lazy_wait_penalty: f32,
    /// Safety cap on agent decisions per episode (guards untrained policies
    /// against unbounded episodes).
    pub max_decisions: usize,
    /// When the head task fits nowhere, jump time to the next completion
    /// event instead of ticking minute by minute (no decision exists either
    /// way; this only compresses dead time).
    pub fast_forward: bool,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            rho: 0.5,
            resource_weights: [0.5, 0.5],
            lazy_wait_penalty: -5.0,
            max_decisions: 200_000,
            fast_forward: true,
        }
    }
}

impl EnvConfig {
    /// Validates invariants; called by the environment constructor.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.rho), "rho out of [0,1]");
        let sum: f32 = self.resource_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "resource weights must sum to 1, got {sum}");
        assert!(self.lazy_wait_penalty <= 0.0, "lazy wait penalty must be non-positive");
        assert!(self.max_decisions > 0, "max_decisions must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_and_action_dims() {
        let d = EnvDims::new(8, 64, 512.0, 5);
        assert_eq!(d.state_dim(), 8 * 2 + 8 * 64 + 5 * 2);
        assert_eq!(d.action_dim(), 9);
    }

    #[test]
    fn paper_presets() {
        assert_eq!(EnvDims::paper_table3().max_vms, 8);
        assert_eq!(EnvDims::paper_table2().max_vcpus, 32);
        assert!(EnvDims::paper_table3().state_dim() > EnvDims::paper_table2().state_dim());
    }

    #[test]
    fn default_config_valid() {
        EnvConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_rejected() {
        let cfg = EnvConfig { resource_weights: [0.9, 0.9], ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn bad_rho_rejected() {
        let cfg = EnvConfig { rho: 1.5, ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one VM slot")]
    fn zero_vms_rejected() {
        let _ = EnvDims::new(0, 1, 1.0, 1);
    }
}
