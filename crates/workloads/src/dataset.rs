//! The ten dataset presets (Sec. 3 of the paper).
//!
//! Each preset is a [`WorkloadModel`] whose parameters encode the
//! qualitative fingerprint of the corresponding real trace:
//!
//! * **Google 2011** — huge volume of small short tasks, strongly diurnal;
//! * **Alibaba 2017/2018** — mixed batch+service, larger containers, bursty
//!   submission waves in 2018;
//! * **HPC-KS/HF/WZ** — few large long jobs, nearly flat submission rate;
//! * **KVM-2019/2020 (Chameleon)** — small VM-shaped requests that live for
//!   hours (educational projects);
//! * **CERIT-SC** — mixed scientific workload with a long-job tail;
//! * **K8S** — container-native: tiny, short, very bursty.
//!
//! The absolute values are synthetic (see DESIGN.md, Substitutions); the
//! *relative* heterogeneity across datasets is the property the PFRL-DM
//! experiments depend on, and is preserved by construction.

use crate::arrival::ArrivalProfile;
use crate::duration::DurationModel;
use crate::model::WorkloadModel;
use crate::resources::{class, ResourceModel};

/// Identifier of one of the paper's ten workload datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// Google 2011 cluster trace.
    Google,
    /// Alibaba cluster trace, 2017 release.
    Alibaba2017,
    /// Alibaba cluster trace, 2018 release.
    Alibaba2018,
    /// HPC cloud service center "KS".
    HpcKs,
    /// HPC cloud service center "HF".
    HpcHf,
    /// HPC cloud service center "WZ".
    HpcWz,
    /// Chameleon OpenStack KVM trace, 2019.
    Kvm2019,
    /// Chameleon OpenStack KVM trace, 2020.
    Kvm2020,
    /// CERIT Scientific Cloud trace.
    CeritSc,
    /// CERIT Kubernetes trace.
    K8s,
}

impl DatasetId {
    /// All ten datasets in the paper's Table 3 client order.
    pub const ALL: [DatasetId; 10] = [
        DatasetId::Google,
        DatasetId::Alibaba2017,
        DatasetId::Alibaba2018,
        DatasetId::HpcKs,
        DatasetId::HpcHf,
        DatasetId::HpcWz,
        DatasetId::Kvm2019,
        DatasetId::Kvm2020,
        DatasetId::CeritSc,
        DatasetId::K8s,
    ];

    /// The dataset's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Google => "Google",
            DatasetId::Alibaba2017 => "Alibaba-2017",
            DatasetId::Alibaba2018 => "Alibaba-2018",
            DatasetId::HpcKs => "HPC-KS",
            DatasetId::HpcHf => "HPC-HF",
            DatasetId::HpcWz => "HPC-WZ",
            DatasetId::Kvm2019 => "KVM-2019",
            DatasetId::Kvm2020 => "KVM-2020",
            DatasetId::CeritSc => "CERIT-SC",
            DatasetId::K8s => "K8S",
        }
    }

    /// The generative model for this dataset.
    pub fn model(self) -> WorkloadModel {
        match self {
            DatasetId::Google => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::diurnal(20.0, 80.0, 4),
                resources: ResourceModel::new(vec![
                    class(1, 0.5, 2.0, 0.45),
                    class(2, 1.0, 4.0, 0.30),
                    class(4, 2.0, 8.0, 0.20),
                    class(8, 4.0, 16.0, 0.05),
                ]),
                duration: DurationModel::lognormal((8.0f64).ln(), 1.2, 1, 480),
            },
            DatasetId::Alibaba2017 => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::diurnal(15.0, 60.0, 3),
                resources: ResourceModel::new(vec![
                    class(1, 1.0, 4.0, 0.30),
                    class(2, 2.0, 8.0, 0.30),
                    class(4, 4.0, 16.0, 0.25),
                    class(8, 8.0, 32.0, 0.15),
                ]),
                duration: DurationModel::lognormal((15.0f64).ln(), 1.0, 1, 720),
            },
            DatasetId::Alibaba2018 => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::bursty(12.0, 50.0, &[1, 9, 13, 21]),
                resources: ResourceModel::new(vec![
                    class(2, 2.0, 8.0, 0.30),
                    class(4, 4.0, 16.0, 0.30),
                    class(8, 8.0, 32.0, 0.25),
                    class(16, 16.0, 64.0, 0.15),
                ]),
                duration: DurationModel::mixture(
                    DurationModel::lognormal((10.0f64).ln(), 0.8, 1, 240),
                    DurationModel::lognormal((120.0f64).ln(), 0.7, 30, 1440),
                    0.25,
                ),
            },
            DatasetId::HpcKs => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::flat(6.0),
                resources: ResourceModel::new(vec![
                    class(8, 16.0, 64.0, 0.40),
                    class(16, 32.0, 128.0, 0.30),
                    class(32, 64.0, 160.0, 0.30),
                ]),
                duration: DurationModel::lognormal((120.0f64).ln(), 0.9, 10, 1440),
            },
            DatasetId::HpcHf => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::flat(8.0),
                resources: ResourceModel::new(vec![
                    class(4, 8.0, 32.0, 0.30),
                    class(8, 32.0, 96.0, 0.40),
                    class(16, 64.0, 117.0, 0.30),
                ]),
                duration: DurationModel::lognormal((90.0f64).ln(), 1.0, 5, 1440),
            },
            DatasetId::HpcWz => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::flat(5.0),
                resources: ResourceModel::new(vec![
                    class(8, 32.0, 96.0, 0.30),
                    class(16, 64.0, 160.0, 0.40),
                    class(32, 96.0, 232.0, 0.30),
                ]),
                duration: DurationModel::mixture(
                    DurationModel::lognormal((45.0f64).ln(), 0.8, 5, 480),
                    DurationModel::lognormal((400.0f64).ln(), 0.6, 60, 2880),
                    0.30,
                ),
            },
            DatasetId::Kvm2019 => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::diurnal(3.0, 12.0, 5),
                resources: ResourceModel::new(vec![
                    class(1, 1.0, 4.0, 0.40),
                    class(2, 2.0, 8.0, 0.35),
                    class(4, 4.0, 16.0, 0.25),
                ]),
                duration: DurationModel::lognormal((180.0f64).ln(), 1.1, 10, 2880),
            },
            DatasetId::Kvm2020 => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::diurnal(4.0, 14.0, 5),
                resources: ResourceModel::new(vec![
                    class(1, 1.0, 4.0, 0.30),
                    class(2, 2.0, 8.0, 0.30),
                    class(4, 4.0, 16.0, 0.30),
                    class(8, 8.0, 32.0, 0.10),
                ]),
                duration: DurationModel::lognormal((150.0f64).ln(), 1.2, 10, 2880),
            },
            DatasetId::CeritSc => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::bursty(10.0, 35.0, &[8, 20]),
                resources: ResourceModel::new(vec![
                    class(1, 2.0, 8.0, 0.35),
                    class(2, 4.0, 16.0, 0.25),
                    class(8, 16.0, 64.0, 0.25),
                    class(16, 32.0, 117.0, 0.15),
                ]),
                duration: DurationModel::mixture(
                    DurationModel::lognormal((20.0f64).ln(), 0.9, 1, 360),
                    DurationModel::lognormal((300.0f64).ln(), 0.7, 60, 2880),
                    0.20,
                ),
            },
            DatasetId::K8s => WorkloadModel {
                name: self.name(),
                arrival: ArrivalProfile::bursty(25.0, 90.0, &[9, 10, 14, 15]),
                resources: ResourceModel::new(vec![
                    class(1, 0.25, 2.0, 0.60),
                    class(2, 1.0, 4.0, 0.30),
                    class(4, 2.0, 8.0, 0.10),
                ]),
                duration: DurationModel::lognormal((5.0f64).ln(), 1.0, 1, 240),
            },
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfrl_stats::descriptive::mean;

    #[test]
    fn all_models_produce_valid_tasks() {
        for id in DatasetId::ALL {
            let tasks = id.model().sample(300, 7);
            assert_eq!(tasks.len(), 300, "{id}");
            assert!(tasks.iter().all(|t| t.is_valid()), "{id}");
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = DatasetId::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    /// The heterogeneity property the paper's experiments depend on:
    /// datasets differ markedly in mean demand and mean duration.
    #[test]
    fn datasets_are_mutually_heterogeneous() {
        let stats: Vec<(f64, f64)> = DatasetId::ALL
            .iter()
            .map(|id| {
                let tasks = id.model().sample(2000, 11);
                let cpu = mean(&tasks.iter().map(|t| t.vcpus as f64).collect::<Vec<_>>());
                let dur = mean(&tasks.iter().map(|t| t.duration as f64).collect::<Vec<_>>());
                (cpu, dur)
            })
            .collect();
        // K8S has the smallest mean CPU demand; HPC-WZ the largest.
        let k8s = stats[9].0;
        let hpcwz = stats[5].0;
        assert!(hpcwz > 5.0 * k8s, "HPC-WZ {hpcwz} vs K8S {k8s}");
        // Google tasks are much shorter than KVM VMs.
        let google_dur = stats[0].1;
        let kvm_dur = stats[6].1;
        assert!(kvm_dur > 3.0 * google_dur, "KVM {kvm_dur} vs Google {google_dur}");
    }

    #[test]
    fn hpc_arrivals_flat_k8s_bursty() {
        let hpc = DatasetId::HpcKs.model().arrival;
        let spread = hpc.hourly_rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - hpc.hourly_rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(spread, 0.0);
        let k8s = DatasetId::K8s.model().arrival;
        assert!(k8s.hourly_rates[9] > 3.0 * k8s.hourly_rates[0]);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DatasetId::Alibaba2017.to_string(), "Alibaba-2017");
    }
}
