//! Machine specifications of the source clusters (the paper's Table 1).
//!
//! These rows are descriptive metadata used by the Table 1 reproduction and
//! as the reference points from which the client VM presets (Tables 2–3)
//! were drawn; the simulator itself takes explicit VM lists.

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineRow {
    /// Source trace the machines belong to.
    pub source: &'static str,
    /// CPUs per node, `(min, max)`.
    pub cpus: (u32, u32),
    /// Memory per node in GiB, `(min, max)`.
    pub mem_gib: (u32, u32),
    /// Number of nodes.
    pub nodes: u32,
    /// Platform annotation from the paper (empty when unlisted).
    pub platform: &'static str,
}

/// The fifteen machine-specification rows of Table 1.
pub fn machine_table() -> Vec<MachineRow> {
    vec![
        MachineRow { source: "Google", cpus: (20, 24), mem_gib: (7, 62), nodes: 6, platform: "" },
        MachineRow {
            source: "Alibaba-2017",
            cpus: (48, 48),
            mem_gib: (94, 127),
            nodes: 1551,
            platform: "OpenStack",
        },
        MachineRow {
            source: "Alibaba-2018",
            cpus: (40, 40),
            mem_gib: (62, 63),
            nodes: 101,
            platform: "",
        },
        MachineRow {
            source: "K8S",
            cpus: (128, 128),
            mem_gib: (512, 512),
            nodes: 20,
            platform: "Kubernetes",
        },
        MachineRow { source: "KVM-2019", cpus: (8, 8), mem_gib: (64, 64), nodes: 18, platform: "" },
        MachineRow {
            source: "CERIT-SC",
            cpus: (8, 8),
            mem_gib: (117, 117),
            nodes: 33,
            platform: "Grid-workers",
        },
        MachineRow {
            source: "CERIT-SC",
            cpus: (16, 16),
            mem_gib: (117, 117),
            nodes: 113,
            platform: "Grid-workers",
        },
        MachineRow {
            source: "CERIT-SC",
            cpus: (40, 40),
            mem_gib: (232, 488),
            nodes: 36,
            platform: "Grid-workers",
        },
        MachineRow {
            source: "CERIT-SC",
            cpus: (40, 40),
            mem_gib: (944, 990),
            nodes: 28,
            platform: "Grid-workers",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (64, 64),
            mem_gib: (512, 512),
            nodes: 798,
            platform: "Alibaba PAI",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (96, 96),
            mem_gib: (512, 512),
            nodes: 497,
            platform: "Alibaba PAI",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (96, 96),
            mem_gib: (512, 512),
            nodes: 280,
            platform: "Alibaba PAI",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (96, 96),
            mem_gib: (384, 384),
            nodes: 135,
            platform: "Alibaba PAI",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (96, 96),
            mem_gib: (384, 512),
            nodes: 104,
            platform: "Alibaba PAI",
        },
        MachineRow {
            source: "Alibaba PAI",
            cpus: (96, 96),
            mem_gib: (512, 512),
            nodes: 83,
            platform: "Alibaba PAI",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_rows_as_in_paper() {
        assert_eq!(machine_table().len(), 15);
    }

    #[test]
    fn rows_well_formed() {
        for r in machine_table() {
            assert!(r.cpus.0 >= 1 && r.cpus.0 <= r.cpus.1, "{r:?}");
            assert!(r.mem_gib.0 >= 1 && r.mem_gib.0 <= r.mem_gib.1, "{r:?}");
            assert!(r.nodes >= 1, "{r:?}");
        }
    }

    #[test]
    fn node_counts_match_paper_totals() {
        let total: u32 = machine_table().iter().map(|r| r.nodes).sum();
        assert_eq!(
            total,
            6 + 1551 + 101 + 20 + 18 + 33 + 113 + 36 + 28 + 798 + 497 + 280 + 135 + 104 + 83
        );
    }
}
