//! The task record produced by every workload generator.

/// One schedulable task, as known to the scheduler upon arrival.
///
/// Per the paper (Sec. 4.1), resource demands are known on arrival; the
/// duration is *not* exposed to the agent (the simulator uses it to advance
/// vCPU progress, which the agent observes instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Monotonically increasing id within a sampled task set.
    pub id: u64,
    /// Arrival time in simulation steps (minutes).
    pub arrival: u64,
    /// Requested vCPUs (`j_i^1` in Eq. 1 terms).
    pub vcpus: u32,
    /// Requested memory in GiB (`j_i^2`).
    pub mem_gb: f32,
    /// Execution time in steps once placed (hidden from the agent).
    pub duration: u64,
}

impl TaskSpec {
    /// Validates the internal invariants every generator must uphold.
    pub fn is_valid(&self) -> bool {
        self.vcpus >= 1 && self.mem_gb > 0.0 && self.duration >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_checks() {
        let good = TaskSpec { id: 0, arrival: 0, vcpus: 2, mem_gb: 4.0, duration: 10 };
        assert!(good.is_valid());
        assert!(!TaskSpec { vcpus: 0, ..good }.is_valid());
        assert!(!TaskSpec { mem_gb: 0.0, ..good }.is_valid());
        assert!(!TaskSpec { duration: 0, ..good }.is_valid());
    }
}
