//! Hybrid workload test sets (Sec. 5.3 generalization study).
//!
//! "20% of the original dataset is retained, while the remaining portion is
//! randomly drawn from the datasets of the other 9 clients."

use crate::TaskSpec;
use pfrl_stats::seeding::derive_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Builds client `own_index`'s hybrid test set: `own_frac` of its own test
/// tasks plus `(1 - own_frac)` drawn uniformly from the other clients'
/// test sets. The result has the same size as `sets[own_index]` and is
/// arrival-sorted with renumbered ids.
///
/// # Panics
/// If `own_index` is out of bounds, `own_frac` outside `[0, 1]`, or fewer
/// than two clients are supplied.
pub fn hybrid_test_set(
    sets: &[Vec<TaskSpec>],
    own_index: usize,
    own_frac: f64,
    seed: u64,
) -> Vec<TaskSpec> {
    assert!(sets.len() >= 2, "hybrid_test_set needs >= 2 clients");
    assert!(own_index < sets.len(), "own_index out of bounds");
    assert!((0.0..=1.0).contains(&own_frac), "own_frac out of [0,1]");
    let own = &sets[own_index];
    let n = own.len();
    let n_own = ((n as f64) * own_frac).round() as usize;

    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, own_index as u64));
    let mut out: Vec<TaskSpec> = Vec::with_capacity(n);

    // Retain a random own subset.
    let mut own_idx: Vec<usize> = (0..n).collect();
    own_idx.shuffle(&mut rng);
    out.extend(own_idx.into_iter().take(n_own).map(|i| own[i]));

    // Fill the rest from the other clients, uniformly at random.
    let others: Vec<usize> =
        (0..sets.len()).filter(|&k| k != own_index && !sets[k].is_empty()).collect();
    assert!(!others.is_empty(), "all other clients are empty");
    while out.len() < n {
        let k = others[rng.gen_range(0..others.len())];
        let t = sets[k][rng.gen_range(0..sets[k].len())];
        out.push(t);
    }

    // Re-normalize arrivals/ids as a coherent trace.
    out.sort_by_key(|t| t.arrival);
    let base = out.first().map_or(0, |t| t.arrival);
    for (i, t) in out.iter_mut().enumerate() {
        t.id = i as u64;
        t.arrival -= base;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize, cpu: u32) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                id: i as u64,
                arrival: i as u64,
                vcpus: cpu,
                mem_gb: 1.0,
                duration: 3,
            })
            .collect()
    }

    #[test]
    fn size_preserved_and_mix_ratio_respected() {
        // Own client uses cpu=1; others cpu=2..=4, so provenance is visible.
        let sets = vec![mk(100, 1), mk(100, 2), mk(100, 3), mk(100, 4)];
        let hybrid = hybrid_test_set(&sets, 0, 0.2, 42);
        assert_eq!(hybrid.len(), 100);
        let own_count = hybrid.iter().filter(|t| t.vcpus == 1).count();
        assert_eq!(own_count, 20);
    }

    #[test]
    fn foreign_tasks_drawn_from_all_others() {
        let sets = vec![mk(200, 1), mk(200, 2), mk(200, 3), mk(200, 4)];
        let hybrid = hybrid_test_set(&sets, 0, 0.2, 1);
        for cpu in [2, 3, 4] {
            assert!(hybrid.iter().any(|t| t.vcpus == cpu), "no tasks from client with cpu={cpu}");
        }
    }

    #[test]
    fn output_is_normalized_trace() {
        let sets = vec![mk(50, 1), mk(50, 2)];
        let hybrid = hybrid_test_set(&sets, 1, 0.2, 5);
        assert_eq!(hybrid[0].arrival, 0);
        assert!(hybrid.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, t) in hybrid.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn deterministic_and_client_dependent() {
        let sets = vec![mk(60, 1), mk(60, 2), mk(60, 3)];
        let a = hybrid_test_set(&sets, 0, 0.2, 9);
        let b = hybrid_test_set(&sets, 0, 0.2, 9);
        assert_eq!(a, b);
        let c = hybrid_test_set(&sets, 1, 0.2, 9);
        assert_ne!(a, c);
    }

    #[test]
    fn own_frac_one_keeps_everything_own() {
        let sets = vec![mk(30, 1), mk(30, 2)];
        let hybrid = hybrid_test_set(&sets, 0, 1.0, 3);
        assert!(hybrid.iter().all(|t| t.vcpus == 1));
    }

    #[test]
    #[should_panic(expected = ">= 2 clients")]
    fn single_client_rejected() {
        let _ = hybrid_test_set(&[mk(10, 1)], 0, 0.2, 0);
    }
}
