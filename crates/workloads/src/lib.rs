//! Synthetic heterogeneous cloud workload generators modeled on the ten
//! real traces used by the PFRL-DM paper (Sec. 3, Table 1–3).
//!
//! The paper treats each trace "as a distribution" and samples 3500 tasks per
//! client; privacy/licensing puts the raw traces out of reach for this
//! reproduction, so each [`DatasetId`] carries a parametric generative model
//! ([`WorkloadModel`]) whose arrival-rate profile, CPU/memory request
//! distributions, and execution-time distribution are chosen to match the
//! qualitative shapes the paper reports in Figs. 2–5 — and, crucially, to be
//! *mutually heterogeneous* across datasets, which is the property all of
//! the paper's experiments exercise.
//!
//! Time unit convention: **1 simulation time step = 1 minute**. Durations
//! and inter-arrival gaps are expressed in steps.
//!
//! # Example
//!
//! ```
//! use pfrl_workloads::{DatasetId, WorkloadModel};
//!
//! let model = DatasetId::Google.model();
//! let tasks = model.sample(100, 42);
//! assert_eq!(tasks.len(), 100);
//! // Arrivals are sorted and demands positive.
//! assert!(tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! assert!(tasks.iter().all(|t| t.vcpus >= 1 && t.mem_gb > 0.0));
//! ```

pub mod arrival;
pub mod dataset;
pub mod drift;
pub mod duration;
pub mod events;
pub mod machines;
pub mod mix;
pub mod model;
pub mod resources;
pub mod split;
pub mod task;
pub mod workflow;

pub use arrival::ArrivalProfile;
pub use dataset::DatasetId;
pub use drift::{scale_arrivals, PiecewiseModel};
pub use duration::DurationModel;
pub use events::{ArrivalEvent, ArrivalEvents, ArrivalStats};
pub use machines::{machine_table, MachineRow};
pub use mix::hybrid_test_set;
pub use model::WorkloadModel;
pub use resources::ResourceModel;
pub use split::{combined_heterogeneous, train_test_split, Split};
pub use task::TaskSpec;
pub use workflow::{DagTask, Workflow, WorkflowModel};
