//! Task traces viewed as arrival-event streams — the workload-side feed of
//! `pfrl-sim`'s discrete-event core.
//!
//! A sampled trace is a `Vec<TaskSpec>` sorted by arrival; [`ArrivalEvents`]
//! walks it as a peekable stream of `(time, index)` events without copying
//! or re-sorting, so an event calendar (or a probe measuring trace shape)
//! can consume arrivals lazily in exactly the order the simulator applies
//! them: arrival time ascending, trace order among ties.

use crate::task::TaskSpec;

/// One task-arrival event: the trace task at `index` arrives at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival step.
    pub time: u64,
    /// Index into the arrival-sorted trace.
    pub index: usize,
}

/// Peekable iterator over a trace's arrival events.
#[derive(Debug, Clone)]
pub struct ArrivalEvents<'a> {
    tasks: &'a [TaskSpec],
    cursor: usize,
}

impl<'a> ArrivalEvents<'a> {
    /// Streams `tasks`, which must already be arrival-sorted (as
    /// [`crate::WorkloadModel::sample`] returns them).
    ///
    /// # Panics
    /// Debug-asserts the sort precondition.
    pub fn new(tasks: &'a [TaskSpec]) -> Self {
        debug_assert!(
            tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "ArrivalEvents requires an arrival-sorted trace"
        );
        Self { tasks, cursor: 0 }
    }

    /// The next pending event, without consuming it.
    pub fn peek(&self) -> Option<ArrivalEvent> {
        self.tasks.get(self.cursor).map(|t| ArrivalEvent { time: t.arrival, index: self.cursor })
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.tasks.len() - self.cursor
    }
}

impl Iterator for ArrivalEvents<'_> {
    type Item = ArrivalEvent;

    fn next(&mut self) -> Option<Self::Item> {
        let ev = self.peek()?;
        self.cursor += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for ArrivalEvents<'_> {}

/// Shape statistics of a trace's arrival stream, computed in one pass over
/// its events (probe/diagnostic helper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalStats {
    /// Number of arrivals.
    pub count: usize,
    /// Last arrival step (0 for an empty trace).
    pub span: u64,
    /// Largest gap between consecutive arrivals (and before the first).
    pub max_gap: u64,
    /// Mean arrivals per step over the span (0 for an empty trace).
    pub rate_per_step: f64,
}

impl ArrivalStats {
    /// Computes the stats of an arrival-sorted trace.
    pub fn of(tasks: &[TaskSpec]) -> Self {
        let mut count = 0usize;
        let mut span = 0u64;
        let mut max_gap = 0u64;
        let mut prev = 0u64;
        for ev in ArrivalEvents::new(tasks) {
            count += 1;
            max_gap = max_gap.max(ev.time - prev);
            prev = ev.time;
            span = ev.time;
        }
        let rate_per_step = if span > 0 { count as f64 / span as f64 } else { 0.0 };
        Self { count, span, max_gap, rate_per_step }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;

    fn task(id: u64, arrival: u64) -> TaskSpec {
        TaskSpec { id, arrival, vcpus: 1, mem_gb: 1.0, duration: 5 }
    }

    #[test]
    fn streams_in_trace_order_with_peek() {
        let trace = vec![task(7, 0), task(3, 0), task(1, 4), task(2, 9)];
        let mut ev = ArrivalEvents::new(&trace);
        assert_eq!(ev.len(), 4);
        assert_eq!(ev.peek(), Some(ArrivalEvent { time: 0, index: 0 }));
        // Equal timestamps keep trace order (index ascending).
        let order: Vec<(u64, usize)> = ev.by_ref().map(|e| (e.time, e.index)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (4, 2), (9, 3)]);
        assert_eq!(ev.peek(), None);
        assert_eq!(ev.remaining(), 0);
    }

    #[test]
    fn sampled_traces_satisfy_the_sort_precondition() {
        for ds in DatasetId::ALL {
            let trace = ds.model().sample(200, 11);
            let n = ArrivalEvents::new(&trace).count();
            assert_eq!(n, 200, "{ds:?}");
        }
    }

    #[test]
    fn stats_capture_span_and_sparsity() {
        let trace = vec![task(0, 2), task(1, 2), task(2, 50), task(3, 60)];
        let s = ArrivalStats::of(&trace);
        assert_eq!(s.count, 4);
        assert_eq!(s.span, 60);
        assert_eq!(s.max_gap, 48);
        assert!((s.rate_per_step - 4.0 / 60.0).abs() < 1e-12);
        let empty = ArrivalStats::of(&[]);
        assert_eq!((empty.count, empty.span, empty.max_gap), (0, 0, 0));
        assert_eq!(empty.rate_per_step, 0.0);
    }
}
