//! The composite workload generator: arrivals × resources × durations.

use crate::{ArrivalProfile, DurationModel, ResourceModel, TaskSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A parametric generative model of one cloud's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    /// Human-readable name (matches the paper's dataset label).
    pub name: &'static str,
    /// Arrival process.
    pub arrival: ArrivalProfile,
    /// Resource request distribution.
    pub resources: ResourceModel,
    /// Execution time distribution.
    pub duration: DurationModel,
}

impl WorkloadModel {
    /// Samples `n` tasks, sorted by arrival time, with ids `0..n`.
    ///
    /// The same `(model, n, seed)` triple always yields the same tasks.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<TaskSpec> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let arrivals = self.arrival.sample_arrivals(n, &mut rng);
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (vcpus, mem_gb) = self.resources.sample(&mut rng);
                let duration = self.duration.sample(&mut rng);
                TaskSpec { id: i as u64, arrival, vcpus, mem_gb, duration }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::class;

    fn model() -> WorkloadModel {
        WorkloadModel {
            name: "test",
            arrival: ArrivalProfile::flat(30.0),
            resources: ResourceModel::new(vec![class(2, 4.0, 8.0, 1.0)]),
            duration: DurationModel::lognormal(2.0, 0.5, 1, 100),
        }
    }

    #[test]
    fn sample_is_sorted_valid_and_sequentially_numbered() {
        let tasks = model().sample(200, 5);
        assert_eq!(tasks.len(), 200);
        assert!(tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i as u64);
            assert!(t.is_valid());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = model().sample(50, 1);
        let b = model().sample(50, 1);
        let c = model().sample(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
