//! Task execution-time models (Fig. 5).
//!
//! Real cloud execution times are heavy-tailed; the standard parametric fit
//! is a lognormal, optionally mixed with a second lognormal for the
//! long-job mode that HPC and VM traces exhibit.

use rand::Rng;

/// Execution-time distribution, in simulation steps (minutes).
#[derive(Debug, Clone, PartialEq)]
pub enum DurationModel {
    /// `exp(N(mu, sigma²))`, clamped to `[min_steps, max_steps]`.
    LogNormal {
        /// Mean of the underlying normal (of ln minutes).
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
        /// Lower clamp in steps.
        min_steps: u64,
        /// Upper clamp in steps.
        max_steps: u64,
    },
    /// Two-mode mixture: with probability `p_long` draw from `long`,
    /// otherwise from `short`.
    Mixture {
        /// Short-job component.
        short: Box<DurationModel>,
        /// Long-job component.
        long: Box<DurationModel>,
        /// Probability of the long component.
        p_long: f64,
    },
}

impl DurationModel {
    /// Convenience constructor for the common lognormal case.
    pub fn lognormal(mu: f64, sigma: f64, min_steps: u64, max_steps: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(min_steps >= 1 && min_steps <= max_steps, "bad clamp range");
        DurationModel::LogNormal { mu, sigma, min_steps, max_steps }
    }

    /// Two-component mixture.
    pub fn mixture(short: DurationModel, long: DurationModel, p_long: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_long), "p_long out of [0,1]");
        DurationModel::Mixture { short: Box::new(short), long: Box::new(long), p_long }
    }

    /// Draws one duration in steps (always ≥ 1).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self {
            DurationModel::LogNormal { mu, sigma, min_steps, max_steps } => {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let val = (mu + sigma * z).exp();
                (val.round() as u64).clamp(*min_steps, *max_steps)
            }
            DurationModel::Mixture { short, long, p_long } => {
                if rng.gen_range(0.0..1.0) < *p_long {
                    long.sample(rng)
                } else {
                    short.sample(rng)
                }
            }
        }
    }

    /// Median duration in steps (exact for lognormal, mixture via component
    /// medians weighted — an approximation used only for diagnostics).
    pub fn approx_median(&self) -> f64 {
        match self {
            DurationModel::LogNormal { mu, min_steps, max_steps, .. } => {
                mu.exp().clamp(*min_steps as f64, *max_steps as f64)
            }
            DurationModel::Mixture { short, long, p_long } => {
                short.approx_median() * (1.0 - p_long) + long.approx_median() * p_long
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_within_clamp() {
        let d = DurationModel::lognormal(2.0, 1.5, 1, 100);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_close_to_exp_mu() {
        // median of exp(N(mu, sigma²)) = exp(mu)
        let d = DurationModel::lognormal(3.0, 0.8, 1, 100_000);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        let expect = 3.0f64.exp();
        assert!((median - expect).abs() / expect < 0.1, "median {median} vs {expect}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let d = DurationModel::lognormal(2.0, 0.0, 1, 1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let expect = 2.0f64.exp().round() as u64;
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), expect);
        }
    }

    #[test]
    fn mixture_produces_both_modes() {
        let d = DurationModel::mixture(
            DurationModel::lognormal(1.0, 0.1, 1, 10),
            DurationModel::lognormal(6.0, 0.1, 100, 10_000),
            0.3,
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let short = samples.iter().filter(|&&v| v <= 10).count();
        let long = samples.iter().filter(|&&v| v >= 100).count();
        assert_eq!(short + long, 2000, "no mid-range values with these components");
        let p_long = long as f64 / 2000.0;
        assert!((p_long - 0.3).abs() < 0.05, "p_long {p_long}");
    }

    #[test]
    #[should_panic(expected = "p_long")]
    fn bad_mixture_probability() {
        let _ = DurationModel::mixture(
            DurationModel::lognormal(1.0, 0.1, 1, 10),
            DurationModel::lognormal(1.0, 0.1, 1, 10),
            1.5,
        );
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn bad_clamp_range() {
        let _ = DurationModel::lognormal(1.0, 0.1, 10, 5);
    }
}
