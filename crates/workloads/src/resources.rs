//! Per-task resource request models (Figs. 2–3).
//!
//! CPU requests in real traces concentrate on a handful of discrete values
//! (1, 2, 4, 8, … vCPUs) with dataset-specific weights; memory requests are
//! drawn per CPU class with jitter, which reproduces the CPU/memory
//! correlation visible in the paper's distribution plots.

use rand::Rng;

/// A discrete CPU class with an associated memory range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceClass {
    /// vCPUs requested.
    pub vcpus: u32,
    /// Memory range in GiB (uniform within).
    pub mem_gb: (f32, f32),
    /// Relative sampling weight.
    pub weight: f64,
}

/// The resource request distribution of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceModel {
    classes: Vec<ResourceClass>,
    total_weight: f64,
}

impl ResourceModel {
    /// Builds a model from non-empty classes with positive weights.
    ///
    /// # Panics
    /// If `classes` is empty or any class is malformed.
    pub fn new(classes: Vec<ResourceClass>) -> Self {
        assert!(!classes.is_empty(), "ResourceModel: no classes");
        for (i, c) in classes.iter().enumerate() {
            assert!(c.vcpus >= 1, "class {i}: zero vcpus");
            assert!(c.mem_gb.0 > 0.0 && c.mem_gb.0 <= c.mem_gb.1, "class {i}: bad memory range");
            assert!(c.weight > 0.0, "class {i}: non-positive weight");
        }
        let total_weight = classes.iter().map(|c| c.weight).sum();
        Self { classes, total_weight }
    }

    /// Draws one `(vcpus, mem_gb)` request.
    pub fn sample(&self, rng: &mut impl Rng) -> (u32, f32) {
        let mut pick = rng.gen_range(0.0..self.total_weight);
        let mut chosen = &self.classes[self.classes.len() - 1];
        for c in &self.classes {
            if pick < c.weight {
                chosen = c;
                break;
            }
            pick -= c.weight;
        }
        let mem = if chosen.mem_gb.0 == chosen.mem_gb.1 {
            chosen.mem_gb.0
        } else {
            rng.gen_range(chosen.mem_gb.0..chosen.mem_gb.1)
        };
        (chosen.vcpus, mem)
    }

    /// The configured classes.
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// Expected vCPU request.
    pub fn mean_vcpus(&self) -> f64 {
        self.classes.iter().map(|c| c.vcpus as f64 * c.weight).sum::<f64>() / self.total_weight
    }

    /// Largest possible vCPU request.
    pub fn max_vcpus(&self) -> u32 {
        self.classes.iter().map(|c| c.vcpus).max().expect("non-empty")
    }

    /// Largest possible memory request.
    pub fn max_mem_gb(&self) -> f32 {
        self.classes.iter().map(|c| c.mem_gb.1).fold(0.0, f32::max)
    }
}

/// Shorthand used by the dataset presets.
pub fn class(vcpus: u32, mem_lo: f32, mem_hi: f32, weight: f64) -> ResourceClass {
    ResourceClass { vcpus, mem_gb: (mem_lo, mem_hi), weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> ResourceModel {
        ResourceModel::new(vec![
            class(1, 0.5, 2.0, 0.6),
            class(2, 2.0, 4.0, 0.3),
            class(8, 16.0, 32.0, 0.1),
        ])
    }

    #[test]
    fn samples_only_configured_classes() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..500 {
            let (cpu, mem) = m.sample(&mut rng);
            match cpu {
                1 => assert!((0.5..=2.0).contains(&mem)),
                2 => assert!((2.0..=4.0).contains(&mem)),
                8 => assert!((16.0..=32.0).contains(&mem)),
                other => panic!("unexpected cpu class {other}"),
            }
        }
    }

    #[test]
    fn weights_respected_in_frequency() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mut count1 = 0;
        for _ in 0..n {
            if m.sample(&mut rng).0 == 1 {
                count1 += 1;
            }
        }
        let frac = count1 as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "class-1 fraction {frac}");
    }

    #[test]
    fn mean_and_max_accessors() {
        let m = model();
        assert!((m.mean_vcpus() - (0.6 + 0.6 + 0.8)).abs() < 1e-12);
        assert_eq!(m.max_vcpus(), 8);
        assert_eq!(m.max_mem_gb(), 32.0);
    }

    #[test]
    fn fixed_memory_class_allowed() {
        let m = ResourceModel::new(vec![class(4, 8.0, 8.0, 1.0)]);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(m.sample(&mut rng), (4, 8.0));
    }

    #[test]
    #[should_panic(expected = "no classes")]
    fn empty_rejected() {
        let _ = ResourceModel::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "bad memory range")]
    fn inverted_memory_rejected() {
        let _ = ResourceModel::new(vec![class(1, 4.0, 2.0, 1.0)]);
    }
}
