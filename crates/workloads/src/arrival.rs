//! Task arrival processes with a 24-hour rate profile (Fig. 4).
//!
//! Arrivals follow a non-homogeneous Poisson process: inter-arrival gaps are
//! exponential with the rate of the current hour-of-day, so datasets differ
//! both in overall intensity and in diurnal shape (flat HPC queues vs.
//! strongly diurnal interactive clouds).

use rand::Rng;

/// Minutes per simulated hour.
pub const STEPS_PER_HOUR: u64 = 60;

/// A 24-entry hourly arrival-rate profile, in tasks per hour.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProfile {
    /// `rates[h]` = expected arrivals during hour-of-day `h`.
    pub hourly_rates: [f64; 24],
}

impl ArrivalProfile {
    /// Constant rate at all hours.
    pub fn flat(rate_per_hour: f64) -> Self {
        assert!(rate_per_hour > 0.0, "arrival rate must be positive");
        Self { hourly_rates: [rate_per_hour; 24] }
    }

    /// Diurnal profile: sinusoid between `low` (at `trough_hour`) and `high`
    /// (12h later), the classic interactive-cloud shape.
    pub fn diurnal(low: f64, high: f64, trough_hour: usize) -> Self {
        assert!(low > 0.0 && high >= low, "need 0 < low <= high");
        let mut rates = [0.0; 24];
        for (h, r) in rates.iter_mut().enumerate() {
            let phase = (h as f64 - trough_hour as f64) / 24.0 * std::f64::consts::TAU;
            // cos = 1 at the trough hour.
            *r = low + (high - low) * 0.5 * (1.0 - phase.cos());
        }
        Self { hourly_rates: rates }
    }

    /// Bursty profile: `base` rate with `burst` rate during the listed hours
    /// (batch-submission spikes seen in the K8S / Alibaba traces).
    pub fn bursty(base: f64, burst: f64, burst_hours: &[usize]) -> Self {
        assert!(base > 0.0 && burst >= base, "need 0 < base <= burst");
        let mut rates = [base; 24];
        for &h in burst_hours {
            rates[h % 24] = burst;
        }
        Self { hourly_rates: rates }
    }

    /// Rate (tasks/hour) in effect at absolute step `t`.
    pub fn rate_at(&self, step: u64) -> f64 {
        let hour = (step / STEPS_PER_HOUR) % 24;
        self.hourly_rates[hour as usize]
    }

    /// Mean rate across the day.
    pub fn mean_rate(&self) -> f64 {
        self.hourly_rates.iter().sum::<f64>() / 24.0
    }

    /// Samples `n` arrival times (in steps, non-decreasing, starting near 0)
    /// from the non-homogeneous Poisson process.
    pub fn sample_arrivals(&self, n: usize, rng: &mut impl Rng) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64; // continuous time in steps
        for _ in 0..n {
            // Exponential gap at the rate of the current hour (piecewise-
            // constant thinning approximation; fine at our granularity).
            let rate_per_step = (self.rate_at(t as u64) / STEPS_PER_HOUR as f64).max(1e-9);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_per_step;
            out.push(t as u64);
        }
        out
    }

    /// Empirical hourly arrival counts of a set of arrival steps, for the
    /// Fig. 4 reproduction. Index = hour-of-day, value = mean tasks/hour.
    pub fn empirical_hourly_counts(arrivals: &[u64]) -> [f64; 24] {
        let mut counts = [0.0f64; 24];
        let mut hours_seen = [0.0f64; 24];
        if arrivals.is_empty() {
            return counts;
        }
        let total_hours = arrivals.last().unwrap() / STEPS_PER_HOUR + 1;
        for h in 0..total_hours {
            hours_seen[(h % 24) as usize] += 1.0;
        }
        for &a in arrivals {
            counts[((a / STEPS_PER_HOUR) % 24) as usize] += 1.0;
        }
        for (c, seen) in counts.iter_mut().zip(&hours_seen) {
            if *seen > 0.0 {
                *c /= seen;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn flat_profile_constant() {
        let p = ArrivalProfile::flat(10.0);
        assert_eq!(p.rate_at(0), 10.0);
        assert_eq!(p.rate_at(23 * 60 + 59), 10.0);
        assert_eq!(p.mean_rate(), 10.0);
    }

    #[test]
    fn diurnal_profile_peaks_opposite_trough() {
        let p = ArrivalProfile::diurnal(2.0, 20.0, 4);
        assert!((p.hourly_rates[4] - 2.0).abs() < 1e-9);
        assert!((p.hourly_rates[16] - 20.0).abs() < 1e-9);
        assert!(p.hourly_rates.iter().all(|&r| (2.0 - 1e-9..=20.0 + 1e-9).contains(&r)));
    }

    #[test]
    fn bursty_profile_spikes() {
        let p = ArrivalProfile::bursty(1.0, 30.0, &[9, 14]);
        assert_eq!(p.hourly_rates[9], 30.0);
        assert_eq!(p.hourly_rates[14], 30.0);
        assert_eq!(p.hourly_rates[0], 1.0);
    }

    #[test]
    fn arrivals_sorted_and_sized() {
        let p = ArrivalProfile::flat(60.0); // 1 task per step on average
        let a = p.sample_arrivals(500, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let p = ArrivalProfile::flat(30.0); // 0.5 tasks/step => mean gap 2 steps
        let a = p.sample_arrivals(4000, &mut SmallRng::seed_from_u64(2));
        let span = *a.last().unwrap() as f64;
        let mean_gap = span / 4000.0;
        assert!((mean_gap - 2.0).abs() < 0.2, "mean gap {mean_gap}");
    }

    #[test]
    fn diurnal_empirical_counts_track_profile() {
        let p = ArrivalProfile::diurnal(5.0, 100.0, 0);
        let a = p.sample_arrivals(20_000, &mut SmallRng::seed_from_u64(3));
        let counts = ArrivalProfile::empirical_hourly_counts(&a);
        // Peak hour (12) should see far more arrivals than trough hour (0).
        assert!(counts[12] > counts[0] * 3.0, "peak {} trough {}", counts[12], counts[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = ArrivalProfile::diurnal(2.0, 8.0, 6);
        let a = p.sample_arrivals(50, &mut SmallRng::seed_from_u64(9));
        let b = p.sample_arrivals(50, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProfile::flat(0.0);
    }
}
