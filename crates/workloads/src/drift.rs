//! Time-varying (non-stationary) workload wrappers.
//!
//! The base [`WorkloadModel`]s are stationary: one sample call draws from a
//! fixed arrival/resource/duration law. Real clouds drift — diurnal shifts
//! in arrival intensity, flash crowds, and outright changes of workload
//! identity. This module supplies the two building blocks the scenario
//! engine (`pfrl-scenario`) composes:
//!
//! * [`scale_arrivals`] — a rate-scaled copy of a model (same marginal task
//!   distributions, `factor`× the arrival intensity at every hour);
//! * [`PiecewiseModel`] — an episode-indexed schedule of models, so one
//!   generator can change law mid-training while staying a pure function of
//!   `(episode, seed)`.

use crate::{ArrivalProfile, TaskSpec, WorkloadModel};

/// A copy of `model` with every hourly arrival rate multiplied by
/// `factor` (> 0). Resource and duration laws are untouched, so the drifted
/// workload differs only in load intensity — the classic diurnal-shift /
/// flash-crowd perturbation.
pub fn scale_arrivals(model: &WorkloadModel, factor: f64) -> WorkloadModel {
    assert!(factor > 0.0 && factor.is_finite(), "arrival scale factor {factor} must be positive");
    let mut rates = model.arrival.hourly_rates;
    for r in &mut rates {
        *r *= factor;
    }
    WorkloadModel { arrival: ArrivalProfile { hourly_rates: rates }, ..model.clone() }
}

/// An episode-indexed piecewise-stationary workload: segment `i` applies
/// from its start episode (inclusive) until the next segment's start.
///
/// Segments must be sorted by start episode and begin at episode 0, so
/// every episode has exactly one generating model — the property that keeps
/// drift runs resumable (the model in force is a pure function of the
/// episode index, never of elapsed wall-clock or mutable state).
#[derive(Debug, Clone)]
pub struct PiecewiseModel {
    /// `(start_episode, model)` pairs, sorted ascending, first start = 0.
    pub segments: Vec<(usize, WorkloadModel)>,
}

impl PiecewiseModel {
    /// A single-segment (stationary) schedule.
    pub fn stationary(model: WorkloadModel) -> Self {
        Self { segments: vec![(0, model)] }
    }

    /// Builds a schedule, validating the segment invariants.
    ///
    /// # Panics
    /// If `segments` is empty, unsorted, or does not start at episode 0.
    pub fn new(segments: Vec<(usize, WorkloadModel)>) -> Self {
        assert!(!segments.is_empty(), "piecewise model needs at least one segment");
        assert_eq!(segments[0].0, 0, "first segment must start at episode 0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segment starts must be strictly increasing"
        );
        Self { segments }
    }

    /// The model in force at `episode`.
    pub fn model_at(&self, episode: usize) -> &WorkloadModel {
        let idx = self.segments.iter().rposition(|(start, _)| *start <= episode).expect("start 0");
        &self.segments[idx].1
    }

    /// Samples `episode`'s tasks from the model in force — a pure function
    /// of `(self, episode, seed)`.
    pub fn sample_episode(&self, episode: usize, n: usize, seed: u64) -> Vec<TaskSpec> {
        self.model_at(episode).sample(n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;

    #[test]
    fn scaled_arrivals_density_increases() {
        let base = DatasetId::Google.model();
        let fast = scale_arrivals(&base, 4.0);
        assert_eq!(fast.resources, base.resources);
        assert_eq!(fast.duration, base.duration);
        for (a, b) in fast.arrival.hourly_rates.iter().zip(&base.arrival.hourly_rates) {
            assert!((a / b - 4.0).abs() < 1e-12);
        }
        // Same seed, same count: the denser process finishes sooner.
        let slow_span = base.sample(200, 7).last().unwrap().arrival;
        let fast_span = fast.sample(200, 7).last().unwrap().arrival;
        assert!(fast_span < slow_span, "scaled {fast_span} vs base {slow_span}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_rejected() {
        let _ = scale_arrivals(&DatasetId::Google.model(), 0.0);
    }

    #[test]
    fn piecewise_selects_by_episode() {
        let a = DatasetId::Google.model();
        let b = DatasetId::Alibaba2017.model();
        let pw = PiecewiseModel::new(vec![(0, a.clone()), (10, b.clone())]);
        assert_eq!(pw.model_at(0).name, a.name);
        assert_eq!(pw.model_at(9).name, a.name);
        assert_eq!(pw.model_at(10).name, b.name);
        assert_eq!(pw.model_at(999).name, b.name);
    }

    #[test]
    fn piecewise_sampling_is_deterministic_and_shifts_at_boundary() {
        let pw = PiecewiseModel::new(vec![
            (0, DatasetId::Google.model()),
            (5, scale_arrivals(&DatasetId::Google.model(), 8.0)),
        ]);
        assert_eq!(pw.sample_episode(3, 30, 1), pw.sample_episode(3, 30, 1));
        // Across the boundary the same seed draws from a different law.
        assert_ne!(pw.sample_episode(4, 30, 1), pw.sample_episode(5, 30, 1));
    }

    #[test]
    #[should_panic(expected = "start at episode 0")]
    fn piecewise_must_cover_episode_zero() {
        let _ = PiecewiseModel::new(vec![(3, DatasetId::Google.model())]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unsorted_segments() {
        let _ = PiecewiseModel::new(vec![
            (0, DatasetId::Google.model()),
            (7, DatasetId::K8s.model()),
            (7, DatasetId::Google.model()),
        ]);
    }
}
