//! Workflow (DAG) workloads — the paper's stated future work ("workflow
//! datasets with dependencies", Sec. 6).
//!
//! A workflow is a layered DAG of tasks: every task may depend on tasks of
//! earlier layers and becomes schedulable only when all of its dependencies
//! complete. The generator produces fork–join-shaped scientific workflows
//! (à la Montage/Epigenomics) on top of any base [`WorkloadModel`]'s
//! resource/duration distributions.

use crate::model::WorkloadModel;
use crate::task::TaskSpec;
use pfrl_stats::seeding::derive_seed;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// One task of a workflow, with intra-workflow dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct DagTask {
    /// The task body. `spec.arrival` is the *workflow submission time*;
    /// actual readiness is determined by dependency completion.
    pub spec: TaskSpec,
    /// Ids (within the same workflow) of tasks that must complete first.
    /// Always references smaller ids, so the graph is acyclic by
    /// construction.
    pub deps: Vec<u64>,
}

/// A submitted workflow: a DAG of tasks sharing one submission time.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    /// Tasks in topological order (ids are `0..n` within the workflow).
    pub tasks: Vec<DagTask>,
    /// Submission step.
    pub submit: u64,
}

impl Workflow {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workflow has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Validates the DAG invariants: topological ids and dep references.
    pub fn is_valid(&self) -> bool {
        self.tasks.iter().enumerate().all(|(i, t)| {
            t.spec.id == i as u64
                && t.spec.is_valid()
                && t.deps.iter().all(|&d| d < i as u64)
                && t.spec.arrival == self.submit
        })
    }

    /// The critical-path execution time (ignoring resource contention):
    /// a lower bound on the workflow makespan.
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d as usize]).max().unwrap_or(0);
            finish[i] = ready + t.spec.duration;
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Total work (sum of task durations).
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.spec.duration).sum()
    }
}

/// Generator of layered fork–join workflows over a base workload model.
#[derive(Debug, Clone)]
pub struct WorkflowModel {
    /// Source of per-task resource demands and durations.
    pub base: WorkloadModel,
    /// Range of DAG depth (number of layers), inclusive.
    pub layers: (usize, usize),
    /// Range of layer width, inclusive.
    pub width: (usize, usize),
    /// Maximum dependencies per task on the previous layer.
    pub max_fan_in: usize,
    /// Mean gap between workflow submissions, in steps.
    pub mean_interarrival: f64,
}

impl WorkflowModel {
    /// A scientific-workflow-shaped default over the given base model.
    pub fn scientific(base: WorkloadModel) -> Self {
        Self { base, layers: (3, 6), width: (1, 5), max_fan_in: 3, mean_interarrival: 30.0 }
    }

    /// Samples `n` workflows with increasing submission times.
    ///
    /// # Panics
    /// On degenerate ranges.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Workflow> {
        assert!(self.layers.0 >= 1 && self.layers.0 <= self.layers.1, "bad layer range");
        assert!(self.width.0 >= 1 && self.width.0 <= self.width.1, "bad width range");
        assert!(self.max_fan_in >= 1, "need fan-in >= 1");
        assert!(self.mean_interarrival > 0.0, "need positive interarrival");

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut submit = 0u64;
        let mut out = Vec::with_capacity(n);
        for w in 0..n {
            // Task bodies come from the base model (its own arrivals are
            // discarded; the workflow submission time takes over).
            let n_layers = rng.gen_range(self.layers.0..=self.layers.1);
            let widths: Vec<usize> =
                (0..n_layers).map(|_| rng.gen_range(self.width.0..=self.width.1)).collect();
            let total: usize = widths.iter().sum();
            let bodies = self.base.sample(total, derive_seed(seed, w as u64));

            let mut tasks = Vec::with_capacity(total);
            let mut prev_layer: Vec<u64> = Vec::new();
            let mut next_id = 0u64;
            for &width in &widths {
                let mut this_layer = Vec::with_capacity(width);
                for _ in 0..width {
                    let body = bodies[next_id as usize];
                    let deps = if prev_layer.is_empty() {
                        Vec::new()
                    } else {
                        let k = rng.gen_range(1..=self.max_fan_in.min(prev_layer.len()));
                        let mut choices = prev_layer.clone();
                        let mut deps = Vec::with_capacity(k);
                        for _ in 0..k {
                            let pick = rng.gen_range(0..choices.len());
                            deps.push(choices.swap_remove(pick));
                        }
                        deps.sort_unstable();
                        deps
                    };
                    tasks.push(DagTask {
                        spec: TaskSpec { id: next_id, arrival: submit, ..body },
                        deps,
                    });
                    this_layer.push(next_id);
                    next_id += 1;
                }
                prev_layer = this_layer;
            }
            let wf = Workflow { tasks, submit };
            debug_assert!(wf.is_valid());
            out.push(wf);

            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            submit += (-u.ln() * self.mean_interarrival).ceil() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;

    fn model() -> WorkflowModel {
        WorkflowModel::scientific(DatasetId::Google.model())
    }

    #[test]
    fn generated_workflows_are_valid_dags() {
        for wf in model().sample(20, 1) {
            assert!(wf.is_valid());
            assert!(wf.len() >= 3); // at least layers.0 × width.0
                                    // Layer 0 tasks have no deps; some later task has deps.
            assert!(wf.tasks[0].deps.is_empty());
            assert!(wf.tasks.iter().any(|t| !t.deps.is_empty()));
        }
    }

    #[test]
    fn submissions_increase() {
        let wfs = model().sample(10, 2);
        assert!(wfs.windows(2).all(|w| w[0].submit < w[1].submit));
        assert_eq!(wfs[0].submit, 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(model().sample(5, 3), model().sample(5, 3));
        assert_ne!(model().sample(5, 3), model().sample(5, 4));
    }

    #[test]
    fn critical_path_bounds() {
        for wf in model().sample(10, 5) {
            let cp = wf.critical_path();
            let max_dur = wf.tasks.iter().map(|t| t.spec.duration).max().unwrap();
            assert!(cp >= max_dur, "critical path shorter than longest task");
            assert!(cp <= wf.total_work(), "critical path exceeds total work");
        }
    }

    #[test]
    fn deps_limited_to_previous_layer_and_fan_in() {
        let m = WorkflowModel { max_fan_in: 2, ..model() };
        for wf in m.sample(10, 6) {
            for t in &wf.tasks {
                assert!(t.deps.len() <= 2);
                // deps strictly precede the task (topological ids).
                assert!(t.deps.iter().all(|&d| d < t.spec.id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad layer range")]
    fn degenerate_layers_rejected() {
        let m = WorkflowModel { layers: (4, 2), ..model() };
        let _ = m.sample(1, 0);
    }
}
