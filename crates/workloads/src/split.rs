//! Train/test splits and the combined heterogeneous dataset (Sec. 3.1).

use crate::TaskSpec;
use pfrl_stats::seeding::derive_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test partition of a task set.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training tasks (arrival-sorted, ids renumbered).
    pub train: Vec<TaskSpec>,
    /// Testing tasks (arrival-sorted, ids renumbered).
    pub test: Vec<TaskSpec>,
}

/// Renumbers ids and rebases arrivals to start at 0, preserving gaps.
fn normalize(mut tasks: Vec<TaskSpec>) -> Vec<TaskSpec> {
    tasks.sort_by_key(|t| t.arrival);
    let base = tasks.first().map_or(0, |t| t.arrival);
    for (i, t) in tasks.iter_mut().enumerate() {
        t.id = i as u64;
        t.arrival -= base;
    }
    tasks
}

/// Randomly splits `tasks` into `train_frac` training / rest testing
/// (the paper uses 60/40). Sampling is without replacement and
/// deterministic in `seed`.
///
/// # Panics
/// If `train_frac` is outside `(0, 1)`.
pub fn train_test_split(tasks: &[TaskSpec], train_frac: f64, seed: u64) -> Split {
    assert!(train_frac > 0.0 && train_frac < 1.0, "train_frac {train_frac} must be in (0,1)");
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.shuffle(&mut SmallRng::seed_from_u64(seed));
    let n_train = ((tasks.len() as f64) * train_frac).round() as usize;
    let (train_idx, test_idx) = idx.split_at(n_train.min(tasks.len()));
    Split {
        train: normalize(train_idx.iter().map(|&i| tasks[i]).collect()),
        test: normalize(test_idx.iter().map(|&i| tasks[i]).collect()),
    }
}

/// Builds the combined heterogeneous dataset of Sec. 3.1: an equal-size
/// subsample from each client's task set, merged and re-normalized. The
/// result has `per_client × sets.len()` tasks (or fewer if a client has
/// fewer tasks).
pub fn combined_heterogeneous(
    sets: &[Vec<TaskSpec>],
    per_client: usize,
    seed: u64,
) -> Vec<TaskSpec> {
    let mut all = Vec::new();
    for (k, set) in sets.iter().enumerate() {
        let mut idx: Vec<usize> = (0..set.len()).collect();
        idx.shuffle(&mut SmallRng::seed_from_u64(derive_seed(seed, k as u64)));
        for &i in idx.iter().take(per_client) {
            all.push(set[i]);
        }
    }
    normalize(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tasks(n: usize, stride: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                id: i as u64,
                arrival: i as u64 * stride,
                vcpus: 1 + (i % 4) as u32,
                mem_gb: 1.0 + i as f32,
                duration: 5,
            })
            .collect()
    }

    #[test]
    fn sixty_forty_split_sizes() {
        let tasks = mk_tasks(100, 3);
        let s = train_test_split(&tasks, 0.6, 1);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.test.len(), 40);
    }

    #[test]
    fn split_is_a_partition() {
        let tasks = mk_tasks(50, 2);
        let s = train_test_split(&tasks, 0.6, 2);
        // mem_gb values are unique per task in mk_tasks, so use them as keys.
        let mut seen: Vec<i64> = s.train.iter().chain(&s.test).map(|t| t.mem_gb as i64).collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..50).map(|i| (1 + i) as i64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn normalization_rebases_and_renumbers() {
        let tasks = mk_tasks(10, 7);
        let s = train_test_split(&tasks, 0.5, 3);
        for part in [&s.train, &s.test] {
            assert_eq!(part[0].arrival, 0);
            for (i, t) in part.iter().enumerate() {
                assert_eq!(t.id, i as u64);
            }
            assert!(part.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        }
    }

    #[test]
    fn deterministic_split() {
        let tasks = mk_tasks(30, 1);
        let a = train_test_split(&tasks, 0.6, 9);
        let b = train_test_split(&tasks, 0.6, 9);
        assert_eq!(a.train, b.train);
        let c = train_test_split(&tasks, 0.6, 10);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn combined_takes_equally_from_each() {
        let sets = vec![mk_tasks(40, 1), mk_tasks(40, 5), mk_tasks(40, 9)];
        let comb = combined_heterogeneous(&sets, 10, 4);
        assert_eq!(comb.len(), 30);
        assert_eq!(comb[0].arrival, 0);
        assert!(comb.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn combined_handles_short_clients() {
        let sets = vec![mk_tasks(3, 1), mk_tasks(40, 2)];
        let comb = combined_heterogeneous(&sets, 10, 4);
        assert_eq!(comb.len(), 13);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn bad_fraction_rejected() {
        let _ = train_test_split(&mk_tasks(10, 1), 1.0, 0);
    }
}
