//! Property-based tests of the workload generators and set operations.

use pfrl_workloads::{
    combined_heterogeneous, hybrid_test_set, train_test_split, DatasetId, TaskSpec,
};
use proptest::prelude::*;

fn any_dataset() -> impl Strategy<Value = DatasetId> {
    (0usize..10).prop_map(|i| DatasetId::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator produces exactly `n` valid, arrival-sorted tasks.
    #[test]
    fn samples_valid_and_sorted(id in any_dataset(), n in 1usize..200, seed in 0u64..1000) {
        let tasks = id.model().sample(n, seed);
        prop_assert_eq!(tasks.len(), n);
        prop_assert!(tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, t) in tasks.iter().enumerate() {
            prop_assert!(t.is_valid());
            prop_assert_eq!(t.id, i as u64);
        }
    }

    /// Sampling is a pure function of (model, n, seed).
    #[test]
    fn sampling_deterministic(id in any_dataset(), n in 1usize..60, seed in 0u64..1000) {
        prop_assert_eq!(id.model().sample(n, seed), id.model().sample(n, seed));
    }

    /// The train/test split partitions the input by count for any fraction.
    #[test]
    fn split_partitions(
        n in 2usize..150,
        frac in 0.05f64..0.95,
        seed in 0u64..100,
    ) {
        let tasks: Vec<TaskSpec> = DatasetId::Google.model().sample(n, 3);
        let s = train_test_split(&tasks, frac, seed);
        prop_assert_eq!(s.train.len() + s.test.len(), n);
        let expect_train = ((n as f64) * frac).round() as usize;
        prop_assert_eq!(s.train.len(), expect_train.min(n));
    }

    /// A hybrid test set always matches the owner's size and remains a
    /// normalized trace.
    #[test]
    fn hybrid_preserves_size(own_frac in 0.0f64..1.0, seed in 0u64..100) {
        let sets: Vec<Vec<TaskSpec>> = (0..4)
            .map(|i| DatasetId::ALL[i].model().sample(40, i as u64))
            .collect();
        let h = hybrid_test_set(&sets, 1, own_frac, seed);
        prop_assert_eq!(h.len(), 40);
        prop_assert_eq!(h[0].arrival, 0);
        prop_assert!(h.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    /// The combined pool size is per_client × clients (when pools are big
    /// enough) and the result is a normalized trace.
    #[test]
    fn combined_sizes(per in 1usize..30, seed in 0u64..100) {
        let sets: Vec<Vec<TaskSpec>> = (0..3)
            .map(|i| DatasetId::ALL[i].model().sample(30, i as u64))
            .collect();
        let c = combined_heterogeneous(&sets, per, seed);
        prop_assert_eq!(c.len(), per.min(30) * 3);
        prop_assert!(c.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }
}
