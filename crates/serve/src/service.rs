//! Micro-batched decision serving with admission control.
//!
//! [`DecisionService`] front-ends a set of [`Session`]s with a bounded
//! request queue: producers [`submit`](DecisionService::submit) decision
//! requests (rejected with [`ServeError::Overloaded`] once the queue is
//! full — backpressure is explicit, never silent), and the serving loop
//! drains them in arrival order with
//! [`decide_batch`](DecisionService::decide_batch). Every decision is
//! timed into the `serve/decision_us` histogram; queue depth, admissions,
//! rejections, and served decisions are all observable through
//! [`pfrl_telemetry`].

use crate::session::{Decision, Session};
use crate::store::PolicyStore;
use pfrl_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Opaque handle to an open serving session.
pub type SessionId = u64;

/// Errors surfaced by the serving front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is at capacity; the caller must back off.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// No snapshot exists for the requested client (or client/version).
    UnknownPolicy(String),
    /// The session id does not name an open session.
    UnknownSession(SessionId),
    /// A hot-swap version ramp could not be started (another ramp is
    /// still shadowing, or the candidate's shape disagrees with the
    /// serving fleet). See
    /// [`ShardedDecisionService::publish`](crate::ShardedDecisionService::publish).
    RampRejected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServeError::UnknownPolicy(who) => write!(f, "no policy snapshot for {who}"),
            ServeError::UnknownSession(id) => write!(f, "no open session {id}"),
            ServeError::RampRejected(why) => write!(f, "version ramp rejected: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Sizing knobs for the serving front end.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum queued (admitted, not yet served) decision requests.
    pub queue_capacity: usize,
    /// Maximum decisions served per [`DecisionService::decide_batch`] call.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { queue_capacity: 256, max_batch: 32 }
    }
}

/// The serving front end: policy store + open sessions + bounded queue.
pub struct DecisionService {
    store: PolicyStore,
    cfg: ServeConfig,
    sessions: BTreeMap<SessionId, Session>,
    queue: VecDeque<SessionId>,
    next_id: SessionId,
    telemetry: Telemetry,
}

impl DecisionService {
    /// Builds a service over an immutable snapshot store.
    pub fn new(store: PolicyStore, cfg: ServeConfig) -> Self {
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        Self {
            store,
            cfg,
            sessions: BTreeMap::new(),
            queue: VecDeque::with_capacity(cfg.queue_capacity),
            next_id: 0,
            telemetry: Telemetry::noop(),
        }
    }

    /// Routes serving metrics to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// Opens a session on the latest snapshot for `client`.
    pub fn open_session(&mut self, client: &str) -> Result<SessionId, ServeError> {
        let snap = self
            .store
            .latest(client)
            .ok_or_else(|| ServeError::UnknownPolicy(client.to_string()))?;
        let session =
            Session::new(snap).expect("store snapshots are pre-validated and instantiate cleanly");
        Ok(self.install(session))
    }

    /// Opens a session pinned to an exact `(client, version)` snapshot.
    pub fn open_session_at(&mut self, client: &str, version: u64) -> Result<SessionId, ServeError> {
        let snap = self
            .store
            .get(client, version)
            .ok_or_else(|| ServeError::UnknownPolicy(format!("{client}@v{version}")))?;
        let session =
            Session::new(snap).expect("store snapshots are pre-validated and instantiate cleanly");
        Ok(self.install(session))
    }

    fn install(&mut self, session: Session) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, session);
        self.telemetry.counter("serve/sessions_opened", 1);
        id
    }

    /// Shared view of an open session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Mutable view of an open session (e.g. to run an episode inline).
    pub fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id)
    }

    /// Closes a session, returning it; its queued requests become stale
    /// and are dropped (and counted) when the batch loop reaches them.
    pub fn close_session(&mut self, id: SessionId) -> Option<Session> {
        self.sessions.remove(&id)
    }

    /// Starts a new episode over `tasks` on session `id`.
    pub fn begin_episode(
        &mut self,
        id: SessionId,
        tasks: &[pfrl_workloads::TaskSpec],
    ) -> Result<(), ServeError> {
        let s = self.sessions.get_mut(&id).ok_or(ServeError::UnknownSession(id))?;
        s.begin_episode(tasks);
        Ok(())
    }

    /// Admits one decision request for session `id`, or rejects it.
    ///
    /// Rejection is the admission-control contract: when the queue is at
    /// capacity the caller gets [`ServeError::Overloaded`] immediately
    /// instead of unbounded buffering.
    pub fn submit(&mut self, id: SessionId) -> Result<(), ServeError> {
        if !self.sessions.contains_key(&id) {
            return Err(ServeError::UnknownSession(id));
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.telemetry.counter("serve/rejected", 1);
            return Err(ServeError::Overloaded { capacity: self.cfg.queue_capacity });
        }
        self.queue.push_back(id);
        self.telemetry.counter("serve/admitted", 1);
        self.telemetry.gauge("serve/queue_depth", self.queue.len() as f64);
        Ok(())
    }

    /// Admitted-but-unserved requests.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Serves up to `max_batch` queued requests in arrival order and
    /// returns `(session, decision)` pairs. Requests whose session was
    /// closed or whose episode already completed are dropped and counted
    /// as `serve/stale`. Per-decision latency lands in the
    /// `serve/decision_us` histogram.
    pub fn decide_batch(&mut self) -> Vec<(SessionId, Decision)> {
        let mut out = Vec::new();
        let enabled = self.telemetry.is_enabled();
        while out.len() < self.cfg.max_batch {
            let Some(id) = self.queue.pop_front() else { break };
            let Some(session) = self.sessions.get_mut(&id) else {
                self.telemetry.counter("serve/stale", 1);
                continue;
            };
            if session.is_done() {
                self.telemetry.counter("serve/stale", 1);
                continue;
            }
            let t0 = enabled.then(Instant::now);
            let d = session.decide();
            if let Some(t0) = t0 {
                self.telemetry.observe("serve/decision_us", t0.elapsed().as_nanos() as f64 / 1e3);
            }
            out.push((id, d));
        }
        self.telemetry.counter("serve/decisions", out.len() as u64);
        self.telemetry.gauge("serve/queue_depth", self.queue.len() as f64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{tiny_snapshot, tiny_tasks};
    use pfrl_telemetry::InMemoryRecorder;
    use std::sync::Arc;

    fn service(cfg: ServeConfig) -> DecisionService {
        let store =
            PolicyStore::from_snapshots(vec![tiny_snapshot("a"), tiny_snapshot("b")]).unwrap();
        DecisionService::new(store, cfg)
    }

    #[test]
    fn overload_is_rejected_explicitly() {
        let mut svc = service(ServeConfig { queue_capacity: 3, max_batch: 8 });
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(20)).unwrap();
        for _ in 0..3 {
            svc.submit(id).unwrap();
        }
        assert_eq!(svc.submit(id), Err(ServeError::Overloaded { capacity: 3 }));
        assert_eq!(svc.queue_depth(), 3);
        // Draining frees capacity again.
        assert_eq!(svc.decide_batch().len(), 3);
        assert_eq!(svc.queue_depth(), 0);
        svc.submit(id).unwrap();
    }

    #[test]
    fn batches_honor_max_batch_and_arrival_order() {
        let mut svc = service(ServeConfig { queue_capacity: 16, max_batch: 2 });
        let a = svc.open_session("a").unwrap();
        let b = svc.open_session("b").unwrap();
        svc.begin_episode(a, &tiny_tasks(20)).unwrap();
        svc.begin_episode(b, &tiny_tasks(20)).unwrap();
        for id in [a, b, a, b] {
            svc.submit(id).unwrap();
        }
        let first = svc.decide_batch();
        assert_eq!(first.iter().map(|(id, _)| *id).collect::<Vec<_>>(), [a, b]);
        let second = svc.decide_batch();
        assert_eq!(second.len(), 2);
        assert!(svc.decide_batch().is_empty());
    }

    #[test]
    fn unknown_targets_and_stale_requests_are_safe() {
        let mut svc = service(ServeConfig::default());
        assert!(matches!(svc.open_session("nope"), Err(ServeError::UnknownPolicy(_))));
        assert!(matches!(svc.open_session_at("a", 999), Err(ServeError::UnknownPolicy(_))));
        assert_eq!(svc.submit(42), Err(ServeError::UnknownSession(42)));
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(5)).unwrap();
        svc.submit(id).unwrap();
        svc.close_session(id).unwrap();
        // The queued request now points at a closed session: dropped, not served.
        assert!(svc.decide_batch().is_empty());
    }

    #[test]
    fn telemetry_counts_admissions_rejections_and_latency() {
        let rec = Arc::new(InMemoryRecorder::new());
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let mut svc = DecisionService::new(store, ServeConfig { queue_capacity: 2, max_batch: 8 })
            .with_telemetry(Telemetry::new(rec.clone()));
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(10)).unwrap();
        svc.submit(id).unwrap();
        svc.submit(id).unwrap();
        let _ = svc.submit(id); // rejected
        let served = svc.decide_batch().len() as u64;
        let snap = rec.snapshot();
        assert_eq!(snap.counter("serve/admitted"), 2);
        assert_eq!(snap.counter("serve/rejected"), 1);
        assert_eq!(snap.counter("serve/decisions"), served);
        assert_eq!(snap.gauge("serve/queue_depth"), Some(0.0));
        let h = snap.histogram("serve/decision_us").expect("latency histogram");
        assert_eq!(h.count(), served);
    }
}
