//! Immutable store of versioned policy snapshots.
//!
//! A [`PolicyStore`] is built once — from in-memory [`PolicySnapshot`]s or
//! from their serialized blobs — and never mutated afterwards, so serving
//! threads can share it freely behind an `Arc` without locks. Snapshots
//! are keyed by `(client, version)`; a client typically accumulates one
//! version per export (the version is the training episode cursor), and
//! [`PolicyStore::latest`] resolves the newest one.

use pfrl_fed::{FedError, PolicySnapshot};

/// Immutable, validated collection of policy snapshots.
pub struct PolicyStore {
    snaps: Vec<PolicySnapshot>,
}

impl PolicyStore {
    /// Builds a store from already-decoded snapshots. Every snapshot is
    /// [validated](PolicySnapshot::validate) and `(client, version)` pairs
    /// must be unique; violations surface as [`FedError::Snapshot`].
    pub fn from_snapshots(snaps: Vec<PolicySnapshot>) -> Result<Self, FedError> {
        for s in &snaps {
            s.validate()?;
        }
        for (i, a) in snaps.iter().enumerate() {
            if snaps[..i].iter().any(|b| b.client == a.client && b.version == a.version) {
                return Err(FedError::Snapshot(format!(
                    "duplicate snapshot for client {:?} version {}",
                    a.client, a.version
                )));
            }
        }
        Ok(Self { snaps })
    }

    /// Decodes and validates serialized snapshots (the
    /// [`PolicySnapshot::to_bytes`] wire format) into a store.
    pub fn from_blobs<'a>(blobs: impl IntoIterator<Item = &'a [u8]>) -> Result<Self, FedError> {
        let snaps =
            blobs.into_iter().map(PolicySnapshot::from_bytes).collect::<Result<Vec<_>, _>>()?;
        Self::from_snapshots(snaps)
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// All snapshots, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &PolicySnapshot> {
        self.snaps.iter()
    }

    /// Distinct client names, in first-seen order.
    pub fn clients(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.snaps {
            if !out.contains(&s.client.as_str()) {
                out.push(&s.client);
            }
        }
        out
    }

    /// The snapshot at an exact `(client, version)`.
    pub fn get(&self, client: &str, version: u64) -> Option<&PolicySnapshot> {
        self.snaps.iter().find(|s| s.client == client && s.version == version)
    }

    /// The highest-versioned snapshot for `client`.
    pub fn latest(&self, client: &str) -> Option<&PolicySnapshot> {
        self.snaps.iter().filter(|s| s.client == client).max_by_key(|s| s.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::tiny_snapshot;

    #[test]
    fn versioning_resolves_latest_per_client() {
        let mut v1 = tiny_snapshot("a");
        v1.version = 1;
        let mut v3 = tiny_snapshot("a");
        v3.version = 3;
        let b = tiny_snapshot("b");
        let store = PolicyStore::from_snapshots(vec![v1, v3, b]).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.clients(), ["a", "b"]);
        assert_eq!(store.latest("a").unwrap().version, 3);
        assert_eq!(store.get("a", 1).unwrap().version, 1);
        assert!(store.get("a", 2).is_none());
        assert!(store.latest("missing").is_none());
    }

    #[test]
    fn duplicate_and_invalid_snapshots_rejected() {
        let dup = vec![tiny_snapshot("a"), tiny_snapshot("a")];
        assert!(matches!(PolicyStore::from_snapshots(dup), Err(FedError::Snapshot(_))));
        let mut bad = tiny_snapshot("a");
        bad.actor_params.pop();
        assert!(PolicyStore::from_snapshots(vec![bad]).is_err());
    }

    #[test]
    fn blob_roundtrip_builds_identical_store() {
        let snaps = [tiny_snapshot("a"), tiny_snapshot("b")];
        let blobs: Vec<Vec<u8>> = snaps.iter().map(|s| s.to_bytes()).collect();
        let store = PolicyStore::from_blobs(blobs.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a", snaps[0].version).unwrap().actor_params, snaps[0].actor_params);
        assert!(PolicyStore::from_blobs([b"junk".as_slice()]).is_err());
    }
}
