//! Sharded, wave-batched decision serving with hot-swap version ramps.
//!
//! [`ShardedDecisionService`] scales [`DecisionService`](crate::DecisionService)
//! across cores. The design is share-nothing on the hot path:
//!
//! * **Shard ownership** — every session lives in exactly one shard, chosen
//!   at open time by hashing the session's global sequence number. The
//!   session id encodes `(generation, slot, shard)`, so routing a request
//!   touches only arithmetic plus that one shard's lock; there are no
//!   cross-shard locks anywhere on the decision path.
//! * **Per-shard admission queues** — [`submit`](ShardedDecisionService::submit)
//!   enqueues into the owning shard and applies the same explicit
//!   backpressure contract as the sequential service
//!   ([`ServeError::Overloaded`], never silent buffering).
//! * **Wave batching** — a worker draining a shard pops up to `max_batch`
//!   requests, groups them by policy *plan* (one per distinct
//!   `(client, version)` snapshot), fills one state matrix per plan, and
//!   runs a **single batched GEMM** per plan instead of one matvec per
//!   session. Per output element the kernel accumulates in the same order
//!   as the single-row path, so a wave-batched decision is bit-identical
//!   to [`Session::decide`] — the equivalence suite at
//!   `tests/policy_serving.rs` asserts this for every algorithm.
//! * **Merged ledger** — each shard keeps plain `u64` counters; the
//!   [`ledger`](ShardedDecisionService::ledger) sums them into one
//!   [`ServeLedger`] whose invariant (`admitted = decisions + stale +
//!   still-queued`) the stress suite checks exactly.
//!
//! # Hot-swap ramp state machine
//!
//! [`publish`](ShardedDecisionService::publish) starts a *version ramp*
//! for one client:
//!
//! ```text
//!            validate fails                    non-finite shadow logits
//! publish ──────────────────► RolledBack ◄──────────────────┐
//!    │                                                      │
//!    └────► Shadow ── shadow_ok ≥ target (CAS) ──► Committed│
//!              │                                            │
//!              └────────────────────────────────────────────┘
//! ```
//!
//! While `Shadow`, the candidate decides *in shadow*: each wave that
//! serves the ramped client also runs the candidate actor over the same
//! state matrix and checks every logit is finite — the serving invariant
//! the eval gate enforces offline. The old snapshot keeps serving. Once
//! the candidate has shadowed `shadow_target` decisions the ramp commits
//! (a single atomic CAS); every shard adopts the new parameters at its
//! next wave boundary, after which no decision carries a retired version.
//! A non-finite shadow logit (or invalid candidate parameters at publish
//! time) rolls the ramp back automatically — serving traffic never sees
//! the poisoned snapshot.

use crate::service::{ServeConfig, ServeError};
use crate::session::{Decision, Session};
use crate::store::PolicyStore;
use crate::SessionId;
use pfrl_fed::PolicySnapshot;
use pfrl_nn::{Activation, Mlp};
use pfrl_sim::EpisodeMetrics;
use pfrl_telemetry::Telemetry;
use pfrl_tensor::Matrix;
use pfrl_workloads::TaskSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

const SHARD_BITS: u32 = 8;
const SLOT_BITS: u32 = 28;
const SHARD_MASK: u64 = (1 << SHARD_BITS) - 1;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

fn make_id(generation: u64, slot: usize, shard: usize) -> SessionId {
    (generation << (SHARD_BITS + SLOT_BITS)) | ((slot as u64) << SHARD_BITS) | shard as u64
}

fn shard_of(id: SessionId) -> usize {
    (id & SHARD_MASK) as usize
}

fn slot_of(id: SessionId) -> usize {
    ((id >> SHARD_BITS) & SLOT_MASK) as usize
}

fn generation_of(id: SessionId) -> u64 {
    id >> (SHARD_BITS + SLOT_BITS)
}

/// SplitMix64 finalizer — maps the open-order sequence number to a shard
/// uniformly, so adversarial open orders cannot pile sessions onto one
/// shard.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sizing knobs for the sharded front end.
#[derive(Debug, Clone, Copy)]
pub struct ShardedServeConfig {
    /// Number of shards (≤ 256). One worker core per shard is the
    /// intended deployment; shards share nothing on the decision path.
    pub shards: usize,
    /// Per-shard admission queue capacity.
    pub queue_capacity: usize,
    /// Maximum decisions per wave (per shard drain call).
    pub max_batch: usize,
}

impl Default for ShardedServeConfig {
    fn default() -> Self {
        let s = ServeConfig::default();
        Self { shards: 4, queue_capacity: s.queue_capacity, max_batch: s.max_batch }
    }
}

/// Merged serving ledger, summed over all shards. The books must balance:
/// `admitted == decisions + stale + queued` at any quiescent point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeLedger {
    /// Requests accepted into an admission queue.
    pub admitted: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Admitted requests dropped (session closed or episode done).
    pub stale: u64,
    /// Decisions actually served.
    pub decisions: u64,
    /// Requests admitted but not yet drained.
    pub queued: u64,
    /// Sessions opened over the service lifetime.
    pub opened: u64,
    /// Sessions closed over the service lifetime.
    pub closed: u64,
}

/// Ramp lifecycle states (see the module docs for the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RampStatus {
    /// Candidate is deciding in shadow; the old snapshot serves.
    Shadow,
    /// Candidate committed; shards cut over at their next wave boundary.
    Committed,
    /// Candidate was rejected by validation or shadow evaluation.
    RolledBack,
}

const RAMP_SHADOW: u8 = 0;
const RAMP_COMMITTED: u8 = 1;
const RAMP_ROLLED_BACK: u8 = 2;

/// Shared core of one version ramp. Shards hold an `Arc` and drive the
/// state machine with CAS transitions; the publisher watches it through a
/// [`RampHandle`].
struct RampCore {
    client: String,
    version: u64,
    sizes: [usize; 3],
    params: Vec<f32>,
    shadow_target: u64,
    shadow_ok: AtomicU64,
    state: AtomicU8,
}

impl RampCore {
    fn status(&self) -> RampStatus {
        match self.state.load(Ordering::Acquire) {
            RAMP_SHADOW => RampStatus::Shadow,
            RAMP_COMMITTED => RampStatus::Committed,
            _ => RampStatus::RolledBack,
        }
    }

    /// CAS `Shadow → to`; returns whether this caller won the transition.
    fn transition(&self, to: u8) -> bool {
        self.state.compare_exchange(RAMP_SHADOW, to, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }
}

/// Publisher-side view of a ramp started by
/// [`ShardedDecisionService::publish`].
pub struct RampHandle {
    core: Arc<RampCore>,
}

impl RampHandle {
    /// Current lifecycle state.
    pub fn status(&self) -> RampStatus {
        self.core.status()
    }

    /// Decisions the candidate has shadowed so far.
    pub fn shadowed(&self) -> u64 {
        self.core.shadow_ok.load(Ordering::Relaxed)
    }

    /// Version the ramp is promoting to.
    pub fn version(&self) -> u64 {
        self.core.version
    }
}

/// One policy plan: the batched actor for every session of a shard that
/// pins the same `(client, version)` snapshot, plus that plan's wave
/// buffers. Plan parameters are bit-identical to each member session's
/// own actor, so the plan GEMM reproduces each session's matvec exactly.
struct Plan {
    client: String,
    version: u64,
    sizes: [usize; 3],
    actor: Mlp,
    /// Slots of this plan's members in the wave being assembled.
    rows: Vec<usize>,
    states: Matrix,
    logits: Matrix,
}

struct Entry {
    generation: u64,
    plan: usize,
    in_wave: bool,
    session: Session,
}

#[derive(Default)]
struct Counters {
    admitted: u64,
    rejected: u64,
    stale: u64,
    decisions: u64,
    opened: u64,
    closed: u64,
}

/// One shard: slab of owned sessions, admission queue, plans, scratch.
struct Shard {
    slots: Vec<Option<Entry>>,
    /// Next generation per slot; bumped on close so stale ids miss.
    slot_generation: Vec<u64>,
    free: Vec<usize>,
    queue: VecDeque<SessionId>,
    plans: Vec<Plan>,
    /// Wave scratch: `(id, slot, plan, row-within-plan)` in arrival order.
    wave: Vec<(SessionId, usize, usize, usize)>,
    state_tmp: Vec<f32>,
    mask_tmp: Vec<bool>,
    counters: Counters,
    /// Ramp epoch this shard has synchronized with.
    seen_epoch: u64,
    ramp: Option<Arc<RampCore>>,
    /// Lazily-built candidate actor for shadow forwards.
    ramp_actor: Option<Mlp>,
    ramp_logits: Matrix,
}

impl Shard {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            slot_generation: Vec::new(),
            free: Vec::new(),
            queue: VecDeque::new(),
            plans: Vec::new(),
            wave: Vec::new(),
            state_tmp: Vec::new(),
            mask_tmp: Vec::new(),
            counters: Counters::default(),
            seen_epoch: 0,
            ramp: None,
            ramp_actor: None,
            ramp_logits: Matrix::zeros(0, 0),
        }
    }

    fn entry_mut(&mut self, id: SessionId) -> Option<&mut Entry> {
        let generation = generation_of(id);
        self.slots.get_mut(slot_of(id))?.as_mut().filter(|e| e.generation == generation)
    }

    /// Index of the plan for `(client, version)`, creating it from the
    /// snapshot if this shard has not seen that policy yet. Plans are few
    /// (one per distinct live snapshot), so a linear scan beats a map.
    fn plan_index(&mut self, snap: &PolicySnapshot) -> usize {
        if let Some(i) =
            self.plans.iter().position(|p| p.version == snap.version && p.client == snap.client)
        {
            return i;
        }
        let mut actor = Mlp::new(&snap.sizes(), Activation::Tanh, &mut SmallRng::seed_from_u64(0));
        actor.set_flat_params(&snap.actor_params);
        self.plans.push(Plan {
            client: snap.client.clone(),
            version: snap.version,
            sizes: snap.sizes(),
            actor,
            rows: Vec::new(),
            states: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
        });
        self.plans.len() - 1
    }

    /// Applies a committed ramp: every plan (and member session) of the
    /// ramped client at an older version adopts the candidate parameters.
    fn apply_commit(&mut self, core: &RampCore) {
        let mut upgraded = vec![false; self.plans.len()];
        for (i, plan) in self.plans.iter_mut().enumerate() {
            if plan.client == core.client && plan.version < core.version {
                plan.actor.set_flat_params(&core.params);
                plan.version = core.version;
                upgraded[i] = true;
            }
        }
        for entry in self.slots.iter_mut().flatten() {
            if upgraded[entry.plan] {
                entry.session.adopt_params(&core.params, core.version);
            }
        }
    }
}

/// The sharded serving front end. `&self` everywhere: the service is
/// `Sync` and one worker thread per shard drains waves concurrently.
pub struct ShardedDecisionService {
    store: PolicyStore,
    cfg: ShardedServeConfig,
    shards: Vec<Mutex<Shard>>,
    next_seq: AtomicU64,
    /// Bumped on publish; shards lazily pick up the new ramp at wave start.
    ramp_epoch: AtomicU64,
    ramp: Mutex<Option<Arc<RampCore>>>,
    telemetry: Telemetry,
}

impl ShardedDecisionService {
    /// Builds a sharded service over an immutable snapshot store.
    pub fn new(store: PolicyStore, cfg: ShardedServeConfig) -> Self {
        assert!(cfg.shards >= 1 && cfg.shards <= 1 << SHARD_BITS, "1..=256 shards");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        Self {
            store,
            cfg,
            shards: (0..cfg.shards).map(|_| Mutex::new(Shard::new())).collect(),
            next_seq: AtomicU64::new(0),
            ramp_epoch: AtomicU64::new(0),
            ramp: Mutex::new(None),
            telemetry: Telemetry::noop(),
        }
    }

    /// Routes serving metrics to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[shard].lock().expect("shard lock poisoned")
    }

    fn install(&self, snap: &PolicySnapshot) -> SessionId {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let shard_idx = (splitmix64(seq) % self.cfg.shards as u64) as usize;
        let session =
            Session::new(snap).expect("store snapshots are pre-validated and instantiate cleanly");
        let mut shard = self.lock(shard_idx);
        let plan = shard.plan_index(snap);
        let slot = match shard.free.pop() {
            Some(s) => s,
            None => {
                shard.slots.push(None);
                shard.slot_generation.push(0);
                shard.slots.len() - 1
            }
        };
        assert!((slot as u64) <= SLOT_MASK, "slot space exhausted");
        let generation = shard.slot_generation[slot];
        shard.slots[slot] = Some(Entry { generation, plan, in_wave: false, session });
        shard.counters.opened += 1;
        drop(shard);
        self.telemetry.counter("serve/sessions_opened", 1);
        make_id(generation, slot, shard_idx)
    }

    /// Opens a session on the latest snapshot for `client`.
    pub fn open_session(&self, client: &str) -> Result<SessionId, ServeError> {
        let snap = self
            .store
            .latest(client)
            .ok_or_else(|| ServeError::UnknownPolicy(client.to_string()))?;
        Ok(self.install(snap))
    }

    /// Opens a session pinned to an exact `(client, version)` snapshot.
    pub fn open_session_at(&self, client: &str, version: u64) -> Result<SessionId, ServeError> {
        let snap = self
            .store
            .get(client, version)
            .ok_or_else(|| ServeError::UnknownPolicy(format!("{client}@v{version}")))?;
        Ok(self.install(snap))
    }

    /// Closes a session; queued requests for it become stale.
    pub fn close_session(&self, id: SessionId) -> Result<(), ServeError> {
        let mut shard = self.lock(shard_of(id));
        let slot = slot_of(id);
        if shard.entry_mut(id).is_none() {
            return Err(ServeError::UnknownSession(id));
        }
        shard.slots[slot] = None;
        shard.slot_generation[slot] += 1;
        shard.free.push(slot);
        shard.counters.closed += 1;
        Ok(())
    }

    /// Starts a new episode over `tasks` on session `id`.
    pub fn begin_episode(&self, id: SessionId, tasks: &[TaskSpec]) -> Result<(), ServeError> {
        let mut shard = self.lock(shard_of(id));
        let entry = shard.entry_mut(id).ok_or(ServeError::UnknownSession(id))?;
        entry.session.begin_episode(tasks);
        Ok(())
    }

    /// Runs `f` against the session (episode metrics, identity, …).
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&Session) -> R,
    ) -> Result<R, ServeError> {
        let mut shard = self.lock(shard_of(id));
        let entry = shard.entry_mut(id).ok_or(ServeError::UnknownSession(id))?;
        Ok(f(&entry.session))
    }

    /// Metrics of the session's current episode.
    pub fn metrics(&self, id: SessionId) -> Result<EpisodeMetrics, ServeError> {
        self.with_session(id, |s| s.metrics())
    }

    /// Admits one decision request into the owning shard's queue, or
    /// rejects it with explicit backpressure.
    pub fn submit(&self, id: SessionId) -> Result<(), ServeError> {
        let mut shard = self.lock(shard_of(id));
        if shard.entry_mut(id).is_none() {
            return Err(ServeError::UnknownSession(id));
        }
        if shard.queue.len() >= self.cfg.queue_capacity {
            shard.counters.rejected += 1;
            drop(shard);
            self.telemetry.counter("serve/rejected", 1);
            return Err(ServeError::Overloaded { capacity: self.cfg.queue_capacity });
        }
        shard.queue.push_back(id);
        shard.counters.admitted += 1;
        drop(shard);
        self.telemetry.counter("serve/admitted", 1);
        Ok(())
    }

    /// Admits a batch of requests, returning how many were accepted.
    ///
    /// The owning shard is locked once per **run** of consecutive ids on
    /// the same shard — producers that keep per-shard batches (ids sort
    /// stably by [`shard_of`]) pay one lock per shard per call instead of
    /// one per request. Requests that hit a full queue or name a dead
    /// session are not admitted and are counted as rejected.
    pub fn submit_many(&self, ids: &[SessionId]) -> usize {
        let mut admitted = 0usize;
        let mut i = 0;
        while i < ids.len() {
            let shard_idx = shard_of(ids[i]);
            let mut shard = self.lock(shard_idx);
            while i < ids.len() && shard_of(ids[i]) == shard_idx {
                let id = ids[i];
                i += 1;
                if shard.entry_mut(id).is_none() || shard.queue.len() >= self.cfg.queue_capacity {
                    shard.counters.rejected += 1;
                    continue;
                }
                shard.queue.push_back(id);
                shard.counters.admitted += 1;
                admitted += 1;
            }
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter("serve/admitted", admitted as u64);
            if admitted < ids.len() {
                self.telemetry.counter("serve/rejected", (ids.len() - admitted) as u64);
            }
        }
        admitted
    }

    /// Admitted-but-unserved requests across all shards.
    pub fn queue_depth(&self) -> usize {
        (0..self.cfg.shards).map(|s| self.lock(s).queue.len()).sum()
    }

    /// Ledger merged over all shards.
    pub fn ledger(&self) -> ServeLedger {
        let mut out = ServeLedger::default();
        for s in 0..self.cfg.shards {
            let shard = self.lock(s);
            out.admitted += shard.counters.admitted;
            out.rejected += shard.counters.rejected;
            out.stale += shard.counters.stale;
            out.decisions += shard.counters.decisions;
            out.queued += shard.queue.len() as u64;
            out.opened += shard.counters.opened;
            out.closed += shard.counters.closed;
        }
        out
    }

    /// Drains one wave from `shard` (up to `max_batch` requests) and
    /// appends `(session, decision)` pairs in arrival order to `out`.
    ///
    /// The wave is assembled so each session decides at most once per
    /// wave (a repeated id stops collection and stays queued — its second
    /// decision must see the first one's environment transition). All
    /// member observations are gathered first, then **one batched GEMM per
    /// plan** computes every member's logits, then masks/argmax/steps run
    /// in arrival order. Steady-state the call allocates nothing: plans,
    /// queue, and scratch persist in the shard (audited by
    /// `tests/zero_alloc.rs`).
    pub fn decide_wave_into(&self, shard_idx: usize, out: &mut Vec<(SessionId, Decision)>) {
        let mut shard = self.lock(shard_idx);
        let shard = &mut *shard;
        self.sync_ramp(shard);

        // Collect the wave: pop → resolve → one-decision-per-session.
        shard.wave.clear();
        while shard.wave.len() < self.cfg.max_batch {
            let Some(id) = shard.queue.pop_front() else { break };
            let slot = slot_of(id);
            let generation = generation_of(id);
            let live = shard
                .slots
                .get(slot)
                .is_some_and(|s| s.as_ref().is_some_and(|e| e.generation == generation));
            if !live {
                shard.counters.stale += 1;
                continue;
            }
            let entry = shard.slots[slot].as_mut().expect("checked live");
            if entry.session.is_done() {
                shard.counters.stale += 1;
                continue;
            }
            if entry.in_wave {
                shard.queue.push_front(id);
                break;
            }
            entry.in_wave = true;
            let plan = entry.plan;
            let row = shard.plans[plan].rows.len();
            shard.plans[plan].rows.push(slot);
            shard.wave.push((id, slot, plan, row));
        }
        if shard.wave.is_empty() {
            return;
        }

        // Observe every member into its plan's state matrix. Sessions own
        // disjoint environments, so observing all before stepping any is
        // order-equivalent to the sequential service.
        for plan in shard.plans.iter_mut().filter(|p| !p.rows.is_empty()) {
            plan.states.resize(plan.rows.len(), plan.sizes[0]);
        }
        for w in 0..shard.wave.len() {
            let (_, slot, plan, row) = shard.wave[w];
            let entry = shard.slots[slot].as_ref().expect("wave member present");
            entry.session.observe_into(&mut shard.state_tmp);
            shard.plans[plan].states.row_mut(row).copy_from_slice(&shard.state_tmp);
        }

        // One batched forward per plan; shadow-evaluate an active ramp on
        // the same states.
        let ramp = shard.ramp.clone();
        for p in 0..shard.plans.len() {
            if shard.plans[p].rows.is_empty() {
                continue;
            }
            let (states, is_ramp_target) = {
                let plan = &mut shard.plans[p];
                let states = std::mem::replace(&mut plan.states, Matrix::zeros(0, 0));
                plan.actor.forward_into(&states, &mut plan.logits);
                let is_target = ramp.as_ref().is_some_and(|c| {
                    c.status() == RampStatus::Shadow
                        && plan.client == c.client
                        && plan.version < c.version
                });
                (states, is_target)
            };
            if is_ramp_target {
                let core = ramp.as_ref().expect("checked above").clone();
                self.shadow_eval(shard, &core, &states);
            }
            shard.plans[p].states = states;
        }

        // Finish in arrival order: mask → argmax → step per member.
        for w in 0..shard.wave.len() {
            let (id, slot, plan, row) = shard.wave[w];
            let logits = shard.plans[plan].logits.row_mut(row);
            let entry = shard.slots[slot].as_mut().expect("wave member present");
            let d = entry.session.finish_with_logits_in(logits, &mut shard.mask_tmp);
            entry.in_wave = false;
            out.push((id, d));
        }
        shard.counters.decisions += shard.wave.len() as u64;
        for plan in &mut shard.plans {
            plan.rows.clear();
        }
        let served = shard.wave.len() as u64;
        shard.wave.clear();
        if self.telemetry.is_enabled() {
            self.telemetry.counter("serve/decisions", served);
        }
    }

    /// Allocating convenience over
    /// [`decide_wave_into`](Self::decide_wave_into).
    pub fn decide_wave(&self, shard_idx: usize) -> Vec<(SessionId, Decision)> {
        let mut out = Vec::new();
        self.decide_wave_into(shard_idx, &mut out);
        out
    }

    /// Runs the candidate over the wave's states and drives the ramp state
    /// machine: non-finite logits roll back; enough shadowed decisions
    /// commit.
    fn shadow_eval(&self, shard: &mut Shard, core: &Arc<RampCore>, states: &Matrix) {
        let actor = shard.ramp_actor.get_or_insert_with(|| {
            let mut a = Mlp::new(&core.sizes, Activation::Tanh, &mut SmallRng::seed_from_u64(0));
            a.set_flat_params(&core.params);
            a
        });
        actor.forward_into(states, &mut shard.ramp_logits);
        if shard.ramp_logits.as_slice().iter().any(|v| !v.is_finite()) {
            if core.transition(RAMP_ROLLED_BACK) {
                self.telemetry.counter("serve/ramp_rollbacks", 1);
            }
            shard.ramp = None;
            shard.ramp_actor = None;
            return;
        }
        let rows = states.rows() as u64;
        let total = core.shadow_ok.fetch_add(rows, Ordering::AcqRel) + rows;
        if total >= core.shadow_target && core.transition(RAMP_COMMITTED) {
            self.telemetry.counter("serve/ramp_committed", 1);
        }
    }

    /// Picks up a newly published ramp and reacts to terminal states: a
    /// committed ramp is applied to this shard's plans and sessions (the
    /// cutover point for this shard); a rolled-back ramp is discarded.
    fn sync_ramp(&self, shard: &mut Shard) {
        let epoch = self.ramp_epoch.load(Ordering::Acquire);
        if shard.seen_epoch != epoch {
            shard.seen_epoch = epoch;
            shard.ramp = self.ramp.lock().expect("ramp lock poisoned").clone();
            shard.ramp_actor = None;
        }
        if let Some(core) = shard.ramp.clone() {
            match core.status() {
                RampStatus::Shadow => {}
                RampStatus::Committed => {
                    shard.apply_commit(&core);
                    shard.ramp = None;
                    shard.ramp_actor = None;
                }
                RampStatus::RolledBack => {
                    shard.ramp = None;
                    shard.ramp_actor = None;
                }
            }
        }
    }

    /// Publishes `candidate` as a version ramp for its client: the
    /// candidate decides in shadow until it has matched `shadow_target`
    /// decisions with finite logits, then commits fleet-wide; any
    /// invariant violation rolls it back automatically.
    ///
    /// Returns the handle even when validation fails — the caller
    /// observes the rollback through it — but refuses with
    /// [`ServeError::RampRejected`] if another ramp is still shadowing,
    /// the client is unknown, or the candidate's shape disagrees with the
    /// serving fleet.
    pub fn publish(
        &self,
        candidate: &PolicySnapshot,
        shadow_target: u64,
    ) -> Result<RampHandle, ServeError> {
        assert!(shadow_target >= 1, "shadow_target must be >= 1");
        let serving = self
            .store
            .latest(&candidate.client)
            .ok_or_else(|| ServeError::UnknownPolicy(candidate.client.clone()))?;
        if candidate.sizes() != serving.sizes() {
            return Err(ServeError::RampRejected(format!(
                "candidate sizes {:?} do not match serving sizes {:?}",
                candidate.sizes(),
                serving.sizes()
            )));
        }
        let mut slot = self.ramp.lock().expect("ramp lock poisoned");
        if let Some(active) = slot.as_ref() {
            if active.status() == RampStatus::Shadow {
                return Err(ServeError::RampRejected(format!(
                    "ramp to {}@v{} still shadowing",
                    active.client, active.version
                )));
            }
        }
        let core = Arc::new(RampCore {
            client: candidate.client.clone(),
            version: candidate.version,
            sizes: candidate.sizes(),
            params: candidate.actor_params.clone(),
            shadow_target,
            shadow_ok: AtomicU64::new(0),
            state: AtomicU8::new(RAMP_SHADOW),
        });
        self.telemetry.counter("serve/ramp_published", 1);
        if candidate.validate().is_err() {
            // Poisoned candidate (non-finite parameters, shape lies, …):
            // never instantiated, never shadows — immediate rollback.
            core.state.store(RAMP_ROLLED_BACK, Ordering::Release);
            self.telemetry.counter("serve/ramp_rollbacks", 1);
            return Ok(RampHandle { core });
        }
        *slot = Some(core.clone());
        drop(slot);
        self.ramp_epoch.fetch_add(1, Ordering::Release);
        Ok(RampHandle { core })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{tiny_snapshot, tiny_tasks};

    fn sharded(shards: usize) -> ShardedDecisionService {
        let store =
            PolicyStore::from_snapshots(vec![tiny_snapshot("a"), tiny_snapshot("b")]).unwrap();
        ShardedDecisionService::new(
            store,
            ShardedServeConfig { shards, queue_capacity: 64, max_batch: 8 },
        )
    }

    #[test]
    fn id_encoding_roundtrips() {
        let id = make_id(7, 1234, 31);
        assert_eq!(shard_of(id), 31);
        assert_eq!(slot_of(id), 1234);
        assert_eq!(generation_of(id), 7);
    }

    #[test]
    fn sessions_spread_and_serve_across_shards() {
        let svc = sharded(4);
        let ids: Vec<_> = (0..16).map(|_| svc.open_session("a").unwrap()).collect();
        let used: std::collections::BTreeSet<_> = ids.iter().map(|&id| shard_of(id)).collect();
        assert!(used.len() > 1, "16 sessions should span more than one shard");
        for &id in &ids {
            svc.begin_episode(id, &tiny_tasks(6)).unwrap();
            svc.submit(id).unwrap();
        }
        let mut served = 0;
        for s in 0..svc.shards() {
            served += svc.decide_wave(s).len();
        }
        assert_eq!(served, 16);
        let ledger = svc.ledger();
        assert_eq!(ledger.admitted, 16);
        assert_eq!(ledger.decisions, 16);
        assert_eq!(ledger.queued, 0);
    }

    #[test]
    fn stale_and_unknown_ids_are_counted_not_served() {
        let svc = sharded(2);
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(4)).unwrap();
        svc.submit(id).unwrap();
        svc.close_session(id).unwrap();
        assert_eq!(svc.submit(id), Err(ServeError::UnknownSession(id)));
        let mut out = Vec::new();
        for s in 0..svc.shards() {
            svc.decide_wave_into(s, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(svc.ledger().stale, 1);
        // The slot is recycled under a fresh generation: the old id
        // still resolves nowhere.
        let id2 = svc.open_session("a").unwrap();
        if shard_of(id2) == shard_of(id) {
            assert_ne!(id, id2);
        }
    }

    #[test]
    fn queue_overflow_rejects_explicitly() {
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let svc = ShardedDecisionService::new(
            store,
            ShardedServeConfig { shards: 1, queue_capacity: 2, max_batch: 8 },
        );
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(10)).unwrap();
        svc.submit(id).unwrap();
        svc.submit(id).unwrap();
        assert_eq!(svc.submit(id), Err(ServeError::Overloaded { capacity: 2 }));
        assert_eq!(svc.ledger().rejected, 1);
    }

    #[test]
    fn repeated_session_decides_once_per_wave() {
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let svc = ShardedDecisionService::new(
            store,
            ShardedServeConfig { shards: 1, queue_capacity: 64, max_batch: 8 },
        );
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(10)).unwrap();
        for _ in 0..3 {
            svc.submit(id).unwrap();
        }
        // One wave serves exactly one decision for the session; the rest
        // stay queued for later waves.
        assert_eq!(svc.decide_wave(0).len(), 1);
        assert_eq!(svc.queue_depth(), 2);
        assert_eq!(svc.decide_wave(0).len(), 1);
        assert_eq!(svc.decide_wave(0).len(), 1);
        assert_eq!(svc.queue_depth(), 0);
    }

    #[test]
    fn ramp_shadow_commit_upgrades_versions() {
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let svc = ShardedDecisionService::new(
            store,
            ShardedServeConfig { shards: 1, queue_capacity: 64, max_batch: 8 },
        );
        let id = svc.open_session("a").unwrap();
        svc.begin_episode(id, &tiny_tasks(30)).unwrap();
        let mut candidate = tiny_snapshot("a");
        candidate.version += 1;
        let ramp = svc.publish(&candidate, 2).unwrap();
        assert_eq!(ramp.status(), RampStatus::Shadow);
        let old_version = tiny_snapshot("a").version;
        // Shadow phase: old version serves while the candidate evaluates.
        let mut shadow_decisions = 0;
        while ramp.status() == RampStatus::Shadow {
            svc.submit(id).unwrap();
            let out = svc.decide_wave(0);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].1.version, old_version);
            shadow_decisions += 1;
            assert!(shadow_decisions < 50, "ramp never committed");
        }
        assert_eq!(ramp.status(), RampStatus::Committed);
        assert!(ramp.shadowed() >= 2);
        // After the cutover wave boundary every decision carries the new
        // version.
        svc.submit(id).unwrap();
        let out = svc.decide_wave(0);
        assert_eq!(out[0].1.version, candidate.version);
    }

    #[test]
    fn poisoned_candidate_rolls_back_without_serving() {
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let svc = ShardedDecisionService::new(store, ShardedServeConfig::default());
        let mut poisoned = tiny_snapshot("a");
        poisoned.version += 1;
        poisoned.actor_params[3] = f32::NAN;
        let ramp = svc.publish(&poisoned, 4).unwrap();
        assert_eq!(ramp.status(), RampStatus::RolledBack);
        assert_eq!(ramp.shadowed(), 0);
        // A fresh, healthy ramp can start immediately afterwards.
        let mut healthy = tiny_snapshot("a");
        healthy.version += 2;
        assert!(svc.publish(&healthy, 1).is_ok());
    }

    #[test]
    fn concurrent_shadow_ramps_are_rejected() {
        let store = PolicyStore::from_snapshots(vec![tiny_snapshot("a")]).unwrap();
        let svc = ShardedDecisionService::new(store, ShardedServeConfig::default());
        let mut c1 = tiny_snapshot("a");
        c1.version += 1;
        svc.publish(&c1, 100).unwrap();
        let mut c2 = tiny_snapshot("a");
        c2.version += 2;
        assert!(matches!(svc.publish(&c2, 1), Err(ServeError::RampRejected(_))));
        // Unknown clients and mismatched shapes are rejected too.
        let mut other = tiny_snapshot("nobody");
        other.version += 1;
        assert!(matches!(svc.publish(&other, 1), Err(ServeError::UnknownPolicy(_))));
    }
}
