//! `pfrl-serve` — online policy serving for trained PFRL-DM federations.
//!
//! Training (the `pfrl-fed` runners) ends with each client exporting an
//! inference-only [`PolicySnapshot`](pfrl_fed::PolicySnapshot): the actor
//! weights plus the environment definition (dims, VM fleet, reward config)
//! they were trained against. This crate turns those snapshots into a
//! serving plane:
//!
//! * [`PolicyStore`] — an immutable, validated collection of snapshots,
//!   keyed by `(client, version)`, safe to share across threads;
//! * [`Session`] — one cluster's stateful serving session: an environment
//!   mirror plus the frozen greedy policy. The per-decision hot path
//!   ([`Session::decide`]) is allocation-free at steady state via a
//!   thread-local scratch pool;
//! * [`DecisionService`] — micro-batched serving with admission control:
//!   a bounded request queue that rejects with [`ServeError::Overloaded`]
//!   instead of buffering without bound, draining in arrival order with
//!   [`DecisionService::decide_batch`]. Decision latency, queue depth,
//!   admissions, and rejections are all reported through `pfrl-telemetry`;
//! * [`ShardedDecisionService`] — the scale-out front end: sessions are
//!   hashed to share-nothing shards (one worker core each), waves of
//!   concurrent same-snapshot requests collapse into a single batched
//!   GEMM, and new snapshot versions roll out through shadow-evaluated
//!   hot-swap ramps ([`ShardedDecisionService::publish`]) with automatic
//!   rollback. See the [`shard`] module docs for the ownership rule and
//!   the ramp state machine.
//!
//! Served decisions are bit-identical to the trainer's greedy evaluation
//! of the same policy — whether decided one at a time or in a sharded
//! wave — and the fidelity tests in `tests/policy_serving.rs` (workspace
//! root) assert this for all four federation algorithms.
//!
//! # Example: snapshot → store → batched decisions
//!
//! ```
//! use pfrl_serve::{DecisionService, PolicyStore, ServeConfig};
//! use pfrl_fed::PolicySnapshot;
//! use pfrl_nn::{Activation, Mlp};
//! use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
//! use pfrl_workloads::DatasetId;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // In production the snapshot comes from a trained federation
//! // (`TrainedFederation::policy_snapshots()`); here we forge a tiny one.
//! let dims = EnvDims::new(2, 8, 64.0, 3);
//! let actor = Mlp::new(
//!     &[dims.state_dim(), 8, dims.action_dim()],
//!     Activation::Tanh,
//!     &mut SmallRng::seed_from_u64(1),
//! );
//! let snapshot = PolicySnapshot {
//!     algorithm: "PFRL-DM".into(),
//!     client: "bank-0".into(),
//!     version: 1,
//!     dims,
//!     env_cfg: EnvConfig::default(),
//!     vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
//!     hidden: 8,
//!     mask_actions: true,
//!     actor_params: actor.flat_params(),
//! };
//!
//! let store = PolicyStore::from_blobs([snapshot.to_bytes().as_slice()]).unwrap();
//! let mut svc = DecisionService::new(store, ServeConfig::default());
//! let id = svc.open_session("bank-0").unwrap();
//! svc.begin_episode(id, &DatasetId::K8s.model().sample(10, 7)).unwrap();
//! svc.submit(id).unwrap();
//! svc.submit(id).unwrap();
//! let served = svc.decide_batch();
//! assert_eq!(served.len(), 2);
//! ```

pub mod service;
pub mod session;
pub mod shard;
pub mod store;

pub use service::{DecisionService, ServeConfig, ServeError, SessionId};
pub use session::{Decision, Session};
pub use shard::{RampHandle, RampStatus, ServeLedger, ShardedDecisionService, ShardedServeConfig};
pub use store::PolicyStore;

#[cfg(test)]
pub(crate) mod tests_support {
    use pfrl_fed::PolicySnapshot;
    use pfrl_nn::{Activation, Mlp};
    use pfrl_rl::PpoConfig;
    use pfrl_sim::{EnvConfig, EnvDims, VmSpec};
    use pfrl_workloads::{DatasetId, TaskSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A small but fully valid snapshot with deterministic random weights.
    pub(crate) fn tiny_snapshot(client: &str) -> PolicySnapshot {
        let dims = EnvDims::new(2, 8, 64.0, 3);
        let hidden = PpoConfig::default().hidden;
        let actor = Mlp::new(
            &[dims.state_dim(), hidden, dims.action_dim()],
            Activation::Tanh,
            &mut SmallRng::seed_from_u64(client.len() as u64),
        );
        PolicySnapshot {
            algorithm: "PFRL-DM".into(),
            client: client.into(),
            version: 7,
            dims,
            env_cfg: EnvConfig::default(),
            vms: vec![VmSpec::new(8, 64.0), VmSpec::new(4, 32.0)],
            hidden,
            mask_actions: true,
            actor_params: actor.flat_params(),
        }
    }

    /// A deterministic workload sample.
    pub(crate) fn tiny_tasks(n: usize) -> Vec<TaskSpec> {
        DatasetId::K8s.model().sample(n, 11)
    }
}
