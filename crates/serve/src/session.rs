//! A stateful serving session: one cluster's environment mirror plus its
//! pinned policy.
//!
//! The hot path is [`Session::decide`]: observe → actor forward → (mask) →
//! argmax → env step. All per-decision tensors live in a thread-local
//! scratch pool ([`scratch`]), so the steady-state path allocates nothing —
//! the same discipline the training loop follows (see
//! `tests/zero_alloc.rs` at the workspace root).

use pfrl_fed::{FedError, PolicySnapshot};
use pfrl_nn::{Activation, Mlp};
use pfrl_rl::policy;
use pfrl_sim::{Action, CloudEnv, EpisodeMetrics};
use pfrl_workloads::TaskSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Thread-local pool of per-decision scratch buffers.
///
/// Sessions are plain data and can migrate between threads; the scratch
/// they borrow is per-thread, checked out for the duration of one decision
/// and returned afterwards. After the first decision on a thread the pool
/// is warm and a checkout performs no allocation.
pub(crate) mod scratch {
    use std::cell::RefCell;

    #[derive(Default)]
    pub(crate) struct DecisionScratch {
        pub state: Vec<f32>,
        pub logits: Vec<f32>,
        pub mask: Vec<bool>,
    }

    thread_local! {
        static POOL: RefCell<Vec<DecisionScratch>> = const { RefCell::new(Vec::new()) };
    }

    /// Runs `f` with a pooled scratch buffer. Re-entrant: a nested call
    /// simply pops (or creates) another buffer.
    pub(crate) fn with<R>(f: impl FnOnce(&mut DecisionScratch) -> R) -> R {
        let mut s = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        let r = f(&mut s);
        POOL.with(|p| p.borrow_mut().push(s));
        r
    }
}

/// The outcome of one served scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Chosen action index (`max_vms` means "wait").
    pub action: usize,
    /// Whether a task was placed on a VM by this decision.
    pub placed: bool,
    /// The environment's reward signal for the decision.
    pub reward: f32,
    /// Whether the episode is now complete.
    pub done: bool,
    /// Snapshot version of the policy that produced this decision — the
    /// audit trail for hot-swap ramps: after a cutover commits, no decision
    /// may carry a retired version (asserted by the stress suite).
    pub version: u64,
}

/// One cluster's serving session: an environment mirror plus the frozen
/// greedy policy from a [`PolicySnapshot`].
pub struct Session {
    actor: Mlp,
    env: CloudEnv,
    algorithm: String,
    client: String,
    version: u64,
    mask_actions: bool,
    max_vms: usize,
    decisions: u64,
}

impl Session {
    /// Instantiates the snapshot: rebuilds the actor network and the
    /// environment mirror (dims, VM fleet, reward config) it was trained
    /// against. The snapshot is re-validated, so a `Session` can never hold
    /// a policy whose shape disagrees with its environment.
    pub fn new(snapshot: &PolicySnapshot) -> Result<Self, FedError> {
        snapshot.validate()?;
        // The seed is irrelevant: every weight is overwritten immediately.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actor = Mlp::new(&snapshot.sizes(), Activation::Tanh, &mut rng);
        actor.set_flat_params(&snapshot.actor_params);
        let env = CloudEnv::new(snapshot.dims, snapshot.vms.clone(), snapshot.env_cfg);
        Ok(Self {
            actor,
            env,
            algorithm: snapshot.algorithm.clone(),
            client: snapshot.client.clone(),
            version: snapshot.version,
            mask_actions: snapshot.mask_actions,
            max_vms: snapshot.dims.max_vms,
            decisions: 0,
        })
    }

    /// Algorithm that trained the served policy.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Client (cluster) this session serves.
    pub fn client(&self) -> &str {
        &self.client
    }

    /// Version of the pinned snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Decisions served over the session's lifetime.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Starts a new episode over `tasks` (the one defensive copy the
    /// environment needs happens here).
    pub fn begin_episode(&mut self, tasks: &[TaskSpec]) {
        self.env.reset(tasks.to_vec());
    }

    /// Whether the current episode has completed (or none was begun).
    pub fn is_done(&self) -> bool {
        self.env.is_done()
    }

    /// Metrics of the current episode so far.
    pub fn metrics(&self) -> EpisodeMetrics {
        self.env.metrics()
    }

    /// Serves one greedy scheduling decision. Steady-state this allocates
    /// nothing: state, logits, and mask live in the thread-local scratch
    /// pool and the actor forwards through its internal buffers.
    ///
    /// # Panics
    ///
    /// If the episode is already complete — callers gate on
    /// [`Self::is_done`] (the batching service does this for you).
    pub fn decide(&mut self) -> Decision {
        assert!(!self.env.is_done(), "decide on a completed episode; call begin_episode");
        scratch::with(|s| {
            self.env.observe_into(&mut s.state);
            self.actor.forward_one_into(&s.state, &mut s.logits);
            self.finish_with_logits_in(&mut s.logits, &mut s.mask)
        })
    }

    /// Writes the current observation into `state` (first half of a
    /// decision). The sharded service uses this to fill one row of a wave's
    /// state matrix before running a single batched forward for the wave.
    pub(crate) fn observe_into(&self, state: &mut Vec<f32>) {
        self.env.observe_into(state);
    }

    /// Second half of a decision, given already-computed `logits` for the
    /// current observation: mask → argmax → env step. `logits` is consumed
    /// in place (masking overwrites it); `mask` is caller scratch. Exactly
    /// the tail of [`Session::decide`], so a wave-batched decision is
    /// bit-identical to a sequential one whenever the logits are.
    pub(crate) fn finish_with_logits_in(
        &mut self,
        logits: &mut [f32],
        mask: &mut Vec<bool>,
    ) -> Decision {
        if self.mask_actions {
            self.env.action_mask_into(mask);
            policy::apply_mask(logits, mask);
        }
        let action = policy::greedy_action(logits);
        let out = self.env.step(Action::from_index(action, self.max_vms));
        self.decisions += 1;
        Decision {
            action,
            placed: out.placed,
            reward: out.reward,
            done: out.done,
            version: self.version,
        }
    }

    /// Swaps in new actor parameters at `version` — the commit step of a
    /// hot-swap ramp. Parameters must already be validated (the ramp
    /// rejects non-finite candidates before any session sees them).
    pub(crate) fn adopt_params(&mut self, params: &[f32], version: u64) {
        self.actor.set_flat_params(params);
        self.version = version;
    }

    /// Convenience: runs one full episode over `tasks` and returns its
    /// metrics. Decision-for-decision identical to the trainer's greedy
    /// evaluation of the same policy.
    pub fn run_episode(&mut self, tasks: &[TaskSpec]) -> EpisodeMetrics {
        self.begin_episode(tasks);
        while !self.decide().done {}
        self.env.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{tiny_snapshot, tiny_tasks};

    #[test]
    fn session_mirrors_snapshot_identity() {
        let snap = tiny_snapshot("bank-0");
        let s = Session::new(&snap).unwrap();
        assert_eq!(s.client(), "bank-0");
        assert_eq!(s.algorithm(), "PFRL-DM");
        assert_eq!(s.version(), snap.version);
        assert_eq!(s.decisions(), 0);
    }

    #[test]
    fn invalid_snapshot_cannot_become_a_session() {
        let mut snap = tiny_snapshot("x");
        snap.actor_params[0] = f32::NAN;
        assert!(matches!(Session::new(&snap), Err(FedError::Snapshot(_))));
    }

    #[test]
    fn episode_runs_to_completion_and_counts_decisions() {
        let snap = tiny_snapshot("x");
        let mut s = Session::new(&snap).unwrap();
        let tasks = tiny_tasks(12);
        let m = s.run_episode(&tasks);
        assert_eq!(m.tasks_placed + m.tasks_unplaced, 12);
        assert!(s.is_done());
        assert!(s.decisions() >= 12, "at least one decision per task");
        // Same tasks, same frozen policy → bit-identical metrics.
        assert_eq!(s.run_episode(&tasks), m);
    }

    #[test]
    #[should_panic(expected = "completed episode")]
    fn deciding_past_the_end_is_a_bug() {
        let snap = tiny_snapshot("x");
        let mut s = Session::new(&snap).unwrap();
        s.run_episode(&tiny_tasks(5));
        s.decide();
    }
}
