//! Property-based tests of the RL building blocks.

use pfrl_rl::{discounted_returns, gae_advantages, RolloutBuffer};
use pfrl_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// Returns are bounded by `max|r| / (1 − γ)` for γ < 1.
    #[test]
    fn returns_geometric_bound(
        rewards in proptest::collection::vec(-10.0f32..10.0, 1..100),
        gamma in 0.0f32..0.999,
    ) {
        let mut terminals = vec![false; rewards.len()];
        *terminals.last_mut().unwrap() = true;
        let g = discounted_returns(&rewards, &terminals, gamma);
        let bound = 10.0 / (1.0 - gamma) + 1e-3;
        prop_assert!(g.iter().all(|v| v.abs() <= bound));
    }

    /// The Bellman recursion holds exactly within an episode:
    /// `G_t = r_t + γ·G_{t+1}`.
    #[test]
    fn returns_bellman_recursion(
        rewards in proptest::collection::vec(-5.0f32..5.0, 2..60),
        gamma in 0.0f32..=1.0,
    ) {
        let mut terminals = vec![false; rewards.len()];
        *terminals.last_mut().unwrap() = true;
        let g = discounted_returns(&rewards, &terminals, gamma);
        for t in 0..rewards.len() - 1 {
            let expect = rewards[t] + gamma * g[t + 1];
            prop_assert!((g[t] - expect).abs() < 1e-3, "t={}: {} vs {}", t, g[t], expect);
        }
        prop_assert_eq!(g[rewards.len() - 1], rewards[rewards.len() - 1]);
    }

    /// GAE(λ=1) ≡ G − V for arbitrary multi-episode layouts.
    #[test]
    fn gae_telescopes_multi_episode(
        episodes in proptest::collection::vec(1usize..10, 1..5),
        gamma in 0.1f32..0.999,
    ) {
        let n: usize = episodes.iter().sum();
        let rewards: Vec<f32> = (0..n).map(|i| ((i * 37 % 13) as f32) - 6.0).collect();
        let values: Vec<f32> = (0..n).map(|i| ((i * 17 % 7) as f32) * 0.3).collect();
        let mut terminals = vec![false; n];
        let mut idx = 0;
        for len in &episodes {
            idx += len;
            terminals[idx - 1] = true;
        }
        let adv = gae_advantages(&rewards, &values, &terminals, gamma, 1.0);
        let ret = discounted_returns(&rewards, &terminals, gamma);
        for t in 0..n {
            prop_assert!((adv[t] - (ret[t] - values[t])).abs() < 1e-2,
                "t={}: {} vs {}", t, adv[t], ret[t] - values[t]);
        }
    }

    /// Buffer round-trip: everything pushed comes back out, in order.
    #[test]
    fn buffer_roundtrip(
        transitions in proptest::collection::vec(
            (proptest::collection::vec(-1.0f32..1.0, 4), 0usize..5, -3.0f32..3.0, -5.0f32..0.0),
            1..40,
        ),
    ) {
        let mut b = RolloutBuffer::new(4);
        for (s, a, r, lp) in &transitions {
            b.push(s, *a, *r, *lp);
        }
        b.end_episode();
        prop_assert_eq!(b.len(), transitions.len());
        let m: Matrix = b.states_matrix();
        for (i, (s, a, r, lp)) in transitions.iter().enumerate() {
            prop_assert_eq!(m.row(i), &s[..]);
            prop_assert_eq!(b.actions()[i], *a);
            prop_assert_eq!(b.rewards()[i], *r);
            prop_assert_eq!(b.old_log_probs()[i], *lp);
        }
        prop_assert!(b.terminals()[transitions.len() - 1]);
    }
}
