//! Categorical policy math: sampling, log-probabilities, entropy, and the
//! clipped-surrogate gradient (Eqs. 10–12) expressed directly in terms of
//! the policy logits.

use pfrl_tensor::{ops, Matrix};
use rand::Rng;

/// Reusable row buffers for the per-decision sampling path and the
/// surrogate-gradient inner loop. One scratch cycled through same-sized
/// calls stops allocating after the first.
#[derive(Debug, Clone, Default)]
pub struct PolicyScratch {
    row: Vec<f32>,
    lp: Vec<f32>,
    probs: Vec<f32>,
}

impl PolicyScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Inverse-CDF sample over `exp(lp)`; shared by both sampling entry points
/// so they consume the RNG identically.
fn sample_index(lp: &[f32], rng: &mut impl Rng) -> usize {
    let u: f32 = rng.gen_range(0.0..1.0);
    let mut cum = 0.0f32;
    let mut action = lp.len() - 1;
    for (i, l) in lp.iter().enumerate() {
        cum += l.exp();
        if u < cum {
            action = i;
            break;
        }
    }
    action
}

/// Samples an action index from `softmax(logits)` and returns
/// `(action, log_prob)`.
pub fn sample_action(logits: &[f32], rng: &mut impl Rng) -> (usize, f32) {
    let mut scratch = PolicyScratch::default();
    sample_action_scratch(logits, rng, &mut scratch)
}

/// [`sample_action`] through a reusable [`PolicyScratch`] (the agents'
/// per-decision hot path; bitwise identical, including RNG consumption).
pub fn sample_action_scratch(
    logits: &[f32],
    rng: &mut impl Rng,
    scratch: &mut PolicyScratch,
) -> (usize, f32) {
    ops::log_softmax_into(logits, &mut scratch.lp);
    let action = sample_index(&scratch.lp, rng);
    (action, scratch.lp[action])
}

/// Applies an action mask to logits in place: disallowed entries become
/// `-inf` so they carry zero probability mass.
pub fn apply_mask(logits: &mut [f32], mask: &[bool]) {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(mask.iter().any(|&m| m), "mask allows no actions");
    for (l, &m) in logits.iter_mut().zip(mask) {
        if !m {
            *l = f32::NEG_INFINITY;
        }
    }
}

/// Samples from the masked policy: disallowed actions have probability 0
/// and the returned log-prob is under the *masked* distribution.
pub fn sample_action_masked(logits: &[f32], mask: &[bool], rng: &mut impl Rng) -> (usize, f32) {
    let mut scratch = PolicyScratch::default();
    sample_action_masked_scratch(logits, mask, rng, &mut scratch)
}

/// [`sample_action_masked`] through a reusable [`PolicyScratch`].
pub fn sample_action_masked_scratch(
    logits: &[f32],
    mask: &[bool],
    rng: &mut impl Rng,
    scratch: &mut PolicyScratch,
) -> (usize, f32) {
    let PolicyScratch { row, lp, .. } = scratch;
    row.clear();
    row.extend_from_slice(logits);
    apply_mask(row, mask);
    ops::log_softmax_into(row, lp);
    let action = sample_index(lp, rng);
    (action, lp[action])
}

/// Greedy action: argmax of the logits.
pub fn greedy_action(logits: &[f32]) -> usize {
    ops::argmax(logits)
}

/// Log-probability of `action` under `softmax(logits)`.
pub fn log_prob(logits: &[f32], action: usize) -> f32 {
    ops::log_softmax(logits)[action]
}

/// Shannon entropy of `softmax(logits)` in nats.
pub fn entropy(logits: &[f32]) -> f32 {
    let lp = ops::log_softmax(logits);
    -lp.iter().map(|l| l.exp() * l).sum::<f32>()
}

/// Diagnostics emitted by [`clipped_surrogate_grad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpoLossStats {
    /// Mean clipped-surrogate objective value (to be maximized).
    pub surrogate: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Fraction of samples where the clip was active.
    pub clip_fraction: f32,
}

/// Computes `dLoss/dlogits` for the PPO-clip policy loss
/// `L = −E[min(r·A, clip(r, 1±ε)·A)] − c_H·H` over a batch.
///
/// The gradient flows through the ratio `r = exp(logπ_new − logπ_old)` only
/// where the unclipped branch is active — i.e. where the clip would not bind
/// the objective (`A ≥ 0 ∧ r ≤ 1+ε` or `A < 0 ∧ r ≥ 1−ε`).
///
/// When `masks` is given (flattened `n × action_dim`, from a masked
/// rollout), the new policy is evaluated under the same masks the behavior
/// policy sampled with; masked-out logits receive zero gradient.
///
/// Returns the per-logit gradient (same shape as `logits`) and loss stats.
///
/// # Panics
/// On length mismatches.
pub fn clipped_surrogate_grad_masked(
    logits: &Matrix,
    actions: &[usize],
    old_log_probs: &[f32],
    advantages: &[f32],
    clip: f32,
    entropy_coef: f32,
    masks: Option<&[bool]>,
) -> (Matrix, PpoLossStats) {
    let mut grad = Matrix::default();
    let mut scratch = PolicyScratch::default();
    let stats = clipped_surrogate_grad_masked_into(
        logits,
        actions,
        old_log_probs,
        advantages,
        clip,
        entropy_coef,
        masks,
        &mut grad,
        &mut scratch,
    );
    (grad, stats)
}

/// [`clipped_surrogate_grad_masked`] writing the gradient into a reusable
/// matrix, with the per-row log-softmax buffers drawn from `scratch` — the
/// PPO minibatch loop's allocation-free form (bitwise identical).
#[allow(clippy::too_many_arguments)]
pub fn clipped_surrogate_grad_masked_into(
    logits: &Matrix,
    actions: &[usize],
    old_log_probs: &[f32],
    advantages: &[f32],
    clip: f32,
    entropy_coef: f32,
    masks: Option<&[bool]>,
    grad: &mut Matrix,
    scratch: &mut PolicyScratch,
) -> PpoLossStats {
    let n = logits.rows();
    let cols = logits.cols();
    assert_eq!(actions.len(), n, "actions length mismatch");
    assert_eq!(old_log_probs.len(), n, "old_log_probs length mismatch");
    assert_eq!(advantages.len(), n, "advantages length mismatch");
    if let Some(m) = masks {
        assert_eq!(m.len(), n * cols, "masks length mismatch");
    }
    let inv_n = 1.0 / n as f32;

    grad.resize(n, cols);
    grad.fill_zero();
    let mut surrogate = 0.0f32;
    let mut total_entropy = 0.0f32;
    let mut clipped_count = 0usize;
    let PolicyScratch { row, lp, probs } = scratch;

    for i in 0..n {
        row.clear();
        row.extend_from_slice(logits.row(i));
        if let Some(m) = masks {
            apply_mask(row, &m[i * cols..(i + 1) * cols]);
        }
        ops::log_softmax_into(row, lp);
        probs.clear();
        probs.extend(lp.iter().map(|l| l.exp()));
        let a = actions[i];
        let adv = advantages[i];
        let ratio = (lp[a] - old_log_probs[i]).exp();

        let unclipped = ratio * adv;
        let clipped = ratio.clamp(1.0 - clip, 1.0 + clip) * adv;
        surrogate += unclipped.min(clipped) * inv_n;

        // Gradient of the surrogate w.r.t. logits, where active.
        let active = if adv >= 0.0 { ratio <= 1.0 + clip } else { ratio >= 1.0 - clip };
        if active {
            // d(r·A)/dlogit_j = r·A·(δ_aj − p_j)
            let coef = ratio * adv * inv_n;
            let grow = grad.row_mut(i);
            for (j, p) in probs.iter().enumerate() {
                // Loss is negative surrogate.
                grow[j] -= coef * (if j == a { 1.0 } else { 0.0 } - p);
            }
        } else {
            clipped_count += 1;
        }

        // Entropy bonus: Loss −= c_H·H, dH/dlogit_j = −p_j(log p_j + H).
        // Masked-out actions have p = 0 and log p = −inf; their entropy
        // contribution and gradient are 0 (the x·log x → 0 limit).
        let h: f32 =
            -lp.iter().zip(probs.iter()).filter(|(_, &p)| p > 0.0).map(|(l, p)| p * l).sum::<f32>();
        total_entropy += h * inv_n;
        if entropy_coef > 0.0 {
            let grow = grad.row_mut(i);
            for (j, &p) in probs.iter().enumerate() {
                if p > 0.0 {
                    grow[j] += entropy_coef * inv_n * p * (lp[j] + h);
                }
            }
        }
    }

    PpoLossStats {
        surrogate,
        entropy: total_entropy,
        clip_fraction: clipped_count as f32 / n as f32,
    }
}

/// [`clipped_surrogate_grad_masked`] without masks (the paper's default).
pub fn clipped_surrogate_grad(
    logits: &Matrix,
    actions: &[usize],
    old_log_probs: &[f32],
    advantages: &[f32],
    clip: f32,
    entropy_coef: f32,
) -> (Matrix, PpoLossStats) {
    clipped_surrogate_grad_masked(
        logits,
        actions,
        old_log_probs,
        advantages,
        clip,
        entropy_coef,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_distribution() {
        let logits = vec![0.0, 0.0, 5.0]; // heavily favors action 2
        let mut rng = SmallRng::seed_from_u64(0);
        let mut count2 = 0;
        for _ in 0..1000 {
            let (a, lp) = sample_action(&logits, &mut rng);
            assert!(lp <= 0.0);
            if a == 2 {
                count2 += 1;
            }
        }
        assert!(count2 > 950, "action 2 sampled {count2}/1000");
    }

    #[test]
    fn greedy_picks_argmax() {
        assert_eq!(greedy_action(&[0.1, 3.0, -2.0]), 1);
    }

    #[test]
    fn log_prob_consistent_with_softmax() {
        let logits = [1.0, 2.0, 3.0];
        let mut sm = logits.to_vec();
        ops::softmax_inplace(&mut sm);
        for (a, &p) in sm.iter().enumerate() {
            assert!((log_prob(&logits, a).exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_bounds() {
        // Uniform logits: H = ln(k); deterministic: H → 0.
        let uniform = entropy(&[0.0, 0.0, 0.0, 0.0]);
        assert!((uniform - (4.0f32).ln()).abs() < 1e-5);
        let peaked = entropy(&[100.0, 0.0, 0.0, 0.0]);
        assert!(peaked < 1e-3);
    }

    /// Finite-difference check of the full PPO-clip + entropy gradient.
    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-1.0, 0.2, 0.1]]);
        let actions = [2usize, 0];
        // Old log-probs close to current so ratios are near 1 (unclipped).
        let old: Vec<f32> = (0..2).map(|i| log_prob(logits.row(i), actions[i]) - 0.05).collect();
        let advantages = [1.5f32, -0.7];
        let clip = 0.2;
        let coef = 0.01;

        let loss = |m: &Matrix| -> f32 {
            let mut total = 0.0;
            for i in 0..2 {
                let lp = ops::log_softmax(m.row(i));
                let ratio = (lp[actions[i]] - old[i]).exp();
                let uncl = ratio * advantages[i];
                let cl = ratio.clamp(1.0 - clip, 1.0 + clip) * advantages[i];
                total -= uncl.min(cl) / 2.0;
                let h: f32 = -lp.iter().map(|l| l.exp() * l).sum::<f32>();
                total -= coef * h / 2.0;
            }
            total
        };

        let (grad, stats) =
            clipped_surrogate_grad(&logits, &actions, &old, &advantages, clip, coef);
        assert!(stats.entropy > 0.0);

        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut p = logits.clone();
                p[(r, c)] += eps;
                let plus = loss(&p);
                p[(r, c)] -= 2.0 * eps;
                let minus = loss(&p);
                let fd = (plus - minus) / (2.0 * eps);
                assert!(
                    (grad[(r, c)] - fd).abs() < 1e-3,
                    "({r},{c}): analytic {} vs fd {}",
                    grad[(r, c)],
                    fd
                );
            }
        }
    }

    /// Where the clip binds, the surrogate gradient must vanish (only the
    /// entropy term remains).
    #[test]
    fn clipped_samples_have_no_surrogate_gradient() {
        let logits = Matrix::from_rows(&[&[3.0, 0.0]]);
        let actions = [0usize];
        // Old log-prob much lower than current → ratio >> 1+ε with A > 0.
        let old = [log_prob(logits.row(0), 0) - 2.0];
        let advantages = [1.0f32];
        let (grad, stats) = clipped_surrogate_grad(&logits, &actions, &old, &advantages, 0.2, 0.0);
        assert_eq!(stats.clip_fraction, 1.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn masked_sampling_never_picks_disallowed() {
        let logits = vec![5.0, 0.0, 0.0, 0.0];
        let mask = vec![false, true, true, false];
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let (a, lp) = sample_action_masked(&logits, &mask, &mut rng);
            assert!(mask[a], "sampled masked-out action {a}");
            assert!(lp.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "no actions")]
    fn all_false_mask_panics() {
        let mut l = vec![0.0, 0.0];
        apply_mask(&mut l, &[false, false]);
    }

    /// Masked gradient: finite, zero on masked-out logits, matches finite
    /// differences of the masked loss.
    #[test]
    fn masked_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.5, -0.3, 0.8, 0.2]]);
        let mask = [true, false, true, true];
        let actions = [2usize];
        let masked_lp = |m: &Matrix| {
            let mut row = m.row(0).to_vec();
            apply_mask(&mut row, &mask);
            ops::log_softmax(&row)
        };
        let old = [masked_lp(&logits)[2] - 0.02];
        let advantages = [1.0f32];
        let coef = 0.01;

        let (grad, stats) = clipped_surrogate_grad_masked(
            &logits,
            &actions,
            &old,
            &advantages,
            0.2,
            coef,
            Some(&mask),
        );
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
        assert_eq!(grad[(0, 1)], 0.0, "masked logit must get zero gradient");
        assert!(stats.entropy.is_finite() && stats.entropy > 0.0);

        let loss = |m: &Matrix| -> f32 {
            let lp = masked_lp(m);
            let ratio = (lp[2] - old[0]).exp();
            let uncl = ratio * advantages[0];
            let cl = ratio.clamp(0.8, 1.2) * advantages[0];
            let h: f32 = -lp.iter().filter(|l| l.is_finite()).map(|l| l.exp() * l).sum::<f32>();
            -uncl.min(cl) - coef * h
        };
        let eps = 1e-3;
        for c in [0usize, 2, 3] {
            let mut p = logits.clone();
            p[(0, c)] += eps;
            let plus = loss(&p);
            p[(0, c)] -= 2.0 * eps;
            let minus = loss(&p);
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (grad[(0, c)] - fd).abs() < 1e-3,
                "col {c}: analytic {} vs fd {}",
                grad[(0, c)],
                fd
            );
        }
    }

    #[test]
    fn gradient_direction_increases_good_action_probability() {
        // Positive advantage on action 1, ratio ≈ 1: stepping along −grad
        // must raise π(a=1).
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let old = [log_prob(logits.row(0), 1)];
        let (grad, _) = clipped_surrogate_grad(&logits, &[1], &old, &[1.0], 0.2, 0.0);
        // −grad on logit 1 should be positive (increase), logit 0 negative.
        assert!(grad[(0, 1)] < 0.0);
        assert!(grad[(0, 0)] > 0.0);
    }
}
